"""Shared fixtures and helpers for the benchmark suite.

Every benchmark file reproduces one of the paper's tables/figures at the
full (scaled-down) dataset size.  Tables are printed to stdout and saved
under ``benchmarks/results/`` for EXPERIMENTS.md; loose *shape* assertions
encode the qualitative findings of the paper (who wins, crossovers), since
absolute numbers depend on the synthetic substitute collections.

Datasets, statistics catalogs, and per-(method, k) measurements are shared
process-wide through :func:`repro.bench.harness.shared_harness`, so one
``pytest benchmarks/ --benchmark-only`` session builds everything once.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import ExperimentTable, shared_harness

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def harness():
    # The shared harness memoizes every (dataset, method, k, ratio) cell,
    # so tables that share cells (Fig. 3 / Fig. 6) measure them once.
    return shared_harness()


def publish(table: ExperimentTable) -> None:
    """Print a table and persist it under benchmarks/results/."""
    text = table.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = table.experiment_id.split()[0].lower()
    path = RESULTS_DIR / ("%s.txt" % slug)
    existing = path.read_text() if path.exists() else ""
    if table.experiment_id not in existing:
        with path.open("a") as handle:
            handle.write(text + "\n\n")


def table_cost(table: ExperimentTable, method: str, column: str) -> float:
    """Read one numeric cell from a rendered experiment table."""
    column_index = table.columns.index(column)
    for row in table.rows:
        if row[0] == method:
            return float(str(row[column_index]).split()[0])
    raise KeyError("method %r not in table %s" % (method, table.experiment_id))
