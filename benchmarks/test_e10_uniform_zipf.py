"""E10 — Sec. 6.4 ablation: Uniform vs Zipf artificial distributions.

Paper shape: on uniform scores the knapsack schedulers converge toward
round-robin; on skewed (Zipf) scores they match or beat it.  Our KSR keeps
a residual uniform-data penalty at very small k (its myopic
score-reduction objective oscillates between equally attractive lists —
see EXPERIMENTS.md); the assertions bound that known deviation.
"""

from conftest import publish, table_cost
from repro.bench.experiments import e10_uniform_zipf


def test_e10_uniform_zipf(benchmark, harness):
    table = benchmark.pedantic(
        lambda: e10_uniform_zipf(harness), rounds=1, iterations=1
    )
    publish(table)

    # Zipf: knapsacks never lose against round-robin.
    for column in ("zipf k=10", "zipf k=100"):
        rr = table_cost(table, "RR-Last-Best", column)
        assert table_cost(table, "KSR-Last-Best", column) <= rr * 1.05
        assert table_cost(table, "KBA-Last-Best", column) <= rr * 1.10

    # Uniform: KBA stays within noise of round-robin; KSR's known
    # small-k oscillation is bounded.
    for column in ("uniform k=10", "uniform k=100"):
        rr = table_cost(table, "RR-Last-Best", column)
        assert table_cost(table, "KBA-Last-Best", column) <= rr * 1.35
        assert table_cost(table, "KSR-Last-Best", column) <= rr * 2.2
