"""E11 (extension) — approximate pruning: cost vs precision trade-off.

Implements the paper's Sec. 7 future-work proposal: combine the scheduling
framework with probabilistic candidate pruning (their reference [29]) and
measure what result quality buys in access cost.
"""

from conftest import publish, table_cost
from repro.bench.extensions import e11_approximate_pruning


def test_e11_approximate(benchmark, harness):
    table = benchmark.pedantic(
        lambda: e11_approximate_pruning(harness), rounds=1, iterations=1
    )
    publish(table)

    exact_cost = table_cost(table, "epsilon=0.00", "avg cost")
    exact_precision = table_cost(table, "epsilon=0.00", "precision@k")
    assert exact_precision == 1.0

    mild_precision = table_cost(table, "epsilon=0.01", "precision@k")
    assert mild_precision >= 0.9

    aggressive_cost = table_cost(table, "epsilon=0.20", "avg cost")
    assert aggressive_cost <= exact_cost
