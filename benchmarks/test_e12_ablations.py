"""E12 (extension) — ablations over the design choices in DESIGN.md:

scan batch size, histogram resolution, and the Sec. 3.4 correlation
statistics.
"""

from conftest import publish, table_cost
from repro.bench.extensions import e12_design_ablations


def test_e12_ablations(benchmark, harness):
    batch, buckets, correlations = benchmark.pedantic(
        lambda: e12_design_ablations(harness), rounds=1, iterations=1
    )
    publish(batch)
    publish(buckets)
    publish(correlations)

    # Batch size: all settings must stay in the same cost regime (no
    # pathological blow-up from coarser scheduling).
    costs = [table_cost(batch, "batch=%dm" % m, "avg cost")
             for m in (1, 2, 4)]
    assert max(costs) <= min(costs) * 1.5

    # Histogram resolution: 100 buckets (the default) must not lose
    # against the very coarse setting.
    assert (
        table_cost(buckets, "buckets=100", "avg cost")
        <= table_cost(buckets, "buckets=10", "avg cost") * 1.25
    )

    # Correlations: switching them off must not change the cost regime
    # (they refine, not carry, the estimators).
    on = table_cost(correlations, "correlations=on", "avg cost")
    off = table_cost(correlations, "correlations=off", "avg cost")
    assert on <= off * 1.5 and off <= on * 1.5
