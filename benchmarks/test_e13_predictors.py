"""E13 (extension) — histogram convolutions vs the Normal approximation.

The paper rejects RankSQL's Normal-distribution assumption in favour of
explicit histograms (Sec. 1.3).  The unit tests show the Normal predictor
is measurably worse *as an estimator* on skewed lists; this benchmark
records how much of that difference survives into end-to-end cost (in our
setup the occurrence probabilities dominate the predictors, so the
scheduling outcome is robust — an honest negative result worth charting).
"""

from conftest import publish, table_cost
from repro.bench.extensions import e13_histograms_vs_normal


def test_e13_predictors(benchmark, harness):
    table = benchmark.pedantic(
        lambda: e13_histograms_vs_normal(harness), rounds=1, iterations=1
    )
    publish(table)

    for dataset in ("terabyte-bm25", "terabyte-tfidf"):
        for algorithm in ("RR-Last-Ben", "KBA-Last-Ben"):
            hist = table_cost(
                table, "%s / %s / histogram" % (dataset, algorithm),
                "avg cost",
            )
            normal = table_cost(
                table, "%s / %s / normal" % (dataset, algorithm),
                "avg cost",
            )
            # The histogram predictor never loses to the Normal
            # approximation by more than noise.
            assert hist <= normal * 1.05
