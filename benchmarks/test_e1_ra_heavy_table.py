"""E1 — Sec. 6.1 cost comparison of the RA-heavy baselines (k=10).

Paper numbers (Terabyte-BM25, k=10, cR/cS=1000): TA 72,389,140 > Upper
31,496,440 > Pick 3,798,549 > FullMerge 2,890,768 > NRA 788,511 >
KSR-Last-Ben 386,847.
"""

from conftest import publish, table_cost
from repro.bench.experiments import e1_ra_heavy_table


def test_e1_table(benchmark, harness):
    table = benchmark.pedantic(
        lambda: e1_ra_heavy_table(harness), rounds=1, iterations=1
    )
    publish(table)

    cost = {m: table_cost(table, m, "k=10") for m in (
        "RR-All", "RR-Top-Best", "RR-Pick-Best", "FullMerge", "RR-Never",
        "KSR-Last-Ben",
    )}
    # TA's eager probing is catastrophically expensive.
    assert cost["RR-All"] > 5 * cost["FullMerge"]
    # Upper and Pick are far worse than the scan-based baselines.
    assert cost["RR-Top-Best"] > cost["FullMerge"]
    assert cost["RR-Pick-Best"] > cost["FullMerge"]
    # NRA beats the full merge at k=10; the new method beats NRA.
    assert cost["RR-Never"] < cost["FullMerge"]
    assert cost["KSR-Last-Ben"] < cost["RR-Never"]
