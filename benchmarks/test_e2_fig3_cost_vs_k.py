"""E2 — Fig. 3: average cost vs k on Terabyte-BM25 (cR/cS=1000).

Paper shape: KSR-Last-Ben beats FullMerge/NRA/CA by up to ~3x, stays
closest to the lower bound; CA crosses above FullMerge at large k; NRA
degrades toward FullMerge with growing k.
"""

from conftest import publish, table_cost
from repro.bench.experiments import FIG3_KS, e2_fig3_cost_vs_k


def test_e2_fig3(benchmark, harness):
    table = benchmark.pedantic(
        lambda: e2_fig3_cost_vs_k(harness), rounds=1, iterations=1
    )
    publish(table)

    for k in FIG3_KS:
        column = "k=%d" % k
        best = table_cost(table, "KSR-Last-Ben", column)
        bound = table_cost(table, "LowerBound", column)
        # The new method wins at every k, and the bound holds.
        assert best <= table_cost(table, "RR-Never", column) * 1.001
        assert best <= table_cost(table, "RR-Each-Best", column)
        assert best <= table_cost(table, "FullMerge", column)
        assert bound <= best + 1e-6

    # NRA degrades with k; CA eventually exceeds FullMerge.
    assert (
        table_cost(table, "RR-Never", "k=500")
        > table_cost(table, "RR-Never", "k=10")
    )
    assert (
        table_cost(table, "RR-Each-Best", "k=500")
        > table_cost(table, "FullMerge", "k=500")
    )
    # Factor over CA at k=10 is substantial (paper: up to ~3x at large k).
    assert (
        table_cost(table, "RR-Each-Best", "k=500")
        > 1.5 * table_cost(table, "KSR-Last-Ben", "k=500")
    )
