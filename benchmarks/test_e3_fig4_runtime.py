"""E3 — Fig. 4: average runtime vs k on Terabyte-BM25.

The paper reports 30-60ms for its best methods, up to 5x faster than NRA
and FullMerge.  We publish two views: raw Python wall-clock (bookkeeping
only — numpy FullMerge pays no I/O, so the paper's FullMerge relation
cannot show) and CPU + modeled disk time, which reproduces the paper's
shape.  We additionally benchmark single queries per algorithm so
pytest-benchmark captures real latency distributions.
"""

import pytest

from conftest import publish, table_cost
from repro.bench.experiments import e3_fig4_runtime


def test_e3_fig4_table(benchmark, harness):
    cpu, total = benchmark.pedantic(
        lambda: e3_fig4_runtime(harness), rounds=1, iterations=1
    )
    publish(cpu)
    publish(total)
    for table in (cpu, total):
        for method in ("FullMerge", "RR-Never", "RR-Last-Best"):
            for k in (10, 500):
                assert table_cost(table, method, "k=%d" % k) > 0.0
    # With disk time modeled, the paper's runtime relation holds at k=10:
    # the scheduling method beats both NRA and FullMerge.
    best = table_cost(total, "RR-Last-Best", "k=10")
    assert best < table_cost(total, "RR-Never", "k=10") * 1.001
    assert best < table_cost(total, "FullMerge", "k=10")


@pytest.mark.parametrize("algorithm", [
    "FullMerge", "RR-Never", "RR-Last-Best", "KSR-Last-Ben",
])
def test_single_query_latency(benchmark, harness, algorithm):
    processor = harness.processor("terabyte-bm25", 1000.0)
    query = harness.queries("terabyte-bm25")[0]

    if algorithm == "FullMerge":
        run = lambda: processor.full_merge(query, 100)
    else:
        run = lambda: processor.query(query, 100, algorithm=algorithm)
    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.items) == 100
