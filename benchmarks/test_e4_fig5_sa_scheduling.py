"""E4 — Fig. 5: SA scheduling (RR vs KSR vs KBA) with RA fixed to Last-Best.

Paper shape: small knapsack gains on BM25 (left, cR/cS=10,000), larger
gains (up to ~15%) on the skewed TF-IDF model (right, cR/cS=100).
"""

from conftest import publish, table_cost
from repro.bench.experiments import FIG5_KS, e4_fig5_sa_scheduling


def test_e4_fig5(benchmark, harness):
    left, right = benchmark.pedantic(
        lambda: e4_fig5_sa_scheduling(harness), rounds=1, iterations=1
    )
    publish(left)
    publish(right)

    for table in (left, right):
        for k in FIG5_KS:
            column = "k=%d" % k
            rr = table_cost(table, "RR-Last-Best", column)
            # The knapsacks never lose more than noise against round-robin
            # (the paper's "do not degenerate" finding).
            assert table_cost(table, "KSR-Last-Best", column) <= rr * 1.10
            assert table_cost(table, "KBA-Last-Best", column) <= rr * 1.10

    # On the skewed TF-IDF model the knapsacks provide a clear gain.
    tfidf_gain = 1.0 - (
        table_cost(right, "KSR-Last-Best", "k=10")
        / table_cost(right, "RR-Last-Best", "k=10")
    )
    assert tfidf_gain > 0.05
