"""E5 — Fig. 6: RA scheduling (SA fixed to round-robin).

Paper shape: CA -> RR-Last-Best captures ~90% of the gain; RR-Last-Ben
adds the remainder; overall about 2.3x below CA at large k.
"""

from conftest import publish, table_cost
from repro.bench.experiments import FIG3_KS, e5_fig6_ra_scheduling


def test_e5_fig6(benchmark, harness):
    table = benchmark.pedantic(
        lambda: e5_fig6_ra_scheduling(harness), rounds=1, iterations=1
    )
    publish(table)

    for k in FIG3_KS:
        column = "k=%d" % k
        ca = table_cost(table, "RR-Each-Best", column)
        last_best = table_cost(table, "RR-Last-Best", column)
        last_ben = table_cost(table, "RR-Last-Ben", column)
        bound = table_cost(table, "LowerBound", column)
        # Deferring random accesses to the final phase always helps.
        assert last_best <= ca
        # Ben-probing stays in the same range as Last-Best (the paper's
        # extra ~10%; we allow noise either way).
        assert last_ben <= last_best * 1.15
        assert bound <= min(last_best, last_ben) + 1e-6

    # The overall factor vs CA is substantial at large k.
    assert (
        table_cost(table, "RR-Each-Best", "k=500")
        >= 1.5 * table_cost(table, "RR-Last-Best", "k=500")
    )
