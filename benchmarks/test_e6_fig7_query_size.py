"""E6 — Fig. 7: short (m~3) vs expanded (m~8) queries at k=100.

Paper shape: with large m, NRA essentially costs as much as FullMerge and
CA roughly doubles it, while KSR-Last-Ben gains even more than at m~3.
"""

from conftest import publish, table_cost
from repro.bench.experiments import e6_fig7_query_size


def test_e6_fig7(benchmark, harness):
    table = benchmark.pedantic(
        lambda: e6_fig7_query_size(harness), rounds=1, iterations=1
    )
    publish(table)

    for column in ("m~3", "m~8"):
        best = table_cost(table, "KSR-Last-Ben", column)
        assert best <= table_cost(table, "RR-Never", column)
        assert best <= table_cost(table, "RR-Each-Best", column)

    # Expanded queries: NRA approaches FullMerge, CA exceeds it.
    nra = table_cost(table, "RR-Never", "m~8")
    full = table_cost(table, "FullMerge", "m~8")
    assert nra >= 0.75 * full
    assert table_cost(table, "RR-Each-Best", "m~8") > full

    # The scheduling gain grows with m (paper: up to 2.3x over NRA).
    gain_small = (
        table_cost(table, "RR-Never", "m~3")
        / table_cost(table, "KSR-Last-Ben", "m~3")
    )
    gain_large = nra / table_cost(table, "KSR-Last-Ben", "m~8")
    assert gain_large > gain_small
