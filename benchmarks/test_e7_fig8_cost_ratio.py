"""E7 — Fig. 8: sweeping cR/cS over {100, 1000, 10000} at k=100.

Paper shape: the combined scheduling saves the most at low ratios (>2x);
at cR/cS=10,000 random accesses are nearly prohibitive, yet scheduling
still beats NRA and FullMerge.
"""

from conftest import publish, table_cost
from repro.bench.experiments import e7_fig8_cost_ratio


def test_e7_fig8(benchmark, harness):
    table = benchmark.pedantic(
        lambda: e7_fig8_cost_ratio(harness), rounds=1, iterations=1
    )
    publish(table)

    for ratio in (100, 1000, 10_000):
        column = "cR/cS=%d" % ratio
        best = table_cost(table, "KSR-Last-Ben", column)
        assert best <= table_cost(table, "RR-Never", column) * 1.001
        assert best <= table_cost(table, "FullMerge", column)

    # Low ratios allow the biggest wins over NRA.
    gain_low = (
        table_cost(table, "RR-Never", "cR/cS=100")
        / table_cost(table, "KSR-Last-Ben", "cR/cS=100")
    )
    gain_high = (
        table_cost(table, "RR-Never", "cR/cS=10000")
        / table_cost(table, "KSR-Last-Ben", "cR/cS=10000")
    )
    assert gain_low > 1.5
    assert gain_low > gain_high
