"""E8 — Fig. 9: the IMDB-like catalog (long low-skew categorical lists).

Paper shape: every TA-family method beats FullMerge over a wide k range;
the new methods gain ~1.5-1.8x against CA; costs stay near the bound.
"""

from conftest import publish, table_cost
from repro.bench.experiments import e8_fig9_imdb


def test_e8_fig9(benchmark, harness):
    table = benchmark.pedantic(
        lambda: e8_fig9_imdb(harness), rounds=1, iterations=1
    )
    publish(table)

    for k in (10, 20, 50):
        column = "k=%d" % k
        full = table_cost(table, "FullMerge", column)
        bound = table_cost(table, "LowerBound", column)
        for method in ("RR-Never", "KSR-Last-Ben", "KBA-Last-Ben"):
            cost = table_cost(table, method, column)
            assert cost < full
            assert bound <= cost + 1e-6

    # The characteristic CA gain of Fig. 9 (~1.5-1.8x).
    ratio = (
        table_cost(table, "RR-Each-Best", "k=50")
        / table_cost(table, "KBA-Last-Ben", "k=50")
    )
    assert ratio > 1.3
