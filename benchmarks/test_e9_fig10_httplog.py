"""E9 — Fig. 10: the WorldCup-like HTTP log (extreme score skew).

Paper shape: skew makes the bounds converge fast; KBA-Last-Ben almost
touches the lower bound; NRA degenerates to a full scan already at
moderate k.
"""

from conftest import publish, table_cost
from repro.bench.experiments import e9_fig10_httplog


def test_e9_fig10(benchmark, harness):
    table = benchmark.pedantic(
        lambda: e9_fig10_httplog(harness), rounds=1, iterations=1
    )
    publish(table)

    for k in (10, 50, 100, 200):
        column = "k=%d" % k
        best = table_cost(table, "KBA-Last-Ben", column)
        assert best <= table_cost(table, "RR-Never", column) * 1.001
        assert best <= table_cost(table, "FullMerge", column)
        assert table_cost(table, "LowerBound", column) <= best + 1e-6

    # NRA hits the full-scan wall at k=200 (paper: "for relatively small k").
    assert (
        table_cost(table, "RR-Never", "k=200")
        >= 0.95 * table_cost(table, "FullMerge", "k=200")
    )
    # At small k the best method sits close above the bound.
    assert (
        table_cost(table, "KBA-Last-Ben", "k=10")
        <= 4.0 * table_cost(table, "LowerBound", "k=10")
    )
