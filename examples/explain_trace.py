"""Explain a query execution round by round (the paper's Fig. 1, live).

Runs one query with a :class:`~repro.TraceListener` attached — the
execution-listener hook behind ``trace=True`` — and prints what the
engine knew after every round: scan positions, the ``high_i`` bounds, the
min-k threshold, the bound for unseen documents, and the candidate-queue
pressure — then shows where the random accesses went.

Run with::

    python examples/explain_trace.py
"""

from repro import QuerySession, TraceListener, build_index

POSTINGS = {
    "list1": [(17, 0.8), (78, 0.2), (14, 0.15), (61, 0.12), (90, 0.1),
              (91, 0.08)],
    "list2": [(25, 0.7), (38, 0.5), (14, 0.5), (83, 0.5), (17, 0.2),
              (61, 0.1)],
    "list3": [(83, 0.9), (17, 0.7), (61, 0.3), (25, 0.2), (78, 0.1),
              (92, 0.05)],
}


def main() -> None:
    index = build_index(POSTINGS, num_docs=100, block_size=2)
    session = QuerySession(index, cost_ratio=5)
    terms = ["list1", "list2", "list3"]

    for algorithm in ("RR-Never", "RR-Last-Best"):
        tracer = TraceListener()
        result = session.run(terms, k=1, algorithm=algorithm,
                             listeners=(tracer,))
        print("=== %s ===" % result.algorithm)
        for record in tracer.records:
            print("  %s" % record)
        winner = result.items[0]
        print("  -> winner doc%d, score bounds [%.2f, %.2f], COST %.1f\n" % (
            winner.doc_id, winner.worstscore, winner.bestscore,
            result.stats.cost,
        ))

    print(
        "Reading the trace: every round the unseen-document bound and the\n"
        "candidates' bestscores sink while min-k rises; the query stops as\n"
        "soon as nothing (seen or unseen) can beat the current top-k.\n"
        "RR-Last-Best may stop scanning earlier and resolve the last\n"
        "borderline candidates with random accesses (#RA column).\n"
        "(session.run(..., trace=True) attaches the same listener and\n"
        "copies its records onto result.trace.)"
    )


if __name__ == "__main__":
    main()
