"""Log-analytics scenario: top-k heaviest users over a date interval.

Mirrors the paper's WorldCup-98 workload: per-user daily traffic is
aggregated into one index list per day, and a query asks for the k users
with the highest total traffic in an interval like "June 1 to June 10"
(Sec. 6.1, 6.3.2).  The extreme skew of web traffic makes the score
bounds converge very fast — exactly the regime where a few well-placed
random accesses finish the query after scanning only the list heads.

Run with::

    python examples/log_analytics.py
"""

import numpy as np

from repro import TopKProcessor
from repro.data import load_dataset


def main() -> None:
    dataset = load_dataset("httplog", scale=1.0)
    processor = TopKProcessor(dataset.index, cost_ratio=1000)

    query = dataset.queries[0]
    days = sorted(int(t.split(":")[1]) for t in query)
    print("interval query: top users from day %02d to day %02d" % (
        days[0], days[-1]
    ))

    result = processor.query(query, k=10, algorithm="KBA-Last-Ben")
    print("\ntop-10 users by aggregated (normalized) traffic:")
    for rank, item in enumerate(result.items, start=1):
        print("  %2d. user %-7d traffic score %.4f" % (
            rank, item.doc_id, item.worstscore
        ))
    print("cost: %.0f (#SA=%d, #RA=%d) — the full merge would cost %.0f" % (
        result.stats.cost,
        result.stats.sorted_accesses,
        result.stats.random_accesses,
        processor.full_merge(query, 10).stats.cost,
    ))

    print("\nhow the skew shifts the trade-offs (avg over %d queries):"
          % len(dataset.queries))
    print("%-15s %10s %10s %10s" % ("algorithm", "k=10", "k=100", "k=200"))
    for algorithm in ["NRA", "CA", "KBA-Last-Ben"]:
        row = [algorithm]
        for k in (10, 100, 200):
            costs = [
                processor.query(q, k, algorithm=algorithm).stats.cost
                for q in dataset.queries
            ]
            row.append("%.0f" % np.mean(costs))
        print("%-15s %10s %10s %10s" % tuple(row))
    print(
        "\nNRA degenerates to a full scan as k grows (its bounds cannot"
        "\nseparate the long tail of small users), while the Last/Ben"
        "\nprobing strategies stay near the optimum."
    )


if __name__ == "__main__":
    main()
