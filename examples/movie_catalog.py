"""Movie-catalog scenario: structured similarity queries (IMDB-style).

The catalog indexes four attributes — Genre and Actors (categorical, with
Dice-coefficient similarity expansion) plus Title and Description keywords
— and answers queries like the paper's

    Title="War" Genre=SciFi Actors="Tom Cruise"
    Description="alien, earth, destroy"

where a movie matching a *similar* genre or a frequently co-starring actor
still scores, weighted by similarity (Sec. 6.1, 6.3.1).

Run with::

    python examples/movie_catalog.py
"""

import numpy as np

from repro import TopKProcessor
from repro.data import load_dataset


def describe(term: str, index) -> str:
    kind, _, value = term.partition(":")
    length = len(index.list_for(term))
    labels = {
        "genre": "Genre=%s (similarity-expanded, %d movies)",
        "actor": "Actors=#%s (co-star expanded, %d movies)",
        "title": "Title~%s (%d movies)",
        "desc": "Description~%s (%d movies)",
    }
    return labels[kind] % (value, length)


def main() -> None:
    print("building the movie catalog (~20s at scale 0.3)...")
    dataset = load_dataset("imdb", scale=0.3)
    processor = TopKProcessor(dataset.index, cost_ratio=1000)

    query = dataset.queries[0]
    print("\nstructured query:")
    for term in query:
        print("  - %s" % describe(term, dataset.index))

    result = processor.query(query, k=5, algorithm="KBA-Last-Ben")
    print("\ntop-5 movies (aggregated attribute similarity):")
    for rank, item in enumerate(result.items, start=1):
        print("  %d. movie %-7d score >= %.3f" % (
            rank, item.doc_id, item.worstscore
        ))
    print("cost: %.0f (#SA=%d, #RA=%d)" % (
        result.stats.cost,
        result.stats.sorted_accesses,
        result.stats.random_accesses,
    ))

    print("\naverage over %d queries, k=10:" % len(dataset.queries))
    print("%-15s %10s" % ("algorithm", "COST"))
    for algorithm in ["NRA", "CA", "KSR-Last-Ben", "KBA-Last-Ben"]:
        costs = [
            processor.query(q, 10, algorithm=algorithm).stats.cost
            for q in dataset.queries
        ]
        print("%-15s %10.0f" % (algorithm, np.mean(costs)))
    merged = [
        processor.full_merge(q, 10).stats.cost for q in dataset.queries
    ]
    print("%-15s %10.0f" % ("FullMerge", np.mean(merged)))
    print(
        "\nThe long, tie-heavy genre/actor lists make scanning expensive;"
        "\nthe threshold methods resolve the short text lists first and"
        "\nprune the categorical tails without reading them."
    )


if __name__ == "__main__":
    main()
