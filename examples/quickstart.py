"""Quickstart: build a tiny index and run every TA-family algorithm.

This mirrors the paper's running example (Fig. 1): three index lists,
find the top-1 document, and watch how different scheduling strategies
spend sorted vs random accesses.  Queries go through a
:class:`~repro.QuerySession` — the layered entry point that caches the
index statistics once and reuses one executor for every query.

Run with::

    python examples/quickstart.py
"""

from repro import QuerySession, build_index

# Postings per term: (doc_id, score), unsorted — the index builder sorts by
# descending score and lays the lists out in blocks (Sec. 2.2).
POSTINGS = {
    "list1": [(17, 0.8), (78, 0.2), (14, 0.15), (61, 0.1)],
    "list2": [(25, 0.7), (38, 0.5), (14, 0.5), (83, 0.5), (17, 0.2),
              (61, 0.1)],
    "list3": [(83, 0.9), (17, 0.7), (61, 0.3), (25, 0.2), (78, 0.1)],
}


def main() -> None:
    index = build_index(POSTINGS, num_docs=100, block_size=2)
    # cR/cS = 5: random accesses cost five times a sorted access here, so
    # the cost trade-offs are visible even on a toy example.
    session = QuerySession(index, cost_ratio=5)
    terms = ["list1", "list2", "list3"]

    print("top-1 of a 3-list query, per algorithm")
    print("%-15s %-8s %5s %5s %9s" % ("algorithm", "winner", "#SA", "#RA",
                                      "COST"))
    for algorithm in ["NRA", "TA", "CA", "Upper", "Pick",
                      "RR-Last-Best", "KSR-Last-Ben"]:
        result = session.run(terms, k=1, algorithm=algorithm)
        item = result.items[0]
        print("%-15s doc%-5d %5d %5d %9.1f" % (
            result.algorithm,
            item.doc_id,
            result.stats.sorted_accesses,
            result.stats.random_accesses,
            result.stats.cost,
        ))
    print("\n(statistics catalogs built for all of the above: %d)"
          % session.stats_builds)

    oracle = session.full_merge(terms, k=1)
    print("FullMerge oracle: doc%d with score %.2f (cost %.0f)" % (
        oracle.items[0].doc_id, oracle.items[0].worstscore,
        oracle.stats.cost,
    ))
    bound = session.lower_bound(terms, k=1)
    print("Sec. 2.5 lower bound for any TA-family method: %.1f" % bound)


if __name__ == "__main__":
    main()
