"""Serving demo: admission control and graceful degradation, live.

Boots the asyncio query service over a small httplog-style corpus,
replays a burst of heavy-tailed traffic at twice the sustainable rate,
and shows what overload looks like from the client side: some queries
answered exactly (200), some answered early as well-formed partial
results (206 with a machine-readable ``degrade_reason``), some
politely rejected (429 with a computed ``Retry-After``) — and zero
errors.

Run with::

    PYTHONPATH=src python examples/serve_demo.py
"""

import asyncio
import collections
import json

from repro import QuerySession
from repro.data.httplog import generate_trace, generate_workload
from repro.serve import QueryService, ServiceConfig, ShedConfig
from repro.serve.loadgen import calibrate, replay_open


def main() -> None:
    workload = generate_workload(
        num_users=4000, num_days=12, num_queries=16, block_size=64, seed=23
    )
    trace = generate_trace(workload, 120, seed=24)
    session = QuerySession(workload.index)
    session.stats_for(workload.index)  # warm the statistics up front

    mean_ms, p95_cost = calibrate(session, trace)
    rate = 2.0 * 1000.0 / mean_ms  # 2x the sustainable single-thread rate
    config = ServiceConfig(
        max_concurrency=2,
        max_queue=8,
        backlog_budget_ms=300.0,
        default_deadline_ms=200.0,
        default_cost_budget=max(p95_cost, 1.0),
        heavy_cost_threshold=p95_cost,
        shed=ShedConfig(tighten_factor=0.1, heavy_tighten_factor=0.03),
    )
    print("calibration: %.1f ms/query -> replaying at %.0f qps (2x)" % (
        mean_ms, rate
    ))

    async def run() -> None:
        async with QueryService(session, config) as service:
            outcomes = await replay_open(
                config.host, service.port, trace, rate, seed=7
            )

            statuses = collections.Counter(o.status for o in outcomes)
            print("\nstatus histogram under 2x overload:")
            for status, count in sorted(statuses.items()):
                label = {200: "exact", 206: "degraded partial",
                         429: "rejected (shed)"}.get(status, "other")
                print("  %3d  %-17s %3d" % (status, label, count))
            malformed = [o for o in outcomes if o.malformed]
            print("malformed responses: %d" % len(malformed))
            reasons = collections.Counter(
                o.degrade_reason for o in outcomes if o.degrade_reason
            )
            print("degrade reasons: %s" % dict(reasons))

            # More queries against the still-running service, asking
            # for an impossibly small cost budget: the anytime contract
            # answers 206 with a well-formed partial top-k.  (Queries
            # the engine finishes within its very first round stay
            # exact — the skewed httplog scores converge that fast — so
            # scan the trace for one that actually gets truncated.)
            from repro.serve.loadgen import _read_response

            status, answer = 0, {}
            for request in trace:
                payload = json.dumps({
                    "terms": list(request.terms), "k": request.k,
                    "cost_budget": 1,
                }).encode()
                message = (
                    b"POST /query HTTP/1.1\r\nHost: demo\r\n"
                    b"Content-Length: " + str(len(payload)).encode() +
                    b"\r\n\r\n" + payload
                )
                reader, writer = await asyncio.open_connection(
                    config.host, service.port
                )
                writer.write(message)
                await writer.drain()
                status, _, body = await _read_response(reader)
                writer.close()
                answer = json.loads(body)
                if status == 206:
                    break
            print("\ncost_budget=1 -> HTTP %d, degrade_reason=%r, "
                  "%d items, e.g. %s" % (
                      status, answer["degrade_reason"],
                      len(answer["items"]),
                      answer["items"][0] if answer["items"] else "-",
                  ))

    asyncio.run(run())
    print(
        "\nOverload never produced an error: queries were either exact,"
        "\nhonestly degraded (tightened anytime deadlines), or rejected"
        "\nwith a Retry-After hint before consuming engine capacity."
    )


if __name__ == "__main__":
    main()
