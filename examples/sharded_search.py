"""Sharded search: partition a corpus, query it, survive a dead shard.

Walks the :mod:`repro.distrib` stack end to end:

1. partition a synthetic corpus into document-partitioned shards,
2. run one query through the :class:`~repro.ShardedSession` coordinator
   and check the answer is identical to single-node execution,
3. compare the bound-pruning coordinator against the gather-all
   baseline (rounds and COST),
4. kill a shard with fault injection and watch the query degrade
   honestly instead of failing.

Run with::

    python examples/sharded_search.py
"""

import numpy as np

from repro import (
    FaultInjector,
    FaultPlan,
    QuerySession,
    ShardedSession,
    build_index,
    partition_index,
)
from repro.distrib.partition import ShardedIndex

NUM_DOCS = 20_000
LIST_LENGTH = 6_000
TERMS = ["apache", "lucene", "shard"]
K = 10


def make_corpus():
    rng = np.random.default_rng(17)
    postings = {}
    for term in TERMS:
        docs = rng.choice(NUM_DOCS, size=LIST_LENGTH, replace=False)
        scores = rng.random(LIST_LENGTH)
        postings[term] = list(zip(docs.tolist(), scores.tolist()))
    return build_index(postings, num_docs=NUM_DOCS, block_size=128)


def main() -> None:
    index = make_corpus()
    single = QuerySession(index).run(TERMS, K)
    print("single-node top-%d: %s" % (K, single.doc_ids))
    print("  cost=%.0f rounds=%d" % (
        single.stats.cost, single.stats.rounds))

    # -- partition + query ------------------------------------------------
    sharded = partition_index(index, 4, strategy="hash")
    session = ShardedSession(sharded=sharded)
    result = session.run(TERMS, K)
    print("\n4-shard bounded coordinator: %s" % result.doc_ids)
    print("  identical to single-node: %s"
          % (result.doc_ids == single.doc_ids))
    print("  cost=%.0f rounds=%d coordinator_rounds=%d pruned=%s" % (
        result.stats.cost, result.stats.rounds,
        result.coordinator_rounds, result.pruned_shards))

    # -- bounded vs gather-all -------------------------------------------
    gathered = session.run(TERMS, K, mode="gather")
    print("\ngather-all baseline: rounds=%d cost=%.0f" % (
        gathered.stats.rounds, gathered.stats.cost))
    print("  same answer: %s" % (gathered.doc_ids == result.doc_ids))

    # -- kill a shard -----------------------------------------------------
    injector = FaultInjector(FaultPlan(dead_terms=tuple(TERMS)))
    shards = list(sharded.shards)
    shards[2] = injector.wrap_index(shards[2])
    broken = ShardedIndex(
        shards=tuple(shards),
        strategy=sharded.strategy,
        assignment=sharded.assignment,
    )
    degraded = ShardedSession(sharded=broken).run(TERMS, K)
    print("\nwith shard 2 dead: %s" % degraded.doc_ids)
    print("  degraded=%s exhausted_shards=%s" % (
        degraded.degraded, degraded.exhausted_shards))
    survivors = [
        doc for doc in degraded.doc_ids if broken.shard_of(doc) != 2
    ]
    print("  every returned doc lives on a surviving shard: %s"
          % (survivors == degraded.doc_ids))


if __name__ == "__main__":
    main()
