"""Web-search scenario: keyword top-k over a BM25-scored text collection.

Generates a (scaled-down) Terabyte-like topical corpus, indexes it with
BM25, and compares the scheduling strategies on real multi-keyword queries
— the paper's flagship workload (Sec. 6.2).  The whole workload runs
through one :class:`~repro.QuerySession`: the statistics catalog is built
once and :meth:`~repro.QuerySession.run_many` batches each algorithm's
query log.

Run with::

    python examples/web_search.py
"""

import numpy as np

from repro import QuerySession
from repro.data import load_dataset

ALGORITHMS = ["NRA", "CA", "RR-Last-Best", "KSR-Last-Ben"]


def main() -> None:
    print("building the Terabyte-like collection (~20s)...")
    dataset = load_dataset("terabyte-bm25", scale=1.0)
    session = QuerySession(dataset.index, cost_ratio=1000)

    query = dataset.queries[0]
    print("\nexample query: %s" % " ".join(query))
    print("list lengths : %s" % [
        len(dataset.index.list_for(t)) for t in query
    ])

    result = session.run(query, k=10, algorithm="KSR-Last-Ben")
    print("\ntop-10 documents (worstscore = guaranteed lower bound):")
    for rank, item in enumerate(result.items, start=1):
        marker = "" if item.resolved else "  (bounds [%0.3f, %0.3f])" % (
            item.worstscore, item.bestscore
        )
        print("  %2d. doc %-7d score >= %.3f%s" % (
            rank, item.doc_id, item.worstscore, marker
        ))

    print("\naverage over %d queries, k=10, cR/cS=1000:" % len(
        dataset.queries
    ))
    print("%-15s %10s %8s %8s" % ("algorithm", "COST", "#SA", "#RA"))
    for algorithm in ALGORITHMS:
        results = session.run_many(dataset.queries, 10, algorithm=algorithm)
        stats = [r.stats for r in results]
        print("%-15s %10.0f %8.0f %8.1f" % (
            algorithm,
            np.mean([s.cost for s in stats]),
            np.mean([s.sorted_accesses for s in stats]),
            np.mean([s.random_accesses for s in stats]),
        ))
    merged = [
        session.full_merge(q, 10).stats.cost for q in dataset.queries
    ]
    print("%-15s %10.0f" % ("FullMerge", np.mean(merged)))
    print(
        "\n(one statistics build served all %d query executions: "
        "session.stats_builds == %d)" % (
            session.queries_run, session.stats_builds
        )
    )
    print(
        "\nKSR-Last-Ben defers random accesses to one final, cost-checked"
        "\nprobing phase and splits each scan batch by expected score"
        "\nreduction — that is the paper's headline saving."
    )


if __name__ == "__main__":
    main()
