"""Setup shim for environments without the ``wheel`` package.

All metadata lives in ``pyproject.toml``; this file only enables legacy
(non-PEP-660) editable installs: ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
