"""IO-Top-k: index-access optimized top-k query processing.

A from-scratch reproduction of Bast, Majumdar, Schenkel, Theobald, Weikum:
"IO-Top-k: Index-access Optimized Top-k Query Processing" (VLDB 2006).

Quick start::

    from repro import TopKProcessor, build_index

    index = build_index({"a": [(1, 0.9), (2, 0.3)], "b": [(2, 0.8)]})
    processor = TopKProcessor(index, cost_ratio=1000)
    result = processor.query(["a", "b"], k=1, algorithm="KSR-Last-Ben")
    print(result.doc_ids, result.stats.cost)

Packages:

* :mod:`repro.storage` — simulated disk cost model + inverted block-index
* :mod:`repro.stats` — histograms, convolutions, selectivity/correlation
  estimators, the Poisson RA-count estimator
* :mod:`repro.scoring` — BM25 and TF-IDF scoring models
* :mod:`repro.data` — synthetic dataset and workload generators
* :mod:`repro.core` — the TA-family engine, SA/RA scheduling policies,
  FullMerge baseline, and the per-query lower bound
* :mod:`repro.distrib` — document-partitioned sharded execution: corpus
  partitioning, concurrent per-shard executors, and the bound-driven
  merge coordinator
* :mod:`repro.bench` — the experiment harness reproducing the paper's
  tables and figures
"""

from .core.algorithms import (
    TopKProcessor,
    available_algorithms,
    canonical_name,
    plan,
    run_query,
)
from .core.executor import (
    ExecutionListener,
    QueryDeadline,
    QueryExecutor,
    TraceListener,
)
from .core.full_merge import full_merge
from .core.lower_bound import LowerBoundComputer
from .core.planner import QueryPlan
from .core.results import QueryStats, RankedItem, TopKResult
from .core.session import QuerySession, ShardedSession
from .distrib import (
    DegradePolicy,
    MergeCoordinator,
    ShardExecutor,
    ShardedExecutionError,
    ShardedIndex,
    ShardedTopKResult,
    partition_index,
    partition_postings,
)
from .stats.catalog import StatsCatalog
from .storage.accessors import ListUnavailableError, RetryPolicy
from .storage.block_index import IndexList, InvertedBlockIndex
from .storage.diskmodel import AccessMeter, CostModel
from .storage.faults import (
    FaultInjector,
    FaultPlan,
    IndexCorruptionError,
    TransientIOError,
)
from .storage.index_builder import (
    build_index,
    build_index_from_documents,
    build_index_list,
)

__version__ = "1.2.0"

__all__ = [
    "AccessMeter",
    "CostModel",
    "DegradePolicy",
    "ExecutionListener",
    "FaultInjector",
    "FaultPlan",
    "IndexCorruptionError",
    "IndexList",
    "InvertedBlockIndex",
    "ListUnavailableError",
    "LowerBoundComputer",
    "MergeCoordinator",
    "QueryDeadline",
    "QueryExecutor",
    "QueryPlan",
    "QuerySession",
    "QueryStats",
    "RankedItem",
    "RetryPolicy",
    "ShardExecutor",
    "ShardedExecutionError",
    "ShardedIndex",
    "ShardedSession",
    "ShardedTopKResult",
    "StatsCatalog",
    "TopKProcessor",
    "TopKResult",
    "TraceListener",
    "TransientIOError",
    "available_algorithms",
    "build_index",
    "build_index_from_documents",
    "build_index_list",
    "canonical_name",
    "full_merge",
    "partition_index",
    "partition_postings",
    "plan",
    "run_query",
    "__version__",
]
