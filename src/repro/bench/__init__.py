"""Experiment harness reproducing the paper's tables and figures."""

from .experiments import ALL_EXPERIMENTS, run_experiment
from .harness import Aggregate, ExperimentTable, Harness, shared_harness

__all__ = [
    "ALL_EXPERIMENTS",
    "Aggregate",
    "ExperimentTable",
    "Harness",
    "run_experiment",
    "shared_harness",
]
