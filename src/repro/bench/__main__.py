"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench            # run every experiment
    python -m repro.bench e2 e5      # run selected experiments
    python -m repro.bench --queries 4 --scale 0.5 e2   # faster variants
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import ALL_EXPERIMENTS, run_experiment
from .harness import Harness


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the IO-Top-k evaluation tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiment ids (e1..e10); default: all",
    )
    parser.add_argument(
        "--queries", type=int, default=8,
        help="queries per workload (default 8)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset scale factor (default 1.0)",
    )
    args = parser.parse_args(argv)

    names = [e.lower() for e in args.experiments] or list(ALL_EXPERIMENTS)
    harness = Harness(scale=args.scale, num_queries=args.queries)
    for name in names:
        started = time.time()
        for table in run_experiment(name, harness):
            print()
            print(table.render())
        print("[%s finished in %.1fs]" % (name, time.time() - started))
    return 0


if __name__ == "__main__":
    sys.exit(main())
