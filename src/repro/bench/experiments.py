"""Every table and figure of the paper's evaluation as a runnable experiment.

Each ``eN`` function regenerates one result of Sec. 6 on the synthetic
substitute datasets and returns an :class:`ExperimentTable`.  Absolute
numbers are smaller than the paper's (the collections are scaled down); the
*shapes* — who wins, by what factor, where the crossovers sit — are the
reproduction target, and EXPERIMENTS.md records paper-vs-measured for each.

Run everything with ``python -m repro.bench``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .harness import ExperimentTable, Harness, shared_harness

#: Paper figure 3 / 6 k values.
FIG3_KS = [10, 50, 100, 200, 500]
#: Paper figure 5 k values.
FIG5_KS = [10, 20, 50, 100, 200]


def _harness(harness: Optional[Harness]) -> Harness:
    return harness if harness is not None else shared_harness()


def e1_ra_heavy_table(harness: Optional[Harness] = None) -> ExperimentTable:
    """Sec. 6.1 (text): RA-heavy baselines vs. everything else, k=10.

    Paper (Terabyte-BM25, k=10, cR/cS=1000): TA 72,389,140; Upper
    31,496,440; Pick 3,798,549; FullMerge 2,890,768; NRA 788,511; best
    (KSR-Last-Ben) 386,847.  Expected shape: TA >> Upper >> Pick >
    FullMerge > NRA > KSR-Last-Ben.
    """
    h = _harness(harness)
    return h.cost_table(
        "E1",
        "RA-heavy baselines, Terabyte-BM25, k=10, cR/cS=1000",
        "terabyte-bm25",
        ["RR-All", "RR-Top-Best", "RR-Pick-Best", "FullMerge", "RR-Never",
         "KSR-Last-Ben"],
        [10],
        ratio=1000.0,
        notes="paper: TA 72.4M > Upper 31.5M > Pick 3.80M > FullMerge "
              "2.89M > NRA 0.79M > KSR-Last-Ben 0.39M",
    )


def e2_fig3_cost_vs_k(harness: Optional[Harness] = None) -> ExperimentTable:
    """Fig. 3: average cost vs. k on Terabyte-BM25.

    Expected shape: KSR-Last-Ben beats FullMerge/NRA/CA by up to ~3x and
    stays within ~20% of the lower bound; CA crosses above FullMerge for
    k > 200; NRA degrades toward FullMerge as k grows.
    """
    h = _harness(harness)
    return h.cost_table(
        "E2 (Fig 3)",
        "Average cost vs k, Terabyte-BM25, cR/cS=1000",
        "terabyte-bm25",
        ["FullMerge", "RR-Never", "RR-Each-Best", "KSR-Last-Ben",
         "LowerBound"],
        FIG3_KS,
        ratio=1000.0,
        notes="paper shape: new method up to 3x below baselines, ~1.2x of "
              "the lower bound; CA exceeds FullMerge for k > 200",
    )


def e3_fig4_runtime(
    harness: Optional[Harness] = None,
) -> List[ExperimentTable]:
    """Fig. 4: average runtime vs. k on Terabyte-BM25, two views.

    The paper measures 30-60ms for the new methods (10 <= k <= 100),
    beating NRA and FullMerge by up to 5x — on hardware where every access
    pays real disk time.  We report (a) raw Python wall-clock (bookkeeping
    only; numpy makes FullMerge unrealistically fast) and (b) modeled I/O
    time on ratio-matched hardware (cR/cS = 1000), the quantity that
    dominates the paper's runtime at its data scale.
    """
    from ..storage.latency import DiskLatencyModel, DiskParameters

    h = _harness(harness)
    disk = DiskLatencyModel(DiskParameters.for_cost_ratio(1000.0))
    columns = ["method"] + ["k=%d" % k for k in FIG3_KS]
    cpu_rows = []
    io_rows = []
    for method in ["FullMerge", "RR-Never", "RR-Last-Best"]:
        cpu_row = [method]
        io_row = [method]
        for k in FIG3_KS:
            agg = h.run("terabyte-bm25", method, k, 1000.0)
            io_ms = disk.estimate_ms(
                agg.sorted_accesses, agg.random_accesses
            )
            cpu_row.append("%.1f ms" % agg.wall_time_ms)
            io_row.append("%.2f ms" % io_ms)
        cpu_rows.append(cpu_row)
        io_rows.append(io_row)
    cpu_table = ExperimentTable(
        "E3a (Fig 4, CPU only)",
        "Average Python wall-clock vs k, Terabyte-BM25",
        columns,
        cpu_rows,
        notes="bookkeeping only: numpy FullMerge pays no I/O here, so the "
              "paper's FullMerge relation cannot show (see EXPERIMENTS.md)",
    )
    io_table = ExperimentTable(
        "E3b (Fig 4, modeled I/O)",
        "Average modeled disk time vs k, Terabyte-BM25 (hardware with "
        "cR/cS = 1000)",
        columns,
        io_rows,
        notes="paper: new methods 30-60ms, up to 5x faster than NRA and "
              "FullMerge — at the paper's data scale this I/O component "
              "dominates the total runtime",
    )
    return [cpu_table, io_table]


def e4_fig5_sa_scheduling(
    harness: Optional[Harness] = None,
) -> List[ExperimentTable]:
    """Fig. 5: SA scheduling (RR vs KSR vs KBA), RA fixed to Last-Best.

    Left: BM25 (cR/cS=10,000) — knapsack gains are small (2-5%).
    Right: TF-IDF (cR/cS=100) — skewed scores reward the knapsacks by up
    to ~15%, KBA best overall.
    """
    h = _harness(harness)
    methods = ["RR-Last-Best", "KSR-Last-Best", "KBA-Last-Best"]
    left = h.cost_table(
        "E4a (Fig 5 left)",
        "SA scheduling, Terabyte-BM25, cR/cS=10000",
        "terabyte-bm25",
        methods,
        FIG5_KS,
        ratio=10_000.0,
        notes="paper: 2-5% knapsack gains for BM25",
    )
    right = h.cost_table(
        "E4b (Fig 5 right)",
        "SA scheduling, Terabyte-TFIDF, cR/cS=100",
        "terabyte-tfidf",
        methods,
        FIG5_KS,
        ratio=100.0,
        notes="paper: up to ~15% knapsack gains for skewed TF-IDF, "
              "KBA best overall",
    )
    return [left, right]


def e5_fig6_ra_scheduling(harness: Optional[Harness] = None) -> ExperimentTable:
    """Fig. 6: RA scheduling with SA fixed to round-robin.

    Expected: the step CA -> RR-Last-Best captures ~90% of the total gain;
    RR-Last-Ben adds ~10% more, reaching ~2.3x below CA.
    """
    h = _harness(harness)
    return h.cost_table(
        "E5 (Fig 6)",
        "RA scheduling, Terabyte-BM25, cR/cS=1000",
        "terabyte-bm25",
        ["RR-Each-Best", "RR-Last-Best", "RR-Last-Ben", "LowerBound"],
        FIG3_KS,
        ratio=1000.0,
        notes="paper: Last-Best yields ~90% of the gain over CA, Last-Ben "
              "the remaining ~10% (overall ~2.3x vs CA)",
    )


def e6_fig7_query_size(harness: Optional[Harness] = None) -> ExperimentTable:
    """Fig. 7: short (m~3) vs expanded (m~8) queries, k=100.

    Expected: larger m amplifies the gains (up to ~2.3x over NRA and ~4x
    over CA); NRA approaches FullMerge cost, CA roughly doubles it.
    """
    h = _harness(harness)
    methods = ["FullMerge", "RR-Never", "RR-Each-Best", "KSR-Last-Ben"]
    columns = ["method", "m~3", "m~8"]
    rows = []
    for method in methods:
        rows.append([
            method,
            "%.0f" % h.run("terabyte-bm25", method, 100, 1000.0).cost,
            "%.0f" % h.run("terabyte-expanded", method, 100, 1000.0).cost,
        ])
    return ExperimentTable(
        "E6 (Fig 7)",
        "Query size m~3 vs m~8, Terabyte-BM25, k=100, cR/cS=1000",
        columns,
        rows,
        notes="paper: for m~8 NRA approaches FullMerge, CA ~2x FullMerge, "
              "KSR-Last-Ben up to 2.3x below NRA / 4x below CA",
    )


def e7_fig8_cost_ratio(harness: Optional[Harness] = None) -> ExperimentTable:
    """Fig. 8: varying cR/cS in {100, 1000, 10000}, k=100.

    Expected: low ratios give combined scheduling the largest wins (>2x);
    very high ratios push everyone toward NRA/FullMerge but scheduling
    still helps.
    """
    h = _harness(harness)
    methods = ["FullMerge", "RR-Never", "RR-Each-Best", "KSR-Last-Ben"]
    ratios = [100.0, 1000.0, 10_000.0]
    columns = ["method"] + ["cR/cS=%d" % int(r) for r in ratios]
    rows = []
    for method in methods:
        row = [method]
        for ratio in ratios:
            row.append(
                "%.0f" % h.run("terabyte-bm25", method, 100, ratio).cost
            )
        rows.append(row)
    return ExperimentTable(
        "E7 (Fig 8)",
        "Cost-ratio sweep, Terabyte-BM25, k=100",
        columns,
        rows,
        notes="paper: savings factor >2 at cR/cS in {100, 1000}; at 10000 "
              "RAs are nearly prohibitive yet scheduling still wins",
    )


def e8_fig9_imdb(harness: Optional[Harness] = None) -> ExperimentTable:
    """Fig. 9: IMDB — long low-skew categorical lists + short text lists.

    Expected: every TA-family method clearly below FullMerge over a wide
    k range; gains of ~1.5-1.8x vs CA; our best method near the bound.
    """
    h = _harness(harness)
    return h.cost_table(
        "E8 (Fig 9)",
        "Average cost vs k, IMDB, cR/cS=1000",
        "imdb",
        ["FullMerge", "RR-Never", "RR-Each-Best", "KSR-Last-Ben",
         "KBA-Last-Ben", "LowerBound"],
        [10, 20, 50, 100],
        ratio=1000.0,
        notes="paper: gains ~1.5-1.8x vs CA for 10<=k<=200; all TA-family "
              "methods beat FullMerge by a large margin",
    )


def e9_fig10_httplog(harness: Optional[Harness] = None) -> ExperimentTable:
    """Fig. 10: HTTP WorldCup-like log — extremely skewed scores.

    Expected: skew makes bounds converge fast; KBA-Last-Ben nearly touches
    the lower bound; NRA ends up scanning the full lists already for
    relatively small k.
    """
    h = _harness(harness)
    return h.cost_table(
        "E9 (Fig 10)",
        "Average cost vs k, HTTP log, cR/cS=1000",
        "httplog",
        ["FullMerge", "RR-Never", "RR-Each-Best", "KBA-Last-Ben",
         "LowerBound"],
        [10, 50, 100, 200],
        ratio=1000.0,
        notes="paper: KBA-Last-Ben almost touches the lower bound; NRA "
              "degenerates to a full scan at small k; CA stays within "
              "~1.2x for k<=100 (our CA pays more for its eager probes)",
    )


def e10_uniform_zipf(harness: Optional[Harness] = None) -> ExperimentTable:
    """Sec. 6.4 ablation: Uniform vs Zipf artificial score distributions.

    Expected: with uniform scores the knapsacks converge to round-robin
    (no degeneration, no gain); with Zipf skew they win clearly.
    """
    h = _harness(harness)
    methods = ["RR-Last-Best", "KSR-Last-Best", "KBA-Last-Best"]
    columns = ["method", "uniform k=10", "uniform k=100", "zipf k=10",
               "zipf k=100"]
    rows = []
    for method in methods:
        rows.append([
            method,
            "%.0f" % h.run("uniform", method, 10, 1000.0).cost,
            "%.0f" % h.run("uniform", method, 100, 1000.0).cost,
            "%.0f" % h.run("zipf", method, 10, 1000.0).cost,
            "%.0f" % h.run("zipf", method, 100, 1000.0).cost,
        ])
    return ExperimentTable(
        "E10 (Sec 6.4)",
        "Uniform vs Zipf artificial distributions, cR/cS=1000",
        columns,
        rows,
        notes="paper: knapsacks converge to round-robin on uniform scores "
              "and win on skewed ones",
    )


def _extension(name: str) -> Callable:
    def runner(harness: Optional[Harness] = None):
        from . import extensions

        return getattr(extensions, name)(harness)

    return runner


#: Registry of all experiments: the paper's evaluation (e1-e10, ordered as
#: in Sec. 6) plus the extensions (e11: Sec. 7 approximate pruning; e12:
#: design ablations; e13: predictor comparison; e14: chaos/resilience).
ALL_EXPERIMENTS: Dict[str, Callable] = {
    "e1": e1_ra_heavy_table,
    "e2": e2_fig3_cost_vs_k,
    "e3": e3_fig4_runtime,
    "e4": e4_fig5_sa_scheduling,
    "e5": e5_fig6_ra_scheduling,
    "e6": e6_fig7_query_size,
    "e7": e7_fig8_cost_ratio,
    "e8": e8_fig9_imdb,
    "e9": e9_fig10_httplog,
    "e10": e10_uniform_zipf,
    "e11": _extension("e11_approximate_pruning"),
    "e12": _extension("e12_design_ablations"),
    "e13": _extension("e13_histograms_vs_normal"),
    "e14": _extension("e14_chaos_resilience"),
}


def run_experiment(name: str, harness: Optional[Harness] = None):
    """Run one experiment by id ('e1'..'e10'); returns its table(s)."""
    try:
        func = ALL_EXPERIMENTS[name.lower()]
    except KeyError:
        raise ValueError(
            "unknown experiment %r; valid: %s" % (name, sorted(ALL_EXPERIMENTS))
        ) from None
    result = func(harness)
    return result if isinstance(result, list) else [result]
