"""Extension experiments beyond the paper's evaluation section.

* **E11** — the paper's Sec. 7 future-work suggestion: combine the
  scheduling framework with *approximate* probabilistic pruning and chart
  the cost/precision trade-off.
* **E12** — ablations over the design choices DESIGN.md calls out: the
  scan batch size, the histogram resolution feeding every estimator, and
  the correlation statistics of Sec. 3.4.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.algorithms import TopKProcessor
from ..data.workloads import load_dataset
from .harness import ExperimentTable, Harness, shared_harness


def _precision(processor: TopKProcessor, query, k: int, result) -> float:
    """Fraction of returned docs whose exact score makes the true top-k."""
    oracle = processor.full_merge(query, k)
    if not oracle.items:
        return 1.0
    cut = oracle.items[-1].worstscore
    exact = {
        doc: item.worstscore
        for doc, item in zip(oracle.doc_ids, oracle.items)
    }
    # Exact scores for returned docs: resolved results carry them; anything
    # else is re-derived from the oracle's cut (a returned doc at or above
    # the cut counts as a hit).
    totals = _exact_scores(processor, query, result.doc_ids)
    hits = sum(1 for score in totals if score >= cut - 1e-9)
    return hits / len(oracle.items)


def _exact_scores(processor: TopKProcessor, query, doc_ids) -> List[float]:
    lists = processor.index.lists_for(query)
    scores = []
    for doc in doc_ids:
        total = 0.0
        for lst in lists:
            value = lst.lookup(doc)
            total += value if value is not None else 0.0
        scores.append(total)
    return scores


def e11_approximate_pruning(
    harness: Optional[Harness] = None,
) -> ExperimentTable:
    """E11 (extension): cost vs precision under probabilistic pruning.

    Expected: small epsilon keeps precision near 1.0 at reduced cost;
    aggressive epsilon trades result quality for further savings —
    the behaviour of the paper's reference [29], now combined with the
    KSR-Last-Ben scheduling as Sec. 7 proposes.
    """
    h = harness if harness is not None else shared_harness()
    dataset = h.dataset("terabyte-bm25")
    processor = h.processor("terabyte-bm25", 1000.0)
    queries = h.queries("terabyte-bm25")
    k = 50

    rows = []
    for epsilon in (0.0, 0.01, 0.05, 0.2):
        costs = []
        precisions = []
        for query in queries:
            result = processor.query(
                query, k, algorithm="KSR-Last-Ben", prune_epsilon=epsilon
            )
            costs.append(result.stats.cost)
            precisions.append(_precision(processor, query, k, result))
        rows.append([
            "epsilon=%.2f" % epsilon,
            "%.0f" % float(np.mean(costs)),
            "%.3f" % float(np.mean(precisions)),
        ])
    return ExperimentTable(
        "E11 (extension)",
        "Approximate pruning: cost vs precision, Terabyte-BM25, "
        "KSR-Last-Ben, k=50",
        ["setting", "avg cost", "precision@k"],
        rows,
        notes="Sec. 7 future work: combining the scheduling framework "
              "with probabilistic pruning; epsilon=0 is the exact method",
    )


def e12_design_ablations(
    harness: Optional[Harness] = None,
) -> List[ExperimentTable]:
    """E12 (extension): sensitivity to batch size, histogram resolution,
    and correlation statistics."""
    h = harness if harness is not None else shared_harness()
    dataset = h.dataset("terabyte-bm25")
    queries = h.queries("terabyte-bm25")
    k = 50

    def average_cost(processor, algorithm):
        return float(np.mean([
            processor.query(q, k, algorithm=algorithm).stats.cost
            for q in queries
        ]))

    # (a) Scan batch size: blocks per round (the paper schedules "a small
    # multiple of m" per round).
    batch_rows = []
    mean_m = int(round(np.mean([len(q) for q in queries])))
    for multiple in (1, 2, 4):
        processor = TopKProcessor(
            dataset.index, cost_ratio=1000.0,
            batch_blocks=mean_m * multiple,
        )
        batch_rows.append([
            "batch=%dm" % multiple,
            "%.0f" % average_cost(processor, "KSR-Last-Ben"),
        ])
    batch_table = ExperimentTable(
        "E12a (extension)",
        "Batch-size sensitivity, Terabyte-BM25, KSR-Last-Ben, k=50",
        ["setting", "avg cost"],
        batch_rows,
        notes="smaller batches give finer-grained scheduling decisions at "
              "more bookkeeping rounds",
    )

    # (b) Histogram resolution: every estimator feeds off the per-list
    # histograms.
    bucket_rows = []
    for buckets in (10, 100, 400):
        processor = TopKProcessor(
            dataset.index, cost_ratio=1000.0, num_buckets=buckets
        )
        bucket_rows.append([
            "buckets=%d" % buckets,
            "%.0f" % average_cost(processor, "KSR-Last-Ben"),
        ])
    bucket_table = ExperimentTable(
        "E12b (extension)",
        "Histogram-resolution sensitivity, Terabyte-BM25, KSR-Last-Ben, "
        "k=50",
        ["setting", "avg cost"],
        bucket_rows,
        notes="coarse histograms blur the knapsack's score estimates and "
              "the probing-phase predictors",
    )

    # (c) Correlation statistics (Sec. 3.4) on/off for the Ben machinery.
    correlation_rows = []
    for enabled in (True, False):
        processor = TopKProcessor(
            dataset.index, cost_ratio=1000.0, use_correlations=enabled
        )
        correlation_rows.append([
            "correlations=%s" % ("on" if enabled else "off"),
            "%.0f" % average_cost(processor, "KBA-Last-Ben"),
        ])
    correlation_table = ExperimentTable(
        "E12c (extension)",
        "Correlation statistics on/off, Terabyte-BM25, KBA-Last-Ben, k=50",
        ["setting", "avg cost"],
        correlation_rows,
        notes="without Sec. 3.4 covariances the estimators fall back to "
              "the independence-based selectivities of Sec. 3.2",
    )
    return [batch_table, bucket_table, correlation_table]


def e13_histograms_vs_normal(
    harness: Optional[Harness] = None,
) -> ExperimentTable:
    """E13 (extension): histogram convolutions vs Normal approximation.

    Paper Sec. 1.3 argues against RankSQL's Normal-distribution assumption
    ("our experience with real datasets indicated more sophisticated score
    distributions") in favour of explicit histograms with run-time
    convolutions.  This ablation runs the probing strategies under both
    predictors on the flat (BM25) and the skewed (TF-IDF) score models.
    """
    h = harness if harness is not None else shared_harness()
    k = 50
    rows = []
    for dataset_name, ratio in (("terabyte-bm25", 1000.0),
                                ("terabyte-tfidf", 100.0)):
        dataset = h.dataset(dataset_name)
        queries = h.queries(dataset_name)
        for predictor in ("histogram", "normal"):
            processor = TopKProcessor(
                dataset.index, cost_ratio=ratio, predictor=predictor
            )
            for algorithm in ("RR-Last-Ben", "KBA-Last-Ben"):
                cost = float(np.mean([
                    processor.query(q, k, algorithm=algorithm).stats.cost
                    for q in queries
                ]))
                rows.append([
                    "%s / %s / %s" % (dataset_name, algorithm, predictor),
                    "%.0f" % cost,
                ])
    return ExperimentTable(
        "E13 (extension)",
        "Histogram convolutions vs Normal approximation, k=50",
        ["setting", "avg cost"],
        rows,
        notes="the paper's argument against RankSQL's Normal assumption "
              "(Sec. 1.3): explicit histograms should match or beat the "
              "Normal approximation, most visibly on skewed scores",
    )
