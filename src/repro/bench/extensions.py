"""Extension experiments beyond the paper's evaluation section.

* **E11** — the paper's Sec. 7 future-work suggestion: combine the
  scheduling framework with *approximate* probabilistic pruning and chart
  the cost/precision trade-off.
* **E12** — ablations over the design choices DESIGN.md calls out: the
  scan batch size, the histogram resolution feeding every estimator, and
  the correlation statistics of Sec. 3.4.
* **E14** — the chaos harness (docs/ROBUSTNESS.md): sweep storage fault
  rates against the resilient engine and report result quality
  (precision vs. oracle, rank distance) and cost/latency overhead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.algorithms import TopKProcessor
from ..storage.accessors import RetryPolicy
from ..storage.faults import FaultInjector, FaultPlan
from ..storage.latency import DiskLatencyModel
from .harness import ExperimentTable, Harness, shared_harness


def _precision(processor: TopKProcessor, query, k: int, result) -> float:
    """Fraction of returned docs whose exact score makes the true top-k."""
    oracle = processor.full_merge(query, k)
    if not oracle.items:
        return 1.0
    cut = oracle.items[-1].worstscore
    # Exact scores for returned docs: resolved results carry them; anything
    # else is re-derived from the oracle's cut (a returned doc at or above
    # the cut counts as a hit).
    totals = _exact_scores(processor, query, result.doc_ids)
    hits = sum(1 for score in totals if score >= cut - 1e-9)
    return hits / len(oracle.items)


def _exact_scores(processor: TopKProcessor, query, doc_ids) -> List[float]:
    lists = processor.index.lists_for(query)
    scores = []
    for doc in doc_ids:
        total = 0.0
        for lst in lists:
            value = lst.lookup(doc)
            total += value if value is not None else 0.0
        scores.append(total)
    return scores


def e11_approximate_pruning(
    harness: Optional[Harness] = None,
) -> ExperimentTable:
    """E11 (extension): cost vs precision under probabilistic pruning.

    Expected: small epsilon keeps precision near 1.0 at reduced cost;
    aggressive epsilon trades result quality for further savings —
    the behaviour of the paper's reference [29], now combined with the
    KSR-Last-Ben scheduling as Sec. 7 proposes.
    """
    h = harness if harness is not None else shared_harness()
    processor = h.processor("terabyte-bm25", 1000.0)
    queries = h.queries("terabyte-bm25")
    k = 50

    rows = []
    for epsilon in (0.0, 0.01, 0.05, 0.2):
        costs = []
        precisions = []
        for query in queries:
            result = processor.query(
                query, k, algorithm="KSR-Last-Ben", prune_epsilon=epsilon
            )
            costs.append(result.stats.cost)
            precisions.append(_precision(processor, query, k, result))
        rows.append([
            "epsilon=%.2f" % epsilon,
            "%.0f" % float(np.mean(costs)),
            "%.3f" % float(np.mean(precisions)),
        ])
    return ExperimentTable(
        "E11 (extension)",
        "Approximate pruning: cost vs precision, Terabyte-BM25, "
        "KSR-Last-Ben, k=50",
        ["setting", "avg cost", "precision@k"],
        rows,
        notes="Sec. 7 future work: combining the scheduling framework "
              "with probabilistic pruning; epsilon=0 is the exact method",
    )


def e12_design_ablations(
    harness: Optional[Harness] = None,
) -> List[ExperimentTable]:
    """E12 (extension): sensitivity to batch size, histogram resolution,
    and correlation statistics."""
    h = harness if harness is not None else shared_harness()
    dataset = h.dataset("terabyte-bm25")
    queries = h.queries("terabyte-bm25")
    k = 50

    def average_cost(processor, algorithm):
        return float(np.mean([
            processor.query(q, k, algorithm=algorithm).stats.cost
            for q in queries
        ]))

    # (a) Scan batch size: blocks per round (the paper schedules "a small
    # multiple of m" per round).
    batch_rows = []
    mean_m = int(round(np.mean([len(q) for q in queries])))
    for multiple in (1, 2, 4):
        processor = TopKProcessor(
            dataset.index, cost_ratio=1000.0,
            batch_blocks=mean_m * multiple,
        )
        batch_rows.append([
            "batch=%dm" % multiple,
            "%.0f" % average_cost(processor, "KSR-Last-Ben"),
        ])
    batch_table = ExperimentTable(
        "E12a (extension)",
        "Batch-size sensitivity, Terabyte-BM25, KSR-Last-Ben, k=50",
        ["setting", "avg cost"],
        batch_rows,
        notes="smaller batches give finer-grained scheduling decisions at "
              "more bookkeeping rounds",
    )

    # (b) Histogram resolution: every estimator feeds off the per-list
    # histograms.
    bucket_rows = []
    for buckets in (10, 100, 400):
        processor = TopKProcessor(
            dataset.index, cost_ratio=1000.0, num_buckets=buckets
        )
        bucket_rows.append([
            "buckets=%d" % buckets,
            "%.0f" % average_cost(processor, "KSR-Last-Ben"),
        ])
    bucket_table = ExperimentTable(
        "E12b (extension)",
        "Histogram-resolution sensitivity, Terabyte-BM25, KSR-Last-Ben, "
        "k=50",
        ["setting", "avg cost"],
        bucket_rows,
        notes="coarse histograms blur the knapsack's score estimates and "
              "the probing-phase predictors",
    )

    # (c) Correlation statistics (Sec. 3.4) on/off for the Ben machinery.
    correlation_rows = []
    for enabled in (True, False):
        processor = TopKProcessor(
            dataset.index, cost_ratio=1000.0, use_correlations=enabled
        )
        correlation_rows.append([
            "correlations=%s" % ("on" if enabled else "off"),
            "%.0f" % average_cost(processor, "KBA-Last-Ben"),
        ])
    correlation_table = ExperimentTable(
        "E12c (extension)",
        "Correlation statistics on/off, Terabyte-BM25, KBA-Last-Ben, k=50",
        ["setting", "avg cost"],
        correlation_rows,
        notes="without Sec. 3.4 covariances the estimators fall back to "
              "the independence-based selectivities of Sec. 3.2",
    )
    return [batch_table, bucket_table, correlation_table]


def _rank_distance(oracle_ids: Sequence[int], result_ids: Sequence[int],
                   k: int) -> float:
    """Mean absolute rank displacement of the returned docs vs. the oracle.

    A returned document absent from the oracle top-k counts the maximum
    displacement ``k``; the average is normalized by ``k`` so 0.0 means
    the exact oracle ranking and 1.0 means unrelated results.
    """
    if not result_ids or not oracle_ids:
        return 0.0 if not oracle_ids else 1.0
    oracle_rank = {doc: pos for pos, doc in enumerate(oracle_ids)}
    displacements = [
        abs(pos - oracle_rank[doc]) if doc in oracle_rank else k
        for pos, doc in enumerate(result_ids)
    ]
    return float(np.mean(displacements)) / max(k, 1)


def e14_chaos_resilience(
    harness: Optional[Harness] = None,
    fault_rates: Sequence[float] = (0.0, 0.01, 0.05, 0.2),
) -> ExperimentTable:
    """E14 (extension): result quality and cost under storage faults.

    Sweeps seeded transient-fault/corruption rates over the Terabyte-BM25
    workload with the resilient KSR-Last-Ben engine (retry + backoff,
    per-query retry budget) and reports, per rate: the paper's COST (the
    retried accesses are charged, so overhead is visible), the simulated
    I/O time including latency spikes and backoff, precision@k and rank
    distance against the fault-free oracle, and how many queries came
    back degraded.  Rate 0.0 doubles as the zero-overhead guarantee: its
    row must match the fault-free engine exactly.
    """
    h = harness if harness is not None else shared_harness()
    dataset = h.dataset("terabyte-bm25")
    clean = h.processor("terabyte-bm25", 1000.0)
    queries = h.queries("terabyte-bm25")
    k = 50
    latency = DiskLatencyModel()
    baseline_cost = h.run("terabyte-bm25", "KSR-Last-Ben", k, 1000.0).cost

    rows = []
    for rate in fault_rates:
        plan = FaultPlan.uniform(rate, seed=1729, corruption_rate=rate / 4.0)
        injector = FaultInjector(plan)
        processor = TopKProcessor(
            injector.wrap_index(dataset.index),
            cost_ratio=1000.0,
            retry_policy=RetryPolicy(),
        )
        # Reuse the clean statistics: chaos perturbs I/O, not the catalog.
        processor.stats = clean.stats
        costs, io_ms, precisions, distances = [], [], [], []
        degraded = 0
        retries = 0
        for query in queries:
            result = processor.query(query, k, algorithm="KSR-Last-Ben")
            oracle = clean.full_merge(query, k)
            costs.append(result.stats.cost)
            io_ms.append(latency.estimate_ms(
                result.stats.sorted_accesses,
                result.stats.random_accesses,
                extra_ms=result.stats.simulated_io_wait_ms,
            ))
            precisions.append(_precision(clean, query, k, result))
            distances.append(
                _rank_distance(oracle.doc_ids, result.doc_ids, k)
            )
            degraded += int(result.degraded)
            retries += result.stats.retries
        mean_cost = float(np.mean(costs))
        rows.append([
            "rate=%.2f" % rate,
            "%.0f" % mean_cost,
            "%+.1f%%" % (100.0 * (mean_cost / baseline_cost - 1.0)),
            "%.0f" % float(np.mean(io_ms)),
            "%.3f" % float(np.mean(precisions)),
            "%.3f" % float(np.mean(distances)),
            "%d/%d" % (degraded, len(queries)),
            "%d" % retries,
        ])
    return ExperimentTable(
        "E14 (extension)",
        "Chaos sweep: KSR-Last-Ben under storage faults, Terabyte-BM25, "
        "k=50, cR/cS=1000",
        ["setting", "avg cost", "overhead", "sim I/O ms", "precision@k",
         "rank dist", "degraded", "retries"],
        rows,
        notes="seeded FaultPlan (transients + corruption at rate/4) with "
              "retry/backoff; rate=0.00 is the zero-overhead guarantee "
              "(must equal the fault-free engine)",
    )


def e13_histograms_vs_normal(
    harness: Optional[Harness] = None,
) -> ExperimentTable:
    """E13 (extension): histogram convolutions vs Normal approximation.

    Paper Sec. 1.3 argues against RankSQL's Normal-distribution assumption
    ("our experience with real datasets indicated more sophisticated score
    distributions") in favour of explicit histograms with run-time
    convolutions.  This ablation runs the probing strategies under both
    predictors on the flat (BM25) and the skewed (TF-IDF) score models.
    """
    h = harness if harness is not None else shared_harness()
    k = 50
    rows = []
    for dataset_name, ratio in (("terabyte-bm25", 1000.0),
                                ("terabyte-tfidf", 100.0)):
        dataset = h.dataset(dataset_name)
        queries = h.queries(dataset_name)
        for predictor in ("histogram", "normal"):
            processor = TopKProcessor(
                dataset.index, cost_ratio=ratio, predictor=predictor
            )
            for algorithm in ("RR-Last-Ben", "KBA-Last-Ben"):
                cost = float(np.mean([
                    processor.query(q, k, algorithm=algorithm).stats.cost
                    for q in queries
                ]))
                rows.append([
                    "%s / %s / %s" % (dataset_name, algorithm, predictor),
                    "%.0f" % cost,
                ])
    return ExperimentTable(
        "E13 (extension)",
        "Histogram convolutions vs Normal approximation, k=50",
        ["setting", "avg cost"],
        rows,
        notes="the paper's argument against RankSQL's Normal assumption "
              "(Sec. 1.3): explicit histograms should match or beat the "
              "Normal approximation, most visibly on skewed scores",
    )
