"""Shared experiment harness: run algorithm batteries over workloads.

Each experiment in :mod:`repro.bench.experiments` is a thin declaration on
top of this harness.  The harness caches per-(dataset, ratio) processors,
per-dataset statistics catalogs, and per-query lower-bound computers so that
a full benchmark session builds each expensive structure once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.algorithms import TopKProcessor
from ..core.lower_bound import LowerBoundComputer
from ..core.session import QuerySession, ShardedSession
from ..data.workloads import Dataset, load_dataset


@dataclass
class Aggregate:
    """Workload-averaged measurements for one (method, k) cell."""

    method: str
    k: int
    cost: float
    sorted_accesses: float
    random_accesses: float
    wall_time_ms: float
    queries: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "%s@k=%d: cost=%.0f" % (self.method, self.k, self.cost)


@dataclass
class ExperimentTable:
    """One reproduced table/figure: labeled rows of per-method costs."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List[str]]
    notes: str = ""

    def render(self) -> str:
        """Plain-text table in the style of the paper's figures."""
        widths = [
            max(len(str(row[i])) for row in [self.columns] + self.rows)
            for i in range(len(self.columns))
        ]
        lines = [
            "%s — %s" % (self.experiment_id, self.title),
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in self.rows:
            lines.append(
                "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
            )
        if self.notes:
            lines.append("note: %s" % self.notes)
        return "\n".join(lines)


class Harness:
    """Cached runner for algorithm batteries over named datasets."""

    def __init__(self, scale: float = 1.0, num_queries: int = 8,
                 seed: int = 7) -> None:
        self.scale = scale
        self.num_queries = num_queries
        self.seed = seed
        #: one session for the whole benchmark run: statistics catalogs
        #: are cached per index, so processors differing only in cost
        #: ratio share them automatically
        self.session = QuerySession()
        self._processors: Dict[Tuple[str, float], TopKProcessor] = {}
        self._bounds: Dict[Tuple[str, Tuple[str, ...]], LowerBoundComputer] = {}
        self._memo: Dict[Tuple[str, str, int, float], Aggregate] = {}
        self._sharded: Dict[Tuple[str, int, float], ShardedSession] = {}
        self._sharded_memo: Dict[
            Tuple[str, int, int, float, str], Aggregate
        ] = {}

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def dataset(self, name: str) -> Dataset:
        return load_dataset(name, scale=self.scale, seed=self.seed)

    def queries(self, name: str) -> List[List[str]]:
        return self.dataset(name).queries[: self.num_queries]

    def processor(self, name: str, ratio: float) -> TopKProcessor:
        key = (name, float(ratio))
        proc = self._processors.get(key)
        if proc is None:
            # The shared session caches one StatsCatalog per index, so
            # processors at different cost ratios reuse the statistics.
            proc = TopKProcessor(
                self.dataset(name).index,
                cost_ratio=ratio,
                session=self.session,
            )
            self._processors[key] = proc
        return proc

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def run(
        self, name: str, method: str, k: int, ratio: float = 1000.0
    ) -> Aggregate:
        """Average one method over the dataset's query workload.

        ``method`` is an algorithm name (see
        :func:`repro.core.algorithms.available_algorithms`), ``FullMerge``,
        or ``LowerBound``.  Results are memoized: experiments sharing cells
        (e.g. Fig. 3 and Fig. 6 both need CA on Terabyte-BM25) measure each
        cell once per session.
        """
        key = (name, method, int(k), float(ratio))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if method == "LowerBound":
            result = self.lower_bound(name, k, ratio)
            self._memo[key] = result
            return result
        proc = self.processor(name, ratio)
        stats = []
        for query in self.queries(name):
            if method == "FullMerge":
                result = proc.full_merge(query, k)
            else:
                result = proc.query(query, k, algorithm=method)
            stats.append(result.stats)
        aggregate = Aggregate(
            method=method,
            k=k,
            cost=float(np.mean([s.cost for s in stats])),
            sorted_accesses=float(np.mean([s.sorted_accesses for s in stats])),
            random_accesses=float(np.mean([s.random_accesses for s in stats])),
            wall_time_ms=float(
                np.mean([s.wall_time_seconds for s in stats]) * 1000.0
            ),
            queries=len(stats),
        )
        self._memo[key] = aggregate
        return aggregate

    def lower_bound(self, name: str, k: int, ratio: float = 1000.0) -> Aggregate:
        """Average the Sec. 2.5 lower bound over the workload."""
        dataset = self.dataset(name)
        bounds = []
        for query in self.queries(name):
            key = (name, tuple(query))
            computer = self._bounds.get(key)
            if computer is None:
                computer = LowerBoundComputer(dataset.index, query)
                self._bounds[key] = computer
            bounds.append(computer.cost_for_k(k, ratio))
        return Aggregate(
            method="LowerBound",
            k=k,
            cost=float(np.mean(bounds)),
            sorted_accesses=0.0,
            random_accesses=0.0,
            wall_time_ms=0.0,
            queries=len(bounds),
        )

    # ------------------------------------------------------------------
    # Sharded execution
    # ------------------------------------------------------------------
    def sharded_session(
        self, name: str, shard_count: int, ratio: float = 1000.0
    ) -> ShardedSession:
        """A cached :class:`ShardedSession` for (dataset, shard count)."""
        from ..distrib import partition_index

        key = (name, int(shard_count), float(ratio))
        session = self._sharded.get(key)
        if session is None:
            session = ShardedSession(
                sharded=partition_index(
                    self.dataset(name).index, shard_count
                ),
                cost_ratio=ratio,
            )
            self._sharded[key] = session
        return session

    def run_sharded(
        self,
        name: str,
        k: int,
        shard_count: int,
        ratio: float = 1000.0,
        mode: str = "bounded",
    ) -> Aggregate:
        """Average the sharded coordinator over the query workload.

        Results are parity-checked against the single-node default
        algorithm query by query — a benchmark cell must never average
        over wrong answers.
        """
        key = (name, int(k), int(shard_count), float(ratio), mode)
        cached = self._sharded_memo.get(key)
        if cached is not None:
            return cached
        session = self.sharded_session(name, shard_count, ratio)
        proc = self.processor(name, ratio)
        stats = []
        for query in self.queries(name):
            result = session.run(query, k, mode=mode)
            expected = proc.query(query, k)
            if result.doc_ids != expected.doc_ids:
                raise RuntimeError(
                    "sharded run diverged from single-node on %s %r"
                    % (name, query)
                )
            stats.append(result.stats)
        aggregate = Aggregate(
            method="Sharded-%d-%s" % (shard_count, mode),
            k=k,
            cost=float(np.mean([s.cost for s in stats])),
            sorted_accesses=float(np.mean([s.sorted_accesses for s in stats])),
            random_accesses=float(np.mean([s.random_accesses for s in stats])),
            wall_time_ms=float(
                np.mean([s.wall_time_seconds for s in stats]) * 1000.0
            ),
            queries=len(stats),
        )
        self._sharded_memo[key] = aggregate
        return aggregate

    def shard_scaling_table(
        self,
        experiment_id: str,
        title: str,
        dataset: str,
        shard_counts: Sequence[int],
        k_values: Sequence[int],
        ratio: float = 1000.0,
        notes: str = "",
    ) -> ExperimentTable:
        """Scaling layout: single-node plus one row per shard count."""
        columns = ["method"] + ["k=%d" % k for k in k_values]
        rows = []
        single = ["single-node"]
        for k in k_values:
            single.append(
                "%.0f" % self.run(dataset, "KSR-Last-Ben", k, ratio).cost
            )
        rows.append(single)
        for count in shard_counts:
            row = ["shards=%d" % count]
            for k in k_values:
                row.append(
                    "%.0f"
                    % self.run_sharded(dataset, k, count, ratio).cost
                )
            rows.append(row)
        return ExperimentTable(
            experiment_id=experiment_id,
            title=title,
            columns=columns,
            rows=rows,
            notes=notes,
        )

    # ------------------------------------------------------------------
    # Table helpers
    # ------------------------------------------------------------------
    def cost_table(
        self,
        experiment_id: str,
        title: str,
        dataset: str,
        methods: Sequence[str],
        k_values: Sequence[int],
        ratio: float = 1000.0,
        notes: str = "",
    ) -> ExperimentTable:
        """The common layout: one row per method, one column per k."""
        columns = ["method"] + ["k=%d" % k for k in k_values]
        rows = []
        for method in methods:
            row = [method]
            for k in k_values:
                row.append("%.0f" % self.run(dataset, method, k, ratio).cost)
            rows.append(row)
        return ExperimentTable(
            experiment_id=experiment_id,
            title=title,
            columns=columns,
            rows=rows,
            notes=notes,
        )


#: Default shared harness used by the benchmark suite.
_SHARED: Optional[Harness] = None


def shared_harness() -> Harness:
    """Process-wide harness so pytest-benchmark files share caches."""
    global _SHARED
    if _SHARED is None:
        _SHARED = Harness()
    return _SHARED
