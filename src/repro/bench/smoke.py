"""Smoke benchmark: one query per algorithm family, instrumented.

A fast perf-trajectory probe for CI: builds a small synthetic index, runs
one representative query per TA-family *family* (NRA, TA, CA, Upper,
Pick, Last, Ben with KSR/KBA scheduling) through the
planner/executor/session path with a metrics
:class:`~repro.core.executor.ExecutionListener` attached, and writes the
timing/cost measurements as JSON.  CI uploads the file
(``BENCH_pr2.json``) so successive PRs accumulate comparable data points.

Usage::

    python -m repro.bench.smoke --output BENCH_pr2.json
    python -m repro.bench.smoke --scale 0.5 --k 10 --cost-ratio 100
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Dict, List, Optional

from ..core.executor import ExecutionListener
from ..core.session import QuerySession
from ..data.workloads import load_dataset

#: One representative triple per algorithm family.
FAMILIES = {
    "NRA": "RR-Never",
    "TA": "RR-All",
    "CA": "RR-Each-Best",
    "Upper": "RR-Top-Best",
    "Pick": "RR-Pick-Best",
    "Last": "RR-Last-Best",
    "Ben-KSR": "KSR-Last-Ben",
    "Ben-KBA": "KBA-Last-Ben",
}


class MetricsListener(ExecutionListener):
    """Collects per-round wall times and probe counts for one query."""

    def __init__(self) -> None:
        self.rounds = 0
        self.probe_events = 0
        self.round_ms: List[float] = []
        self._round_started: Optional[float] = None

    def on_query_start(self, plan, state) -> None:
        self.rounds = 0
        self.probe_events = 0
        self.round_ms = []

    def on_round_start(self, state) -> None:
        self._round_started = time.perf_counter()

    def on_probe(self, state, doc_id, dim, score) -> None:
        self.probe_events += 1

    def on_round_end(self, state, trace) -> None:
        self.rounds += 1
        if self._round_started is not None:
            self.round_ms.append(
                (time.perf_counter() - self._round_started) * 1000.0
            )
            self._round_started = None


def run_smoke(
    scale: float = 0.5,
    k: int = 10,
    cost_ratio: float = 1000.0,
    dataset_name: str = "terabyte-bm25",
    seed: int = 7,
    batch_blocks: int = 1,
) -> Dict:
    """Run the smoke battery and return the JSON-ready report.

    ``batch_blocks`` defaults to 1 (one block per round) rather than the
    engine's one-block-per-list default: the generated lists are wide
    enough that a single default batch terminates most queries, and a
    multi-round run is what makes the per-round listener metrics (and
    the scheduling differences between families) visible.
    """
    dataset = load_dataset(dataset_name, scale=scale, seed=seed)
    session = QuerySession(
        index=dataset.index,
        cost_ratio=cost_ratio,
        batch_blocks=batch_blocks,
    )
    query = dataset.queries[0]

    build_started = time.perf_counter()
    session.stats_for()  # warm the catalog so per-family timings are pure
    stats_build_ms = (time.perf_counter() - build_started) * 1000.0

    families = {}
    for family, algorithm in FAMILIES.items():
        listener = MetricsListener()
        started = time.perf_counter()
        result = session.run(
            query, k, algorithm=algorithm, listeners=(listener,)
        )
        wall_ms = (time.perf_counter() - started) * 1000.0
        families[family] = {
            "algorithm": result.algorithm,
            "cost": result.stats.cost,
            "sorted_accesses": result.stats.sorted_accesses,
            "random_accesses": result.stats.random_accesses,
            "rounds": listener.rounds,
            "probe_events": listener.probe_events,
            "wall_ms": round(wall_ms, 3),
            "mean_round_ms": round(
                sum(listener.round_ms) / len(listener.round_ms), 4
            ) if listener.round_ms else 0.0,
        }
    return {
        "benchmark": "smoke",
        "pr": "pr2-planner-executor-session",
        "dataset": dataset_name,
        "scale": scale,
        "k": k,
        "cost_ratio": cost_ratio,
        "batch_blocks": batch_blocks,
        "query": list(query),
        "stats_build_ms": round(stats_build_ms, 3),
        "stats_builds": session.stats_builds,
        "queries_run": session.queries_run,
        "python": platform.python_version(),
        "families": families,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.smoke",
        description="One query per algorithm family; timing/cost JSON.",
    )
    parser.add_argument("--output", default="BENCH_pr2.json",
                        help="output JSON path (default BENCH_pr2.json)")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--cost-ratio", type=float, default=1000.0)
    parser.add_argument("--dataset", default="terabyte-bm25")
    parser.add_argument("--batch-blocks", type=int, default=1,
                        help="blocks scanned per round (default 1: "
                             "multi-round trajectories)")
    args = parser.parse_args(argv)

    report = run_smoke(
        scale=args.scale, k=args.k, cost_ratio=args.cost_ratio,
        dataset_name=args.dataset, batch_blocks=args.batch_blocks,
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for family, row in report["families"].items():
        print("%-8s %-14s cost=%-10.0f rounds=%-4d wall=%.1fms" % (
            family, row["algorithm"], row["cost"], row["rounds"],
            row["wall_ms"],
        ))
    print("wrote %s" % args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
