"""Smoke benchmark: one query per algorithm family, instrumented.

A fast perf-trajectory probe for CI: builds a small synthetic index, runs
one representative query per TA-family *family* (NRA, TA, CA, Upper,
Pick, Last, Ben with KSR/KBA scheduling) through the
planner/executor/session path with a metrics
:class:`~repro.core.executor.ExecutionListener` attached, and writes the
timing/cost measurements as JSON.  CI uploads the file
(``BENCH_pr4.json``) so successive PRs accumulate comparable data points.

Two additions on top of the family battery:

* a **bookkeeping speedup** section — the benchmark's largest corpus (a
  dense random index whose queries sustain tens of thousands of queued
  candidates across hundreds of rounds) is run once per bookkeeping mode
  per family: the full-recompute reference pools, the incremental
  per-object pools (PR 4), and the columnar struct-of-arrays pool
  (PR 7).  All runs must be access-identical; the wall-clock ratios are
  the round-loop speedups each mode buys over its predecessor.
  ``--columnar`` records just this section to ``BENCH_pr7.json`` and
  ``--min-columnar-speedup`` gates the columnar-vs-incremental ratio of
  the round-loop (NRA) family,
* a **regression gate** — ``--baseline previous.json`` compares the
  per-family costs (and, with ``--gate-wall``, wall clocks) against an
  earlier report and exits non-zero on a >25% regression, so CI fails
  the PR instead of silently recording a slower engine,
* a **shard-count scaling section** (``--sharded``, written to
  ``BENCH_pr5.json``) — single-node execution vs the document-partitioned
  coordinator at 1/2/4 shards, recording bounded-coordinator vs
  gather-all rounds and failing unless bound-based pruning strictly wins
  at the largest shard count.  The same ``--baseline`` machinery gates
  the recorded rows,
* a **threshold-prediction section** (``--threshold``, written to
  ``BENCH_pr8.json``) — the sharded coordinator with vs without a
  plan-time predicted threshold on a shard-skewed corpus, failing unless
  the prediction strictly reduces COST, coordinator rounds, and
  cumulative shard rounds while returning a byte-identical answer,
* a **process-backend scaling section** (``--processes``, written to
  ``BENCH_pr9.json``) — the thread-backend vs the process-backend
  sharded coordinator at 8 and 16 shards on the 400k-doc stress corpus,
  parity-checked byte-for-byte before anything is recorded.
  ``--min-process-speedup`` gates the 8-shard wall-clock ratio — meant
  for multi-core CI runners; the ratio is meaningless on a single core.
* a **live-index section** (``--live``, written to ``BENCH_pr10.json``)
  — phase A applies a seeded update stream (with a seal and a
  compaction mixed in) to a :class:`~repro.live.index.LiveIndex`, then
  runs every family on the resulting snapshot AND on an index rebuilt
  from scratch at the same epoch, parity-checks the two byte-for-byte
  (items, intervals, #SA/#RA/COST), and records both wall clocks plus
  the snapshot-vs-rebuild build-time ratio; phase B runs a writer
  thread against a query stream with background maintenance enabled
  and records sustained updates/sec and queries/sec (failing outright
  if either stalls at zero).  Only the deterministic phase-A cost rows
  are baseline-gated.

Usage::

    python -m repro.bench.smoke --output BENCH_pr4.json
    python -m repro.bench.smoke --baseline BENCH_pr4.json --min-speedup 1.5
    python -m repro.bench.smoke --scale 0.5 --k 10 --cost-ratio 100
    python -m repro.bench.smoke --sharded --baseline BENCH_pr5.json
    python -m repro.bench.smoke --columnar --min-columnar-speedup 2.0
    python -m repro.bench.smoke --threshold --baseline BENCH_pr8.json
    python -m repro.bench.smoke --live --baseline BENCH_pr10.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from ..core.executor import ExecutionListener
from ..core.session import QuerySession, ShardedSession
from ..data.workloads import load_dataset
from ..distrib import partition_index
from ..storage.index_builder import build_index

#: One representative triple per algorithm family.
FAMILIES = {
    "NRA": "RR-Never",
    "TA": "RR-All",
    "CA": "RR-Each-Best",
    "Upper": "RR-Top-Best",
    "Pick": "RR-Pick-Best",
    "Last": "RR-Last-Best",
    "Ben-KSR": "KSR-Last-Ben",
    "Ben-KBA": "KBA-Last-Ben",
}

#: Families timed for the bookkeeping speedup probe.  NRA is the pure
#: round-loop workload (no probes at all); CA adds the cost-rationed
#: probe path.  Both keep very large candidate queues alive for hundreds
#: of rounds, which is the regime the incremental and columnar
#: bookkeeping modes target.
SPEEDUP_FAMILIES = ("NRA", "CA")

#: Families whose columnar-vs-incremental ratio the ``--min-columnar-
#: speedup`` gate enforces.  NRA is the pure round-loop workload that the
#: columnar pool vectorizes end to end; CA's wall clock is dominated by
#: the per-document random-access probe path, which is intentionally
#: scalar in every mode (probe order is part of the access identity), so
#: its ratio is reported but not gated.
COLUMNAR_GATED_FAMILIES = ("NRA",)

#: Geometry of the speedup corpus — the largest index the smoke
#: benchmark touches.  Dense uniform scores keep the NRA bounds from
#: converging early, so the queue stays in the tens of thousands.
SPEEDUP_CORPUS = {
    "num_docs": 400_000,
    "list_length": 120_000,
    "num_lists": 3,
    "block_size": 256,
    "seed": 13,
}

#: Allowed relative growth before the baseline gate fails a metric.
REGRESSION_TOLERANCE = 0.25

#: Geometry of the sharding corpus.  Dense uniform scores make the bound
#: algebra informative at partial scan depths (high_i decays linearly
#: with depth), which is the regime where the coordinator's bound-based
#: shard pruning visibly beats the gather-all baseline.
SHARDING_CORPUS = {
    "num_docs": 60_000,
    "list_length": 20_000,
    "num_lists": 3,
    "block_size": 256,
    "seed": 23,
}

#: k for the sharding section (deeper top-k keeps shards scanning long
#: enough that partial-depth pruning has something to save).
SHARDING_K = 50

#: First-round per-shard cost budget for the bounded coordinator —
#: roughly half a shard's threshold-termination cost on this corpus, so
#: round one stops early enough for the global min-k to prune shards.
SHARDING_ROUND_BUDGET = 8_000.0

#: Shard counts of the recorded scaling curve.
SHARDING_COUNTS = (1, 2, 4)


class MetricsListener(ExecutionListener):
    """Collects per-round wall times and probe counts for one query."""

    def __init__(self) -> None:
        self.rounds = 0
        self.probe_events = 0
        self.round_ms: List[float] = []
        self._round_started: Optional[float] = None

    def on_query_start(self, plan, state) -> None:
        self.rounds = 0
        self.probe_events = 0
        self.round_ms = []

    def on_round_start(self, state) -> None:
        self._round_started = time.perf_counter()

    def on_probe(self, state, doc_id, dim, score) -> None:
        self.probe_events += 1

    def on_round_end(self, state, trace) -> None:
        self.rounds += 1
        if self._round_started is not None:
            self.round_ms.append(
                (time.perf_counter() - self._round_started) * 1000.0
            )
            self._round_started = None


def _build_speedup_corpus():
    """The benchmark's largest corpus: dense random lists, slow bounds."""
    spec = SPEEDUP_CORPUS
    rng = np.random.default_rng(spec["seed"])
    postings = {}
    terms = []
    for i in range(spec["num_lists"]):
        term = "t%d" % i
        terms.append(term)
        docs = rng.choice(
            spec["num_docs"], size=spec["list_length"], replace=False
        )
        scores = rng.random(spec["list_length"])
        postings[term] = list(zip(docs.tolist(), scores.tolist()))
    index = build_index(
        postings, num_docs=spec["num_docs"], block_size=spec["block_size"]
    )
    return index, terms


#: Bookkeeping modes timed by :func:`run_speedup`, slowest first.
SPEEDUP_MODES = ("reference", "incremental", "columnar")


def run_speedup(k: int = 10, cost_ratio: float = 1000.0) -> Dict:
    """Bookkeeping-mode shoot-out on the largest corpus.

    Runs each speedup family once per bookkeeping mode — reference
    (full-recompute) pools, the incremental per-object pools, and the
    columnar struct-of-arrays pool — and reports two wall-clock ratios:
    ``speedup`` (reference vs incremental, the PR4 metric) and
    ``columnar_speedup`` (incremental vs columnar, the PR7 metric).  All
    runs must agree access-for-access; a mismatch makes the benchmark
    fail loudly rather than record a meaningless number.
    """
    index, terms = _build_speedup_corpus()
    rows = {}
    for family in SPEEDUP_FAMILIES:
        algorithm = FAMILIES[family]
        timings = {}
        outcomes = {}
        for mode in SPEEDUP_MODES:
            session = QuerySession(
                index=index, cost_ratio=cost_ratio, batch_blocks=1,
                bookkeeping=mode,
            )
            session.stats_for()
            started = time.perf_counter()
            result = session.run(terms, k, algorithm=algorithm)
            timings[mode] = (time.perf_counter() - started) * 1000.0
            outcomes[mode] = (
                result.stats.sorted_accesses,
                result.stats.random_accesses,
                result.stats.cost,
                tuple(result.doc_ids),
            )
        for mode in SPEEDUP_MODES[1:]:
            if outcomes["reference"] != outcomes[mode]:
                raise RuntimeError(
                    "bookkeeping modes diverged on %s (%s): %r vs %r"
                    % (algorithm, mode, outcomes["reference"],
                       outcomes[mode])
                )
        stats = outcomes["columnar"]
        rows[family] = {
            "algorithm": algorithm,
            "cost": stats[2],
            "reference_wall_ms": round(timings["reference"], 3),
            "incremental_wall_ms": round(timings["incremental"], 3),
            "columnar_wall_ms": round(timings["columnar"], 3),
            "speedup": round(
                timings["reference"] / timings["incremental"], 3
            ),
            "columnar_speedup": round(
                timings["incremental"] / timings["columnar"], 3
            ),
        }
    return {
        "corpus": dict(SPEEDUP_CORPUS),
        "k": k,
        "cost_ratio": cost_ratio,
        "families": rows,
        "min_speedup": min(row["speedup"] for row in rows.values()),
        "min_columnar_speedup": min(
            rows[family]["columnar_speedup"]
            for family in COLUMNAR_GATED_FAMILIES
        ),
    }


def _build_sharding_corpus():
    """Uniform-score corpus for the shard-count scaling section."""
    spec = SHARDING_CORPUS
    rng = np.random.default_rng(spec["seed"])
    postings = {}
    terms = []
    for i in range(spec["num_lists"]):
        term = "t%d" % i
        terms.append(term)
        docs = rng.choice(
            spec["num_docs"], size=spec["list_length"], replace=False
        )
        scores = rng.random(spec["list_length"])
        postings[term] = list(zip(docs.tolist(), scores.tolist()))
    index = build_index(
        postings, num_docs=spec["num_docs"], block_size=spec["block_size"]
    )
    return index, terms


def run_sharding(
    k: int = SHARDING_K,
    cost_ratio: float = 1000.0,
    shard_counts=SHARDING_COUNTS,
) -> Dict:
    """The shard-count scaling section: single-node vs N-shard execution.

    Records one ``families`` row per configuration (``single-node`` plus
    ``shards-N`` for every N), each with the COST/#SA/#RA and wall clock
    of the bounded coordinator — the shape :func:`compare_to_baseline`
    gates on.  Each sharded row also records the gather-all baseline's
    rounds next to the bounded coordinator's, and the benchmark *fails*
    rather than record a report where bound-based pruning did not yield
    strictly fewer total shard rounds than gather-all at the largest
    shard count.  Every configuration is parity-checked against the
    single-node answer before anything is written.
    """
    index, terms = _build_sharding_corpus()
    session = QuerySession(index=index, cost_ratio=cost_ratio)
    session.stats_for()
    started = time.perf_counter()
    single = session.run(terms, k)
    single_wall = (time.perf_counter() - started) * 1000.0
    families = {
        "single-node": {
            "algorithm": single.algorithm,
            "cost": single.stats.cost,
            "sorted_accesses": single.stats.sorted_accesses,
            "random_accesses": single.stats.random_accesses,
            "rounds": single.stats.rounds,
            "wall_ms": round(single_wall, 3),
        }
    }
    for count in shard_counts:
        sharded = ShardedSession(
            sharded=partition_index(index, count),
            cost_ratio=cost_ratio,
            round_budget=SHARDING_ROUND_BUDGET,
        )
        sharded.warm()
        started = time.perf_counter()
        bounded = sharded.run(terms, k)
        wall_ms = (time.perf_counter() - started) * 1000.0
        gathered = sharded.run(terms, k, mode="gather")
        for result, mode in ((bounded, "bounded"), (gathered, "gather")):
            if result.doc_ids != single.doc_ids:
                raise RuntimeError(
                    "sharded/%s top-k diverged from single-node at "
                    "%d shards: %r vs %r"
                    % (mode, count, result.doc_ids, single.doc_ids)
                )
        families["shards-%d" % count] = {
            "algorithm": bounded.algorithm,
            "cost": bounded.stats.cost,
            "sorted_accesses": bounded.stats.sorted_accesses,
            "random_accesses": bounded.stats.random_accesses,
            "rounds": bounded.stats.rounds,
            "rerun_rounds": bounded.shard_rounds,
            "gather_rounds": gathered.stats.rounds,
            "gather_cost": gathered.stats.cost,
            "pruned_shards": len(bounded.pruned_shards),
            "resolution_accesses": bounded.resolution_accesses,
            "wall_ms": round(wall_ms, 3),
        }
    largest = families["shards-%d" % max(shard_counts)]
    if largest["rounds"] >= largest["gather_rounds"]:
        raise RuntimeError(
            "bound-based coordinator did not beat gather-all at %d "
            "shards: %d rounds vs %d"
            % (max(shard_counts), largest["rounds"],
               largest["gather_rounds"])
        )
    return {
        "corpus": dict(SHARDING_CORPUS),
        "k": k,
        "cost_ratio": cost_ratio,
        "round_budget": SHARDING_ROUND_BUDGET,
        "shard_counts": list(shard_counts),
        "families": families,
    }


#: Geometry of the threshold-prediction corpus.  Scores are keyed to the
#: hash shard of the document: documents landing on the strong shard draw
#: from the top half of the score range, everyone else from the bottom
#: half.  Under hash partitioning the strong shard then provably holds
#: the whole top-k, the weak shards' histogram upper bounds fall below
#: the predicted threshold (so they are skipped outright), and the
#: prediction-sized first budget lets the strong shard terminate without
#: climbing the escalation ladder.
THRESHOLD_CORPUS = {
    "num_docs": 60_000,
    "list_length": 20_000,
    "num_lists": 3,
    "block_size": 256,
    "seed": 23,
    "num_shards": 4,
    "strong_shard": 0,
}

#: k for the threshold-prediction section (matches the sharding section:
#: deep enough that the threshold estimate has a real tail to predict).
THRESHOLD_K = 50

#: First-round per-shard cost budget for the prediction section.  Small
#: on purpose: the prediction-off coordinator must climb the doubling
#: ladder, which is exactly the waste the prediction-sized first budget
#: removes — the gap between the two is the metric.
THRESHOLD_ROUND_BUDGET = 500.0


def _build_threshold_corpus():
    """Shard-skewed corpus for the threshold-prediction section."""
    import random

    from ..distrib.partition import hash_shard

    spec = THRESHOLD_CORPUS
    rng = random.Random(spec["seed"])
    postings = {}
    terms = []
    for i in range(spec["num_lists"]):
        term = "t%d" % i
        terms.append(term)
        docs = rng.sample(range(spec["num_docs"]), spec["list_length"])
        postings[term] = [
            (
                doc,
                rng.uniform(0.5, 1.0)
                if hash_shard(doc, spec["num_shards"])
                == spec["strong_shard"]
                else rng.uniform(0.0, 0.5),
            )
            for doc in docs
        ]
    index = build_index(
        postings, num_docs=spec["num_docs"], block_size=spec["block_size"]
    )
    return index, terms


def run_threshold(
    k: int = THRESHOLD_K, cost_ratio: float = 1000.0
) -> Dict:
    """The threshold-prediction section: coordinator with and without a
    plan-time predicted threshold on the shard-skewed stress corpus.

    Records one ``families`` row per mode (``prediction-off`` and
    ``prediction-on``) with COST, #SA, #RA, coordinator rounds, and
    cumulative shard rounds — the shapes :func:`compare_to_baseline`
    gates on.  The benchmark *fails* rather than record a report where
    the prediction did not strictly reduce COST, coordinator rounds, and
    shard rounds, or where the prediction-on answer differs in any way
    (ids or score intervals) from prediction-off and the single-node
    golden run.
    """
    spec = THRESHOLD_CORPUS
    index, terms = _build_threshold_corpus()
    golden = QuerySession(index=index, cost_ratio=cost_ratio).run(terms, k)

    rows = {}
    answers = {}
    for label, predict in (("prediction-off", False),
                           ("prediction-on", True)):
        session = ShardedSession(
            index=index,
            num_shards=spec["num_shards"],
            strategy="hash",
            cost_ratio=cost_ratio,
            round_budget=THRESHOLD_ROUND_BUDGET,
            predict_threshold=predict,
        )
        session.warm()
        started = time.perf_counter()
        result = session.run(terms, k, mode="bounded")
        wall_ms = (time.perf_counter() - started) * 1000.0
        answers[label] = [
            (item.doc_id, item.worstscore, item.bestscore)
            for item in result.items
        ]
        rows[label] = {
            "algorithm": result.algorithm,
            "cost": result.stats.cost,
            "sorted_accesses": result.stats.sorted_accesses,
            "random_accesses": result.stats.random_accesses,
            "rounds": result.coordinator_rounds,
            "shard_rounds": result.shard_rounds,
            "skipped_shards": list(result.skipped_shards),
            "readmitted_shards": list(result.readmitted_shards),
            "pruned_shards": len(result.pruned_shards),
            "predicted_threshold": result.predicted_threshold,
            "prediction_drops": result.stats.prediction_drops,
            "prediction_fallback": result.stats.prediction_fallback,
            "wall_ms": round(wall_ms, 3),
        }

    golden_key = [
        (item.doc_id, item.worstscore, item.bestscore)
        for item in golden.items
    ]
    for label, answer in answers.items():
        if answer != golden_key:
            raise RuntimeError(
                "%s top-k diverged from the single-node golden run"
                % label
            )
    off, on = rows["prediction-off"], rows["prediction-on"]
    if on["cost"] >= off["cost"]:
        raise RuntimeError(
            "prediction did not reduce COST: %.0f vs %.0f"
            % (on["cost"], off["cost"])
        )
    if on["rounds"] >= off["rounds"]:
        raise RuntimeError(
            "prediction did not reduce coordinator rounds: %d vs %d"
            % (on["rounds"], off["rounds"])
        )
    if on["shard_rounds"] >= off["shard_rounds"]:
        raise RuntimeError(
            "prediction did not reduce shard rounds: %d vs %d"
            % (on["shard_rounds"], off["shard_rounds"])
        )
    return {
        "corpus": dict(THRESHOLD_CORPUS),
        "k": k,
        "cost_ratio": cost_ratio,
        "round_budget": THRESHOLD_ROUND_BUDGET,
        "families": rows,
        "cost_reduction": round(1.0 - on["cost"] / off["cost"], 3),
        "coordinator_rounds_saved": off["rounds"] - on["rounds"],
        "shard_rounds_saved": off["shard_rounds"] - on["shard_rounds"],
    }


#: Shard counts of the process-backend scaling curve.  8 is the gated
#: point (the acceptance criterion); 16 shows where the curve goes once
#: per-shard work gets small relative to per-round protocol overhead.
PROCESS_SHARD_COUNTS = (8, 16)

#: k for the process-backend section (deep enough that shard executions
#: dominate the pipe protocol).
PROCESS_K = 50

#: Timed repetitions per backend/count; the minimum wall is recorded
#: (scheduling noise only ever adds time).
PROCESS_REPEATS = 3


def _result_fingerprint(result):
    """The byte-identity key two backends must agree on exactly."""
    return (
        tuple(
            (item.doc_id, item.worstscore, item.bestscore)
            for item in result.items
        ),
        result.stats.sorted_accesses,
        result.stats.random_accesses,
        result.stats.cost,
        result.coordinator_rounds,
        tuple(result.pruned_shards),
    )


def run_processes(
    k: int = PROCESS_K,
    cost_ratio: float = 1000.0,
    shard_counts=PROCESS_SHARD_COUNTS,
) -> Dict:
    """The process-backend scaling section: thread vs process workers.

    For each shard count, runs the bounded coordinator over the same
    partitioning with both backends (workers warmed first, so the timed
    runs measure query execution, not spawn/spill/statistics), verifies
    the answers are **byte-identical** — items, score intervals,
    #SA/#RA/COST, rounds, pruning decisions — and records both wall
    clocks plus their ratio.  Cost rows are deterministic and gated by
    ``compare_to_baseline``; the wall-clock ratio is gated separately by
    ``--min-process-speedup`` (CI pins >=1.5x at 8 shards on its
    multi-core runners — on a single core the process backend only adds
    serialization overhead, so no local test asserts the ratio).
    """
    import tempfile

    index, terms = _build_speedup_corpus()
    families = {}
    speedups = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-shards-") as root:
        for count in shard_counts:
            sharded = partition_index(index, count)
            thread_session = ShardedSession(
                sharded=sharded, cost_ratio=cost_ratio
            )
            process_session = ShardedSession(
                sharded=sharded,
                cost_ratio=cost_ratio,
                backend="process",
                spill_dir="%s/shards-%d" % (root, count),
            )
            rows = {}
            try:
                for label, session in (("thread", thread_session),
                                       ("process", process_session)):
                    session.warm()
                    best_wall = None
                    result = None
                    for _ in range(PROCESS_REPEATS):
                        started = time.perf_counter()
                        result = session.run(terms, k)
                        wall_ms = (time.perf_counter() - started) * 1000.0
                        if best_wall is None or wall_ms < best_wall:
                            best_wall = wall_ms
                    rows[label] = (result, best_wall)
            finally:
                process_session.close()
            thread_result, thread_wall = rows["thread"]
            process_result, process_wall = rows["process"]
            if (_result_fingerprint(thread_result)
                    != _result_fingerprint(process_result)):
                raise RuntimeError(
                    "process backend diverged from thread backend at "
                    "%d shards" % count
                )
            speedup = round(thread_wall / process_wall, 3)
            speedups[count] = speedup
            for label, (result, wall_ms) in rows.items():
                families["%s-%d" % (label, count)] = {
                    "algorithm": result.algorithm,
                    "backend": label,
                    "shards": count,
                    "cost": result.stats.cost,
                    "sorted_accesses": result.stats.sorted_accesses,
                    "random_accesses": result.stats.random_accesses,
                    "rounds": result.coordinator_rounds,
                    "shard_rounds": result.shard_rounds,
                    "pruned_shards": len(result.pruned_shards),
                    "wall_ms": round(wall_ms, 3),
                }
            families["process-%d" % count]["speedup_vs_thread"] = speedup
    return {
        "corpus": dict(SPEEDUP_CORPUS),
        "k": k,
        "cost_ratio": cost_ratio,
        "shard_counts": list(shard_counts),
        "cpu_count": os.cpu_count(),
        "families": families,
        "process_speedup_at_gate": speedups[min(shard_counts)],
        "speedups": {str(c): s for c, s in speedups.items()},
    }


#: Geometry of the live-index corpus.  Mid-sized: large enough that
#: snapshot materialization amortizes real work, small enough that the
#: from-scratch rebuild comparison stays cheap in CI.
LIVE_CORPUS = {
    "num_docs": 60_000,
    "list_length": 20_000,
    "num_lists": 3,
    "block_size": 256,
    "seed": 41,
}

#: Update ops applied before the phase-A parity measurement.
LIVE_UPDATE_OPS = 4_000

#: Wall-clock budget of the phase-B sustained write/query stream.
LIVE_STREAM_SECONDS = 1.5


def _build_live_corpus():
    spec = LIVE_CORPUS
    rng = np.random.default_rng(spec["seed"])
    postings = {}
    terms = []
    for i in range(spec["num_lists"]):
        term = "t%d" % i
        terms.append(term)
        docs = rng.choice(
            spec["num_docs"], size=spec["list_length"], replace=False
        )
        scores = rng.random(spec["list_length"])
        postings[term] = list(zip(docs.tolist(), scores.tolist()))
    index = build_index(
        postings, num_docs=spec["num_docs"], block_size=spec["block_size"]
    )
    return index, terms, rng


def _live_fingerprint(result):
    return (
        tuple(
            (item.doc_id, item.worstscore, item.bestscore)
            for item in result.items
        ),
        result.stats.sorted_accesses,
        result.stats.random_accesses,
        result.stats.cost,
    )


def run_live(k: int = 10, cost_ratio: float = 1000.0) -> Dict:
    """The live-index section: snapshot parity cost + sustained writes.

    Phase A (deterministic, baseline-gated): a seeded stream of
    :data:`LIVE_UPDATE_OPS` upserts/deletes — with a seal after the
    first half and a forced compaction after the second — lands on a
    live index over the :data:`LIVE_CORPUS` base.  Every family then
    runs on the final snapshot and on an index rebuilt from scratch at
    the same epoch; any fingerprint divergence aborts the benchmark.
    The recorded rows carry the snapshot costs (identical to the
    rebuild's by construction — that identity is the point), both wall
    clocks, and the time to materialize the snapshot vs rebuild the
    static index.

    Phase B (timing only): a writer thread streams single-doc updates
    while the main thread runs queries through a
    :class:`~repro.live.binding.LiveBinding` with background
    maintenance sealing and compacting underneath.  Records sustained
    updates/sec and queries/sec over :data:`LIVE_STREAM_SECONDS`, plus
    the maintenance counters; a stream that applies zero updates or
    completes zero queries is a hard failure, not a slow data point.
    """
    import threading

    from ..live import LiveIndex, MaintenanceConfig

    index, terms, rng = _build_live_corpus()
    spec = LIVE_CORPUS
    live = LiveIndex(index)
    session = QuerySession(cost_ratio=cost_ratio)

    # ---- phase A: apply the update stream, then measure parity ----
    def one_op():
        doc = int(rng.integers(0, spec["num_docs"] + 2_000))
        if rng.random() < 0.7:
            live.upsert(doc, {
                t: float(rng.random()) for t in terms if rng.random() < 0.8
            } or {terms[0]: float(rng.random())})
        else:
            live.delete(doc)

    apply_started = time.perf_counter()
    for _ in range(LIVE_UPDATE_OPS // 2):
        one_op()
    live.seal()
    for _ in range(LIVE_UPDATE_OPS - LIVE_UPDATE_OPS // 2):
        one_op()
    live.seal()
    live.compact(force=True)
    apply_ms = (time.perf_counter() - apply_started) * 1000.0

    snap = live.snapshot()
    materialize_started = time.perf_counter()
    for term in snap.index.terms:
        snap.index.list_for(term)
    snapshot_materialize_ms = (
        time.perf_counter() - materialize_started
    ) * 1000.0

    rebuild_started = time.perf_counter()
    postings = {
        term: list(zip(
            snap.index.list_for(term).doc_ids_by_rank.tolist(),
            snap.index.list_for(term).scores_by_rank.tolist(),
        ))
        for term in snap.index.terms
    }
    rebuilt = build_index(
        postings, num_docs=snap.index.num_docs,
        block_size=spec["block_size"],
    )
    rebuild_ms = (time.perf_counter() - rebuild_started) * 1000.0

    session.stats_for(snap.index)
    session.stats_for(rebuilt)
    families = {}
    for family, algorithm in FAMILIES.items():
        started = time.perf_counter()
        ours = session.run(terms, k, algorithm=algorithm, index=snap.index)
        live_wall = (time.perf_counter() - started) * 1000.0
        started = time.perf_counter()
        theirs = session.run(terms, k, algorithm=algorithm, index=rebuilt)
        static_wall = (time.perf_counter() - started) * 1000.0
        if _live_fingerprint(ours) != _live_fingerprint(theirs):
            raise RuntimeError(
                "live snapshot diverged from the rebuilt index for %s"
                % algorithm
            )
        families[family] = {
            "algorithm": ours.algorithm,
            "cost": ours.stats.cost,
            "sorted_accesses": ours.stats.sorted_accesses,
            "random_accesses": ours.stats.random_accesses,
            "rounds": ours.stats.rounds,
            "wall_ms": round(live_wall, 3),
            "static_wall_ms": round(static_wall, 3),
        }
    snap.close()
    phase_a_stats = live.stats()

    # ---- phase B: sustained updates during a live query stream ----
    live.start_maintenance(
        MaintenanceConfig(seal_ops=1_000, max_segments=4, interval_s=0.01)
    )
    binding = session.open_live(live)
    updates = 0
    update_errors: List[BaseException] = []
    stop = threading.Event()

    def writer():
        nonlocal updates
        try:
            wrng = np.random.default_rng(spec["seed"] + 1)
            while not stop.is_set():
                doc = int(wrng.integers(0, spec["num_docs"]))
                live.upsert(doc, {
                    t: float(wrng.random()) for t in terms
                })
                updates += 1
        except BaseException as exc:
            update_errors.append(exc)

    thread = threading.Thread(target=writer)
    queries = 0
    stream_started = time.perf_counter()
    thread.start()
    try:
        while time.perf_counter() - stream_started < LIVE_STREAM_SECONDS:
            binding.run(terms, k, algorithm=FAMILIES["Ben-KSR"])
            queries += 1
    finally:
        stop.set()
        thread.join(30)
    stream_seconds = time.perf_counter() - stream_started
    if update_errors:
        raise RuntimeError("writer failed: %r" % update_errors[0])
    if updates == 0 or queries == 0:
        raise RuntimeError(
            "live stream stalled: %d updates, %d queries" % (updates, queries)
        )
    stream_stats = live.stats()
    binding.close()

    return {
        "corpus": dict(LIVE_CORPUS),
        "k": k,
        "cost_ratio": cost_ratio,
        "update_ops": LIVE_UPDATE_OPS,
        "apply_ms": round(apply_ms, 3),
        "snapshot_materialize_ms": round(snapshot_materialize_ms, 3),
        "rebuild_ms": round(rebuild_ms, 3),
        "materialize_vs_rebuild": round(
            snapshot_materialize_ms / max(rebuild_ms, 1e-9), 4
        ),
        "families": families,
        "phase_a": {
            "epoch": phase_a_stats["epoch"],
            "segments": phase_a_stats["segments"],
            "reclaimed_postings": phase_a_stats["reclaimed_postings"],
            "reclaimed_tombstones": phase_a_stats["reclaimed_tombstones"],
        },
        "stream": {
            "seconds": round(stream_seconds, 3),
            "updates": updates,
            "queries": queries,
            "updates_per_sec": round(updates / stream_seconds, 1),
            "queries_per_sec": round(queries / stream_seconds, 1),
            "seals": stream_stats["seals"] - phase_a_stats["seals"],
            "compactions": (
                stream_stats["compactions"] - phase_a_stats["compactions"]
            ),
        },
    }


def run_smoke(
    scale: float = 0.5,
    k: int = 10,
    cost_ratio: float = 1000.0,
    dataset_name: str = "terabyte-bm25",
    seed: int = 7,
    batch_blocks: int = 1,
    speedup: bool = True,
) -> Dict:
    """Run the smoke battery and return the JSON-ready report.

    ``batch_blocks`` defaults to 1 (one block per round) rather than the
    engine's one-block-per-list default: the generated lists are wide
    enough that a single default batch terminates most queries, and a
    multi-round run is what makes the per-round listener metrics (and
    the scheduling differences between families) visible.
    """
    dataset = load_dataset(dataset_name, scale=scale, seed=seed)
    session = QuerySession(
        index=dataset.index,
        cost_ratio=cost_ratio,
        batch_blocks=batch_blocks,
    )
    query = dataset.queries[0]

    build_started = time.perf_counter()
    session.stats_for()  # warm the catalog so per-family timings are pure
    stats_build_ms = (time.perf_counter() - build_started) * 1000.0

    families = {}
    for family, algorithm in FAMILIES.items():
        listener = MetricsListener()
        started = time.perf_counter()
        result = session.run(
            query, k, algorithm=algorithm, listeners=(listener,)
        )
        wall_ms = (time.perf_counter() - started) * 1000.0
        families[family] = {
            "algorithm": result.algorithm,
            "cost": result.stats.cost,
            "sorted_accesses": result.stats.sorted_accesses,
            "random_accesses": result.stats.random_accesses,
            "rounds": listener.rounds,
            "probe_events": listener.probe_events,
            "wall_ms": round(wall_ms, 3),
            "mean_round_ms": round(
                sum(listener.round_ms) / len(listener.round_ms), 4
            ) if listener.round_ms else 0.0,
        }
    report = {
        "benchmark": "smoke",
        "pr": "pr4-incremental-bookkeeping",
        "dataset": dataset_name,
        "scale": scale,
        "k": k,
        "cost_ratio": cost_ratio,
        "batch_blocks": batch_blocks,
        "query": list(query),
        "stats_build_ms": round(stats_build_ms, 3),
        "stats_builds": session.stats_builds,
        "queries_run": session.queries_run,
        "python": platform.python_version(),
        "families": families,
    }
    if speedup:
        report["bookkeeping_speedup"] = run_speedup(
            k=k, cost_ratio=cost_ratio
        )
    return report


def compare_to_baseline(
    report: Dict,
    baseline: Dict,
    gate_wall: bool = False,
    tolerance: float = REGRESSION_TOLERANCE,
) -> List[str]:
    """Per-family regressions of ``report`` against ``baseline``.

    Returns one message per violation (empty list: gate passes).  Cost
    is compared unconditionally — it is deterministic, so *any* growth
    beyond the tolerance is a real algorithmic regression.  Wall clock
    is compared only when ``gate_wall`` is set, because shared CI
    runners are noisy; local perf work should always pass it.
    """
    failures = []
    for family, row in sorted(baseline.get("families", {}).items()):
        current = report.get("families", {}).get(family)
        if current is None:
            failures.append("family %s missing from current run" % family)
            continue
        for metric, gated in (("cost", True), ("wall_ms", gate_wall)):
            if not gated or metric not in row or metric not in current:
                continue
            old = float(row[metric])
            new = float(current[metric])
            if new > old * (1.0 + tolerance):
                failures.append(
                    "%s %s regressed: %.3f -> %.3f (>%d%%)"
                    % (family, metric, old, new, tolerance * 100)
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.smoke",
        description="One query per algorithm family; timing/cost JSON.",
    )
    parser.add_argument("--output", default=None,
                        help="output JSON path (default BENCH_pr4.json, "
                             "BENCH_pr5.json with --sharded, or "
                             "BENCH_pr7.json with --columnar)")
    parser.add_argument("--sharded", action="store_true",
                        help="run the shard-count scaling section "
                             "(single-node vs sharded coordinator) "
                             "instead of the family battery")
    parser.add_argument("--columnar", action="store_true",
                        help="run only the bookkeeping-mode speedup "
                             "section (reference vs incremental vs "
                             "columnar) on the stress corpus")
    parser.add_argument("--threshold", action="store_true",
                        help="run the threshold-prediction section "
                             "(coordinator with vs without a plan-time "
                             "predicted threshold) on the shard-skewed "
                             "stress corpus")
    parser.add_argument("--processes", action="store_true",
                        help="run the process-backend scaling section "
                             "(thread vs process shard workers at 8/16 "
                             "shards) on the 400k-doc stress corpus")
    parser.add_argument("--live", action="store_true",
                        help="run the live-index section (snapshot vs "
                             "from-scratch rebuild parity, plus a "
                             "sustained update/query stream with "
                             "background maintenance)")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--cost-ratio", type=float, default=1000.0)
    parser.add_argument("--dataset", default="terabyte-bm25")
    parser.add_argument("--batch-blocks", type=int, default=1,
                        help="blocks scanned per round (default 1: "
                             "multi-round trajectories)")
    parser.add_argument("--no-speedup", action="store_true",
                        help="skip the incremental-vs-reference "
                             "bookkeeping speedup section")
    parser.add_argument("--baseline", default=None, metavar="JSON",
                        help="previous BENCH_*.json to gate against "
                             "(fail on >25%% per-family cost regression)")
    parser.add_argument("--gate-wall", action="store_true",
                        help="also gate per-family wall clock against "
                             "the baseline (off by default: CI noise)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless every speedup family reaches "
                             "this incremental-vs-reference ratio")
    parser.add_argument("--min-columnar-speedup", type=float, default=None,
                        help="fail unless every speedup family reaches "
                             "this columnar-vs-incremental ratio")
    parser.add_argument("--min-process-speedup", type=float, default=None,
                        help="fail unless the process backend beats the "
                             "thread backend's wall clock by this ratio "
                             "at the smallest recorded shard count "
                             "(multi-core CI runners only)")
    args = parser.parse_args(argv)

    if args.columnar:
        output = args.output or "BENCH_pr7.json"
        report = {
            "benchmark": "smoke-columnar",
            "pr": "pr7-columnar-bookkeeping",
            "python": platform.python_version(),
            "numpy": np.__version__,
        }
        report.update(run_speedup(k=args.k, cost_ratio=args.cost_ratio))
    elif args.threshold:
        output = args.output or "BENCH_pr8.json"
        report = {
            "benchmark": "smoke-threshold",
            "pr": "pr8-threshold-prediction",
            "python": platform.python_version(),
        }
        report.update(run_threshold(cost_ratio=args.cost_ratio))
    elif args.processes:
        output = args.output or "BENCH_pr9.json"
        report = {
            "benchmark": "smoke-processes",
            "pr": "pr9-process-backend",
            "python": platform.python_version(),
            "numpy": np.__version__,
        }
        report.update(run_processes(k=args.k, cost_ratio=args.cost_ratio))
    elif args.live:
        output = args.output or "BENCH_pr10.json"
        report = {
            "benchmark": "smoke-live",
            "pr": "pr10-live-index",
            "python": platform.python_version(),
            "numpy": np.__version__,
        }
        report.update(run_live(k=args.k, cost_ratio=args.cost_ratio))
    elif args.sharded:
        output = args.output or "BENCH_pr5.json"
        report = {
            "benchmark": "smoke-sharded",
            "pr": "pr5-distrib",
            "python": platform.python_version(),
        }
        report.update(run_sharding(cost_ratio=args.cost_ratio))
    else:
        output = args.output or "BENCH_pr4.json"
        report = run_smoke(
            scale=args.scale, k=args.k, cost_ratio=args.cost_ratio,
            dataset_name=args.dataset, batch_blocks=args.batch_blocks,
            speedup=not args.no_speedup,
        )
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for family, row in sorted(report["families"].items()):
        if "wall_ms" not in row:
            continue  # speedup rows print below, with all three walls
        line = "%-12s %-14s cost=%-10.0f rounds=%-4d wall=%.1fms" % (
            family, row["algorithm"], row["cost"], row["rounds"],
            row["wall_ms"],
        )
        if "gather_rounds" in row:
            line += " gather_rounds=%d pruned=%d" % (
                row["gather_rounds"], row["pruned_shards"],
            )
        print(line)
    speedup_section = (
        report if args.columnar else report.get("bookkeeping_speedup")
    )
    if speedup_section:
        for family, row in speedup_section["families"].items():
            print(
                "speedup %-8s %-14s ref=%.0fms incr=%.0fms col=%.0fms "
                "-> incr %.2fx columnar %.2fx"
                % (
                    family, row["algorithm"], row["reference_wall_ms"],
                    row["incremental_wall_ms"], row["columnar_wall_ms"],
                    row["speedup"], row["columnar_speedup"],
                )
            )
    if args.live:
        stream = report["stream"]
        print(
            "live stream: %.0f updates/s, %.0f queries/s over %.1fs "
            "(%d seals, %d compactions); materialize/rebuild=%.2f"
            % (stream["updates_per_sec"], stream["queries_per_sec"],
               stream["seconds"], stream["seals"], stream["compactions"],
               report["materialize_vs_rebuild"])
        )
    print("wrote %s" % output)

    exit_code = 0
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        failures = compare_to_baseline(
            report, baseline, gate_wall=args.gate_wall
        )
        for failure in failures:
            print("REGRESSION: %s" % failure)
        if failures:
            exit_code = 1
        else:
            print("baseline gate passed (%s)" % args.baseline)
    if args.min_speedup is not None:
        if not speedup_section:
            print("REGRESSION: --min-speedup given but speedup skipped")
            exit_code = 1
        elif speedup_section["min_speedup"] < args.min_speedup:
            print(
                "REGRESSION: bookkeeping speedup %.2fx below %.2fx"
                % (speedup_section["min_speedup"], args.min_speedup)
            )
            exit_code = 1
        else:
            print(
                "speedup gate passed (%.2fx >= %.2fx)"
                % (speedup_section["min_speedup"], args.min_speedup)
            )
    if args.min_process_speedup is not None:
        gate = report.get("process_speedup_at_gate")
        if gate is None:
            print("REGRESSION: --min-process-speedup given but the "
                  "--processes section was not run")
            exit_code = 1
        elif gate < args.min_process_speedup:
            print(
                "REGRESSION: process backend speedup %.2fx below %.2fx "
                "at %d shards (%d cores)"
                % (gate, args.min_process_speedup,
                   min(report["shard_counts"]), os.cpu_count() or 0)
            )
            exit_code = 1
        else:
            print(
                "process speedup gate passed (%.2fx >= %.2fx)"
                % (gate, args.min_process_speedup)
            )
    if args.min_columnar_speedup is not None:
        if not speedup_section:
            print("REGRESSION: --min-columnar-speedup given but speedup "
                  "skipped")
            exit_code = 1
        elif (
            speedup_section["min_columnar_speedup"]
            < args.min_columnar_speedup
        ):
            print(
                "REGRESSION: columnar speedup %.2fx below %.2fx"
                % (speedup_section["min_columnar_speedup"],
                   args.min_columnar_speedup)
            )
            exit_code = 1
        else:
            print(
                "columnar speedup gate passed (%.2fx >= %.2fx)"
                % (speedup_section["min_columnar_speedup"],
                   args.min_columnar_speedup)
            )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
