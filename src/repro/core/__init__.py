"""Core: the TA-family engine, scheduling policies, baselines, and bounds."""

from .algorithms import (
    TopKProcessor,
    available_algorithms,
    canonical_name,
    make_policies,
    run_query,
)
from .bookkeeping import Candidate, CandidatePool
from .engine import QueryDeadline, QueryState, RAPolicy, SAPolicy, TopKEngine
from .full_merge import full_merge
from .lower_bound import LowerBoundComputer
from .results import QueryStats, RankedItem, TopKResult

__all__ = [
    "Candidate",
    "CandidatePool",
    "LowerBoundComputer",
    "QueryDeadline",
    "QueryState",
    "QueryStats",
    "RAPolicy",
    "RankedItem",
    "SAPolicy",
    "TopKEngine",
    "TopKProcessor",
    "TopKResult",
    "available_algorithms",
    "canonical_name",
    "full_merge",
    "make_policies",
    "run_query",
]
