"""Core: the planner/executor/session query path, policies, and bounds."""

from .algorithms import (
    TopKProcessor,
    available_algorithms,
    canonical_name,
    make_policies,
    plan,
    run_query,
)
from .bookkeeping import Candidate, CandidatePool
from .engine import DegradedExecution, QueryState, RAPolicy, SAPolicy
from .executor import (
    ExecutionListener,
    QueryDeadline,
    QueryExecutor,
    TopKEngine,
    TraceListener,
)
from .full_merge import full_merge
from .lower_bound import LowerBoundComputer
from .planner import QueryPlan
from .results import QueryStats, RankedItem, TopKResult
from .session import (
    DEFAULT_ALGORITHM,
    QuerySession,
    ShardedSession,
    reset_shared_session,
    shared_session,
)

__all__ = [
    "Candidate",
    "CandidatePool",
    "DEFAULT_ALGORITHM",
    "DegradedExecution",
    "ExecutionListener",
    "LowerBoundComputer",
    "QueryDeadline",
    "QueryExecutor",
    "QueryPlan",
    "QuerySession",
    "QueryState",
    "QueryStats",
    "RAPolicy",
    "RankedItem",
    "SAPolicy",
    "ShardedSession",
    "TopKEngine",
    "TopKProcessor",
    "TopKResult",
    "TraceListener",
    "available_algorithms",
    "canonical_name",
    "full_merge",
    "make_policies",
    "plan",
    "reset_shared_session",
    "run_query",
    "shared_session",
]
