"""Algorithm registry and planning: TA-family methods as named triples.

The paper's taxonomy (Sec. 2.4) identifies an algorithm by how it schedules
sorted accesses, when it schedules random accesses, and in which order it
performs them.  Names follow the paper:

=====================  =============================================
Name                   Meaning
=====================  =============================================
``RR-Never``           NRA — round-robin scans, no random accesses
``RR-All``             TA — resolve every new document immediately
``RR-Each-Best``       CA — one RA per cR/cS SAs, on the best candidate
``RR-Top-Best``        Upper — probe while a candidate beats all unseen
``RR-Pick-Best``       Pick — naive SA phase, then probe everything
``RR-Pick-Ben``        Pick's naive switch, but EWC-ordered probes
``RR-Last-Best``       Last-Probing, bestscore-ordered probes
``RR-Last-Ben``        Ben-Probing (EWC switch + EWC-ordered probes)
``KSR-...`` ``KBA-...``  same RA schemes with knapsack SA scheduling
=====================  =============================================

Aliases ``NRA``, ``TA``, ``CA``, ``Upper`` and ``Pick`` map to the canonical
triples.  Policy instances carry per-query state, so the factory functions
build fresh objects for every query execution.

This module is also the **planner** step of the layered query path:
:func:`plan` resolves a request into an immutable
:class:`~repro.core.planner.QueryPlan` consumed by
:class:`~repro.core.executor.QueryExecutor`, usually via a statistics-
caching :class:`~repro.core.session.QuerySession` (which
:class:`TopKProcessor` and :func:`run_query` wrap).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..stats.catalog import StatsCatalog
from ..storage.accessors import RetryPolicy
from ..storage.block_index import InvertedBlockIndex
from ..storage.diskmodel import CostModel
from .engine import RAPolicy, SAPolicy
from .executor import QueryDeadline, QueryExecutor
from .planner import QueryPlan
from .ra.ben import BenProbe
from .ra.last import LastProbe, PickProbe
from .ra.ordering import BenOrdering, BestOrdering
from .ra.simple import AllProbe, EachProbe, NeverProbe, TopProbe
from .results import TopKResult
from .sa.kba import KnapsackBenefitAggregation
from .sa.ksr import KnapsackScoreReduction
from .sa.round_robin import RoundRobin
from .session import DEFAULT_ALGORITHM, QuerySession, shared_session

_SA_FACTORIES: Dict[str, Callable[[], SAPolicy]] = {
    "RR": RoundRobin,
    "KSR": KnapsackScoreReduction,
    "KBA": KnapsackBenefitAggregation,
}

_RA_FACTORIES: Dict[str, Callable[[], RAPolicy]] = {
    "Never": NeverProbe,
    "All": AllProbe,
    "Each-Best": EachProbe,
    "Top-Best": TopProbe,
    "Pick-Best": lambda: PickProbe(BestOrdering()),
    "Pick-Ben": lambda: PickProbe(BenOrdering()),
    "Last-Best": lambda: LastProbe(BestOrdering()),
    "Last-Ben": BenProbe,
}

_ALIASES: Dict[str, str] = {
    "NRA": "RR-Never",
    "TA": "RR-All",
    "CA": "RR-Each-Best",
    "UPPER": "RR-Top-Best",
    "PICK": "RR-Pick-Best",
}


def canonical_name(name: str) -> str:
    """Resolve aliases and validate an algorithm name."""
    resolved = _ALIASES.get(name.upper(), name)
    sa_name, _, ra_name = resolved.partition("-")
    if sa_name not in _SA_FACTORIES or ra_name not in _RA_FACTORIES:
        raise ValueError(
            "unknown algorithm %r; valid: %s plus aliases %s"
            % (name, sorted(available_algorithms()), sorted(_ALIASES))
        )
    return resolved


def available_algorithms() -> List[str]:
    """All canonical algorithm names."""
    return [
        "%s-%s" % (sa, ra) for sa in _SA_FACTORIES for ra in _RA_FACTORIES
    ]


def make_policies(name: str) -> Tuple[SAPolicy, RAPolicy, str]:
    """Fresh per-query policy instances for a (possibly aliased) name."""
    resolved = canonical_name(name)
    sa_name, _, ra_name = resolved.partition("-")
    return _SA_FACTORIES[sa_name](), _RA_FACTORIES[ra_name](), resolved


def plan(
    terms: Sequence[str],
    k: int,
    algorithm: str = DEFAULT_ALGORITHM,
    weights: Optional[Sequence[float]] = None,
    prune_epsilon: float = 0.0,
    deadline: Optional[QueryDeadline] = None,
    cost_model: Optional[CostModel] = None,
    batch_blocks: Optional[int] = None,
    predicted_threshold=None,
) -> QueryPlan:
    """The planner step: resolve and validate a query into a plan.

    Resolves ``algorithm`` (aliases included) against the registry, wires
    the policy factories into the plan so every execution gets fresh
    policy instances, and validates the query shape (non-empty terms,
    positive ``k``, matching positive weights) up front — before any
    index access happens.  The returned
    :class:`~repro.core.planner.QueryPlan` is immutable and reusable
    across executors and indexes.
    """
    resolved = canonical_name(algorithm)
    sa_name, _, ra_name = resolved.partition("-")
    return QueryPlan(
        algorithm=resolved,
        terms=tuple(terms),
        k=int(k),
        weights=(
            None if weights is None else tuple(float(w) for w in weights)
        ),
        prune_epsilon=float(prune_epsilon),
        deadline=deadline,
        cost_model=cost_model,
        batch_blocks=batch_blocks,
        predicted_threshold=predicted_threshold,
        sa_factory=_SA_FACTORIES[sa_name],
        ra_factory=_RA_FACTORIES[ra_name],
    )


class TopKProcessor:
    """High-level query façade: one index + a session-backed query path.

    This is the library's classic entry point::

        processor = TopKProcessor(index, cost_ratio=1000)
        result = processor.query(["kyrgyzstan", "united", "states"], k=10)
        print(result.doc_ids, result.stats.cost)

    Internally every query routes through the layered path — a
    :func:`plan` step, then a cached
    :class:`~repro.core.executor.QueryExecutor` owned by a
    :class:`~repro.core.session.QuerySession` — so statistics are built
    once per index, not per query.  Pass ``session=`` to share one
    session (and hence one statistics catalog per index) across several
    processors, e.g. processors differing only in cost ratio.
    """

    def __init__(
        self,
        index: InvertedBlockIndex,
        cost_ratio: float = 1000.0,
        batch_blocks: Optional[int] = None,
        num_buckets: int = 100,
        use_correlations: bool = True,
        predictor: str = "histogram",
        retry_policy: Optional[RetryPolicy] = None,
        session: Optional[QuerySession] = None,
    ) -> None:
        """``predictor`` selects the probabilistic machinery: "histogram"
        (the paper's convolution-based predictor) or "normal" (the
        RankSQL-style Normal approximation, for comparison).

        ``retry_policy`` enables fault recovery on every query: storage
        faults (see :mod:`repro.storage.faults`) are retried with
        exponential backoff within a per-query budget, and a list that
        exhausts its budget is dropped with the result flagged degraded.
        Without a policy any storage fault immediately fails its list."""
        self.index = index
        self.cost_model = CostModel.from_ratio(cost_ratio)
        self.batch_blocks = batch_blocks
        if session is None:
            session = QuerySession(
                index=index,
                cost_ratio=cost_ratio,
                batch_blocks=batch_blocks,
                num_buckets=num_buckets,
                use_correlations=use_correlations,
                predictor=predictor,
                retry_policy=retry_policy,
            )
        self.session = session

    @property
    def stats(self) -> StatsCatalog:
        """The session-cached statistics catalog for this index."""
        return self.session.stats_for(self.index)

    @stats.setter
    def stats(self, catalog: StatsCatalog) -> None:
        self.session.attach_stats(catalog, self.index)

    @property
    def engine(self) -> QueryExecutor:
        """The session-cached executor for this index."""
        return self.session.executor_for(self.index)

    def query(
        self,
        terms: Sequence[str],
        k: int,
        algorithm: str = DEFAULT_ALGORITHM,
        weights: Optional[Sequence[float]] = None,
        trace: bool = False,
        prune_epsilon: float = 0.0,
        deadline: Optional[QueryDeadline] = None,
    ) -> TopKResult:
        """Run one top-k query with the named TA-family algorithm.

        ``weights`` (one positive factor per term, default all 1.0) turn
        the aggregation into the paper's monotone *weighted* summation;
        ``trace=True`` attaches per-round execution snapshots to the
        result (collected via an
        :class:`~repro.core.executor.ExecutionListener`);
        ``prune_epsilon > 0`` switches to approximate processing with
        probabilistic candidate pruning (exact when 0);
        ``deadline`` bounds the execution (wall-clock and/or cost) and
        returns an anytime result flagged ``degraded`` when it fires.
        """
        query_plan = plan(
            terms,
            k,
            algorithm,
            weights=weights,
            prune_epsilon=prune_epsilon,
            deadline=deadline,
            cost_model=self.cost_model,
            batch_blocks=self.batch_blocks,
        )
        return self.session.run(
            plan=query_plan, index=self.index, trace=trace
        )

    def full_merge(
        self,
        terms: Sequence[str],
        k: int,
        weights: Optional[Sequence[float]] = None,
    ) -> TopKResult:
        """The DBMS-style FullMerge baseline (scan everything, sort)."""
        from .full_merge import full_merge

        return full_merge(
            self.index, terms, k, self.cost_model, weights=weights
        )

    def lower_bound(
        self,
        terms: Sequence[str],
        k: int,
        weights: Optional[Sequence[float]] = None,
    ) -> float:
        """Sec. 2.5 per-query lower bound on any TA-family method's cost."""
        from .lower_bound import LowerBoundComputer

        computer = LowerBoundComputer(self.index, terms, weights=weights)
        return computer.cost_for_k(k, self.cost_model.ratio)


def run_query(
    index: InvertedBlockIndex,
    terms: Sequence[str],
    k: int,
    algorithm: str = DEFAULT_ALGORITHM,
    cost_ratio: float = 1000.0,
    batch_blocks: Optional[int] = None,
    stats: Optional[StatsCatalog] = None,
    weights: Optional[Sequence[float]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    deadline: Optional[QueryDeadline] = None,
) -> TopKResult:
    """One-shot convenience wrapper over the planner/executor/session path.

    Statistics sharing semantics: with ``stats=None`` the catalog comes
    from the process-wide :func:`repro.core.session.shared_session`
    cache, so repeated ``run_query`` calls against the same index object
    reuse one :class:`StatsCatalog` (histograms and covariance tables are
    computed once, not per call).  The shared cache holds strong
    references to at most
    :data:`repro.core.session.SHARED_SESSION_MAX_INDEXES` recently used
    indexes (LRU-evicted beyond that).  Pass an explicit ``stats``
    catalog to control sharing yourself — it is used as-is and not
    entered into the cache.

    Prefer a :class:`~repro.core.session.QuerySession` (or
    :class:`TopKProcessor`) when running many queries, for batch APIs and
    scoped caching.
    """
    query_plan = plan(
        terms,
        k,
        algorithm,
        weights=weights,
        deadline=deadline,
        cost_model=CostModel.from_ratio(cost_ratio),
        batch_blocks=batch_blocks,
    )
    catalog = stats if stats is not None else shared_session().stats_for(index)
    executor = QueryExecutor(
        index=index, stats=catalog, retry_policy=retry_policy
    )
    return executor.execute(query_plan)
