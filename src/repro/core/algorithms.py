"""Algorithm registry: every TA-family method as a named policy triple.

The paper's taxonomy (Sec. 2.4) identifies an algorithm by how it schedules
sorted accesses, when it schedules random accesses, and in which order it
performs them.  Names follow the paper:

=====================  =============================================
Name                   Meaning
=====================  =============================================
``RR-Never``           NRA — round-robin scans, no random accesses
``RR-All``             TA — resolve every new document immediately
``RR-Each-Best``       CA — one RA per cR/cS SAs, on the best candidate
``RR-Top-Best``        Upper — probe while a candidate beats all unseen
``RR-Pick-Best``       Pick — naive SA phase, then probe everything
``RR-Last-Best``       Last-Probing, bestscore-ordered probes
``RR-Last-Ben``        Ben-Probing (EWC switch + EWC-ordered probes)
``KSR-...`` ``KBA-...``  same RA schemes with knapsack SA scheduling
=====================  =============================================

Aliases ``NRA``, ``TA``, ``CA``, ``Upper`` and ``Pick`` map to the canonical
triples.  Policy instances carry per-query state, so the factory functions
build fresh objects for every query execution.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..stats.catalog import StatsCatalog
from ..storage.accessors import RetryPolicy
from ..storage.block_index import InvertedBlockIndex
from ..storage.diskmodel import CostModel
from .engine import QueryDeadline, RAPolicy, SAPolicy, TopKEngine
from .ra.ben import BenProbe
from .ra.last import LastProbe, PickProbe
from .ra.ordering import BenOrdering, BestOrdering
from .ra.simple import AllProbe, EachProbe, NeverProbe, TopProbe
from .results import TopKResult
from .sa.kba import KnapsackBenefitAggregation
from .sa.ksr import KnapsackScoreReduction
from .sa.round_robin import RoundRobin

_SA_FACTORIES: Dict[str, Callable[[], SAPolicy]] = {
    "RR": RoundRobin,
    "KSR": KnapsackScoreReduction,
    "KBA": KnapsackBenefitAggregation,
}

_RA_FACTORIES: Dict[str, Callable[[], RAPolicy]] = {
    "Never": NeverProbe,
    "All": AllProbe,
    "Each-Best": EachProbe,
    "Top-Best": TopProbe,
    "Pick-Best": lambda: PickProbe(BestOrdering()),
    "Pick-Ben": lambda: PickProbe(BenOrdering()),
    "Last-Best": lambda: LastProbe(BestOrdering()),
    "Last-Ben": BenProbe,
}

_ALIASES: Dict[str, str] = {
    "NRA": "RR-Never",
    "TA": "RR-All",
    "CA": "RR-Each-Best",
    "UPPER": "RR-Top-Best",
    "PICK": "RR-Pick-Best",
}


def canonical_name(name: str) -> str:
    """Resolve aliases and validate an algorithm name."""
    resolved = _ALIASES.get(name.upper(), name)
    sa_name, _, ra_name = resolved.partition("-")
    if sa_name not in _SA_FACTORIES or ra_name not in _RA_FACTORIES:
        raise ValueError(
            "unknown algorithm %r; valid: %s plus aliases %s"
            % (name, sorted(available_algorithms()), sorted(_ALIASES))
        )
    return resolved


def available_algorithms() -> List[str]:
    """All canonical algorithm names."""
    return [
        "%s-%s" % (sa, ra) for sa in _SA_FACTORIES for ra in _RA_FACTORIES
    ]


def make_policies(name: str) -> Tuple[SAPolicy, RAPolicy, str]:
    """Fresh per-query policy instances for a (possibly aliased) name."""
    resolved = canonical_name(name)
    sa_name, _, ra_name = resolved.partition("-")
    return _SA_FACTORIES[sa_name](), _RA_FACTORIES[ra_name](), resolved


class TopKProcessor:
    """High-level query façade: index + statistics + engine in one object.

    This is the library's main entry point::

        processor = TopKProcessor(index, cost_ratio=1000)
        result = processor.query(["kyrgyzstan", "united", "states"], k=10)
        print(result.doc_ids, result.stats.cost)
    """

    def __init__(
        self,
        index: InvertedBlockIndex,
        cost_ratio: float = 1000.0,
        batch_blocks: Optional[int] = None,
        num_buckets: int = 100,
        use_correlations: bool = True,
        predictor: str = "histogram",
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        """``predictor`` selects the probabilistic machinery: "histogram"
        (the paper's convolution-based predictor) or "normal" (the
        RankSQL-style Normal approximation, for comparison).

        ``retry_policy`` enables fault recovery on every query: storage
        faults (see :mod:`repro.storage.faults`) are retried with
        exponential backoff within a per-query budget, and a list that
        exhausts its budget is dropped with the result flagged degraded.
        Without a policy any storage fault immediately fails its list."""
        from ..stats.normal_predictor import NormalScorePredictor
        from ..stats.score_predictor import ScorePredictor

        predictor_classes = {
            "histogram": ScorePredictor,
            "normal": NormalScorePredictor,
        }
        if predictor not in predictor_classes:
            raise ValueError(
                "unknown predictor %r; valid: %s"
                % (predictor, sorted(predictor_classes))
            )
        self.index = index
        self.cost_model = CostModel.from_ratio(cost_ratio)
        self.stats = StatsCatalog(
            index, num_buckets=num_buckets, use_correlations=use_correlations
        )
        self.engine = TopKEngine(
            index=index,
            stats=self.stats,
            cost_model=self.cost_model,
            batch_blocks=batch_blocks,
            predictor_cls=predictor_classes[predictor],
            retry_policy=retry_policy,
        )

    def query(
        self,
        terms: Sequence[str],
        k: int,
        algorithm: str = "KSR-Last-Ben",
        weights: Optional[Sequence[float]] = None,
        trace: bool = False,
        prune_epsilon: float = 0.0,
        deadline: Optional[QueryDeadline] = None,
    ) -> TopKResult:
        """Run one top-k query with the named TA-family algorithm.

        ``weights`` (one positive factor per term, default all 1.0) turn
        the aggregation into the paper's monotone *weighted* summation;
        ``trace=True`` attaches per-round engine snapshots to the result;
        ``prune_epsilon > 0`` switches to approximate processing with
        probabilistic candidate pruning (exact when 0);
        ``deadline`` bounds the execution (wall-clock and/or cost) and
        returns an anytime result flagged ``degraded`` when it fires.
        """
        sa_policy, ra_policy, resolved = make_policies(algorithm)
        return self.engine.run(
            terms, k, sa_policy, ra_policy, algorithm_name=resolved,
            weights=weights, trace=trace, prune_epsilon=prune_epsilon,
            deadline=deadline,
        )

    def full_merge(
        self,
        terms: Sequence[str],
        k: int,
        weights: Optional[Sequence[float]] = None,
    ) -> TopKResult:
        """The DBMS-style FullMerge baseline (scan everything, sort)."""
        from .full_merge import full_merge

        return full_merge(
            self.index, terms, k, self.cost_model, weights=weights
        )

    def lower_bound(
        self,
        terms: Sequence[str],
        k: int,
        weights: Optional[Sequence[float]] = None,
    ) -> float:
        """Sec. 2.5 per-query lower bound on any TA-family method's cost."""
        from .lower_bound import LowerBoundComputer

        computer = LowerBoundComputer(self.index, terms, weights=weights)
        return computer.cost_for_k(k, self.cost_model.ratio)


def run_query(
    index: InvertedBlockIndex,
    terms: Sequence[str],
    k: int,
    algorithm: str = "KSR-Last-Ben",
    cost_ratio: float = 1000.0,
    batch_blocks: Optional[int] = None,
    stats: Optional[StatsCatalog] = None,
    weights: Optional[Sequence[float]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    deadline: Optional[QueryDeadline] = None,
) -> TopKResult:
    """One-shot convenience wrapper around :class:`TopKProcessor`.

    Prefer :class:`TopKProcessor` (or sharing a :class:`StatsCatalog`) when
    running many queries against the same index, so histograms and
    covariance tables are computed once.
    """
    sa_policy, ra_policy, resolved = make_policies(algorithm)
    engine = TopKEngine(
        index=index,
        stats=stats,
        cost_model=CostModel.from_ratio(cost_ratio),
        batch_blocks=batch_blocks,
        retry_policy=retry_policy,
    )
    return engine.run(
        terms, k, sa_policy, ra_policy, algorithm_name=resolved,
        weights=weights, deadline=deadline,
    )
