"""Candidate bookkeeping for TA-style processing (paper Sec. 2.3).

For every encountered document the engine tracks the set of evaluated
dimensions ``E(d)`` (a bitmask) and the lower bound ``worstscore(d)`` (sum of
known scores).  The matching upper bound is derived on demand:

    bestscore(d) = worstscore(d) + sum of high_i over unevaluated dimensions

The pool maintains the two conceptual priority queues of the paper — the
current top-k (by worstscore) and the candidate queue (everything else whose
bestscore still beats the threshold ``min-k``) — and prunes candidates whose
bestscore can no longer exceed ``min-k``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Slack used when comparing floating-point score bounds.  Pruning uses
#: ``bestscore <= min_k + EPSILON`` — a candidate that can at most *tie* the
#: current rank-k item is never needed for a correct top-k set.  This also
#: defines the library's precision contract: score differences below
#: EPSILON are treated as ties, and aggregated scores below EPSILON are
#: indistinguishable from zero (scores are assumed normalized to a range
#: around [0, 1], paper Sec. 2.1).
EPSILON = 1e-9


class Candidate:
    """Mutable per-document state: lower bound and evaluated-dimension mask."""

    __slots__ = ("doc_id", "worstscore", "seen_mask")

    def __init__(self, doc_id: int) -> None:
        self.doc_id = doc_id
        self.worstscore = 0.0
        self.seen_mask = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Candidate(doc=%d, worst=%.4f, seen=%s)" % (
            self.doc_id,
            self.worstscore,
            bin(self.seen_mask),
        )


class CandidatePool:
    """All alive candidates of one query, with threshold-based pruning."""

    def __init__(self, num_lists: int, k: int) -> None:
        if not 1 <= num_lists <= 60:
            raise ValueError("num_lists must be between 1 and 60")
        if k <= 0:
            raise ValueError("k must be positive")
        self.num_lists = num_lists
        self.k = k
        self.full_mask = (1 << num_lists) - 1
        self.candidates: Dict[int, Candidate] = {}
        self.min_k = 0.0
        self.topk_ids: set = set()
        self._miss_sums: Dict[int, float] = {0: 0.0}
        self._highs: Tuple[float, ...] = tuple([float("inf")] * num_lists)
        self.peak_size = 0

    # ------------------------------------------------------------------
    # Updates from index accesses
    # ------------------------------------------------------------------
    def absorb_postings(
        self, dim: int, doc_ids: Sequence[int], scores: Sequence[float]
    ) -> List[int]:
        """Merge one list's batch of postings; returns newly seen doc ids."""
        bit = 1 << dim
        new_docs: List[int] = []
        candidates = self.candidates
        for doc_id, score in zip(doc_ids, scores):
            doc_id = int(doc_id)
            cand = candidates.get(doc_id)
            if cand is None:
                cand = Candidate(doc_id)
                candidates[doc_id] = cand
                new_docs.append(doc_id)
            if cand.seen_mask & bit:
                continue  # already resolved by an earlier random access
            cand.seen_mask |= bit
            cand.worstscore += float(score)
        self.peak_size = max(self.peak_size, len(candidates))
        return new_docs

    def resolve_dimension(self, doc_id: int, dim: int, score: float) -> Candidate:
        """Record a random-access lookup result for one dimension."""
        bit = 1 << dim
        cand = self.candidates.get(doc_id)
        if cand is None:
            cand = Candidate(doc_id)
            self.candidates[doc_id] = cand
        if not cand.seen_mask & bit:
            cand.seen_mask |= bit
            cand.worstscore += float(score)
        return cand

    # ------------------------------------------------------------------
    # Derived bounds
    # ------------------------------------------------------------------
    def set_highs(self, highs: Sequence[float]) -> None:
        """Install the current ``high_i`` vector and reset the mask cache."""
        self._highs = tuple(float(h) for h in highs)
        self._miss_sums = {self.full_mask: 0.0}

    def missing_high_sum(self, seen_mask: int) -> float:
        """Sum of ``high_i`` over the dimensions *not* in ``seen_mask``."""
        cached = self._miss_sums.get(seen_mask)
        if cached is None:
            cached = sum(
                self._highs[i]
                for i in range(self.num_lists)
                if not seen_mask >> i & 1
            )
            self._miss_sums[seen_mask] = cached
        return cached

    def bestscore(self, cand: Candidate) -> float:
        """Upper bound for the candidate's final aggregated score."""
        return cand.worstscore + self.missing_high_sum(cand.seen_mask)

    @property
    def unseen_bestscore(self) -> float:
        """Upper bound for any document never encountered: sum of highs."""
        return self.missing_high_sum(0)

    def missing_dims(self, cand: Candidate) -> List[int]:
        """Unevaluated dimensions ``E(d)`` of the candidate."""
        return [
            i for i in range(self.num_lists) if not cand.seen_mask >> i & 1
        ]

    # ------------------------------------------------------------------
    # Threshold maintenance and pruning
    # ------------------------------------------------------------------
    def recompute(self) -> None:
        """Recompute the top-k / min-k split and prune dead candidates.

        Must be called after :meth:`set_highs` whenever scan positions or
        candidate states changed.  Pruning removes every candidate outside
        the current top-k whose bestscore cannot exceed ``min-k``.
        """
        candidates = self.candidates
        if not candidates:
            self.topk_ids = set()
            self.min_k = 0.0
            return
        top = heapq.nlargest(
            self.k,
            candidates.values(),
            key=lambda c: (c.worstscore, -c.doc_id),
        )
        self.topk_ids = {c.doc_id for c in top}
        self.min_k = top[-1].worstscore if len(top) >= self.k else 0.0
        threshold = self.min_k + EPSILON
        if self.min_k <= 0.0:
            return
        dead = [
            doc_id
            for doc_id, cand in candidates.items()
            if doc_id not in self.topk_ids and self.bestscore(cand) <= threshold
        ]
        for doc_id in dead:
            del candidates[doc_id]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def queue(self) -> List[Candidate]:
        """Candidates outside the current top-k (the paper's queue ``Q``)."""
        return [
            cand
            for doc_id, cand in self.candidates.items()
            if doc_id not in self.topk_ids
        ]

    def unresolved(self) -> List[Candidate]:
        """All candidates (queue and top-k) with at least one missing dim."""
        return [
            cand
            for cand in self.candidates.values()
            if cand.seen_mask != self.full_mask
        ]

    def topk_candidates(self) -> List[Candidate]:
        """The current top-k candidates in descending worstscore order."""
        top = [self.candidates[d] for d in self.topk_ids]
        top.sort(key=lambda c: (-c.worstscore, c.doc_id))
        return top

    def topk_worstscores(self) -> np.ndarray:
        """Worstscores of the current top-k items (unordered)."""
        return np.array(
            [self.candidates[d].worstscore for d in self.topk_ids],
            dtype=np.float64,
        )

    @property
    def is_terminated(self) -> bool:
        """Paper Sec. 2.3 stop rule: no candidate (queued or unseen) can
        still exceed ``min-k``, and the top-k is fully populated (or fewer
        than k scored documents exist and nothing relevant remains unseen)."""
        if len(self.candidates) < self.k:
            # Fewer than k docs encountered: done only once no unseen doc
            # can carry any positive score at all.
            return self.unseen_bestscore <= EPSILON
        threshold = self.min_k + EPSILON
        if self.unseen_bestscore > threshold:
            return False
        for doc_id, cand in self.candidates.items():
            if doc_id in self.topk_ids:
                continue
            if self.bestscore(cand) > threshold:
                return False
        return True

    def __len__(self) -> int:
        return len(self.candidates)
