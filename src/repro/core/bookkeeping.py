"""Candidate bookkeeping for TA-style processing (paper Sec. 2.3).

For every encountered document the engine tracks the set of evaluated
dimensions ``E(d)`` (a bitmask) and the lower bound ``worstscore(d)`` (sum of
known scores).  The matching upper bound is derived on demand:

    bestscore(d) = worstscore(d) + sum of high_i over unevaluated dimensions

The pool maintains the two conceptual priority queues of the paper — the
current top-k (by worstscore) and the candidate queue (everything else whose
bestscore still beats the threshold ``min-k``) — and prunes candidates whose
bestscore can no longer exceed ``min-k``.

Incremental maintenance
-----------------------

Fagin-style threshold algorithms only ever need *views* of the candidate
set: the current top-k, the ``min-k`` threshold, and whether any queued or
unseen document can still beat it.  Rebuilding those views from scratch
every round costs O(n log n) on a structure that changes by a handful of
documents per batch, so the pool maintains them incrementally:

* a **lazy min-heap over worstscores** for the current top-k — the rank-k
  item (and hence ``min-k``) is the valid heap minimum; stale entries
  (from worstscore growth or eviction) are discarded on pop,
* **per-mask lazy heaps** over the candidate queue.  Within one
  ``seen_mask`` group every candidate shares the same missing-high sum,
  so ``bestscore`` ordering reduces to ``worstscore`` ordering — which
  never changes while the mask is fixed (worstscore and mask always
  change together).  A min-heap per group yields threshold pruning with
  early exit; a max-heap per group yields the termination test without a
  full scan.  Entry validity is ``(doc alive, not in top-k, mask
  unchanged)``, checked lazily,
* **dirty marking** — :meth:`absorb_postings` / :meth:`resolve_dimension`
  record the touched documents; :meth:`recompute` only reinserts those
  into the heaps instead of re-sorting the whole pool,
* **epoch-based invalidation** — :meth:`set_highs` bumps an epoch and
  resets the missing-high-sum cache only when the ``high_i`` vector
  actually moved; the worstscore-keyed heaps survive unchanged because
  highs never enter their keys (only the per-group *bounds* derived at
  prune/termination time do).

The pre-existing full-recompute implementation is kept, verbatim, as the
*reference mode* (``CandidatePool(..., incremental=False)`` or the
:func:`reference_pools` context manager).  The differential test harness
runs both modes against each other, and the smoke benchmark measures the
round-loop speedup of the incremental mode; both modes are
access-identical by construction and by test.

The incremental structures stay reference-identical under *arbitrary*
API use (the property suite drives random operation scripts against both
modes), but their performance — and the "terminated never flips back"
guarantee — comes from the engine's monotone regime: highs never
increase (scan positions only advance), worstscores never decrease, and
therefore bestscores never increase and ``min-k`` never decreases.
"""

from __future__ import annotations

import contextlib
import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Slack used when comparing floating-point score bounds.  Pruning uses
#: ``bestscore <= min_k + EPSILON`` — a candidate that can at most *tie* the
#: current rank-k item is never needed for a correct top-k set.  This also
#: defines the library's precision contract: score differences below
#: EPSILON are treated as ties, and aggregated scores below EPSILON are
#: indistinguishable from zero (scores are assumed normalized to a range
#: around [0, 1], paper Sec. 2.1).
EPSILON = 1e-9

#: Extra slack on the *pre-filter* bound of the per-group prune/termination
#: tests.  The group bound rearranges ``worstscore + miss_sum <= threshold``
#: into ``worstscore <= threshold - miss_sum``, which is not float-exact;
#: the pre-filter therefore over-approximates by this margin and every
#: surviving entry is confirmed with the original left-hand-side expression,
#: keeping the pruned set bit-identical to the reference implementation.
_BOUND_SLACK = 1e-9

#: Module default for new pools: incremental (True) or reference (False).
#: Flipped temporarily by :func:`reference_pools`; code that constructs
#: a :class:`CandidatePool` without an explicit flag inherits this default.
_DEFAULT_INCREMENTAL = True

#: The three bookkeeping implementations the engine can run on.
#: ``columnar`` is the struct-of-arrays hot path
#: (:class:`repro.core.columnar.ColumnarPool`), ``incremental`` the
#: lazy-heap object pool, ``reference`` the full-recompute scalar oracle.
#: All three are access-identical — same float bits, same accesses, same
#: traces — which the differential and property suites enforce.
BOOKKEEPING_MODES = ("columnar", "incremental", "reference")

#: Environment variable overriding the default bookkeeping mode (one of
#: :data:`BOOKKEEPING_MODES`).  Explicit arguments and the
#: :func:`bookkeeping_mode` context still take precedence.
BOOKKEEPING_MODE_ENV = "REPRO_BOOKKEEPING_MODE"

#: Default engine mode when neither an argument, a context override, nor
#: the environment selects one.
_DEFAULT_MODE = "columnar"

#: Context override installed by :func:`bookkeeping_mode` (and
#: :func:`reference_pools`); None when no context is active.
_MODE_OVERRIDE: Optional[str] = None


def _validate_mode(mode: str) -> str:
    if mode not in BOOKKEEPING_MODES:
        raise ValueError(
            "unknown bookkeeping mode %r; valid: %s"
            % (mode, ", ".join(BOOKKEEPING_MODES))
        )
    return mode


def resolve_bookkeeping_mode(mode: Optional[str] = None) -> str:
    """Resolve the active bookkeeping mode.

    Priority: explicit ``mode`` argument > :func:`bookkeeping_mode`
    context override > the :data:`BOOKKEEPING_MODE_ENV` environment
    variable > the library default (``columnar``).
    """
    import os

    if mode is not None:
        return _validate_mode(mode)
    if _MODE_OVERRIDE is not None:
        return _MODE_OVERRIDE
    env = os.environ.get(BOOKKEEPING_MODE_ENV)
    if env:
        return _validate_mode(env)
    return _DEFAULT_MODE


def make_pool(num_lists: int, k: int, mode: Optional[str] = None):
    """Construct a candidate pool for the resolved bookkeeping mode.

    The engine's single pool construction point: returns a
    :class:`~repro.core.columnar.ColumnarPool` for ``columnar`` and a
    :class:`CandidatePool` otherwise.  All three satisfy one contract
    (see the *view contract* note on :class:`CandidatePool`).
    """
    resolved = resolve_bookkeeping_mode(mode)
    if resolved == "columnar":
        from .columnar import ColumnarPool

        return ColumnarPool(num_lists, k)
    return CandidatePool(num_lists, k, incremental=resolved == "incremental")


@contextlib.contextmanager
def bookkeeping_mode(mode: str) -> Iterator[None]:
    """Run the enclosed block with the given bookkeeping mode as default.

    Affects every pool constructed through :func:`make_pool` (and hence
    every engine/session built inside the block without an explicit
    ``bookkeeping`` option).  For ``reference`` it also flips the
    :class:`CandidatePool` constructor default to the full-recompute
    path, preserving the historical :func:`reference_pools` behaviour.
    """
    global _DEFAULT_INCREMENTAL, _MODE_OVERRIDE
    _validate_mode(mode)
    previous = (_DEFAULT_INCREMENTAL, _MODE_OVERRIDE)
    _DEFAULT_INCREMENTAL = mode != "reference"
    _MODE_OVERRIDE = mode
    try:
        yield
    finally:
        _DEFAULT_INCREMENTAL, _MODE_OVERRIDE = previous


def reference_pools():
    """Run the enclosed block with full-recompute (reference) bookkeeping.

    Every :class:`CandidatePool` constructed inside the ``with`` block
    uses the pre-incremental O(n log n) recompute path, and every
    :func:`make_pool` call returns a reference pool.  Used by the
    differential test harness and the smoke benchmark's speedup probe.
    """
    return bookkeeping_mode("reference")


class Candidate:
    """Mutable per-document state: lower bound and evaluated-dimension mask."""

    __slots__ = ("doc_id", "worstscore", "seen_mask")

    def __init__(
        self, doc_id: int, worstscore: float = 0.0, seen_mask: int = 0
    ) -> None:
        self.doc_id = doc_id
        self.worstscore = worstscore
        self.seen_mask = seen_mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Candidate(doc=%d, worst=%.4f, seen=%s)" % (
            self.doc_id,
            self.worstscore,
            bin(self.seen_mask),
        )


class CandidatePool:
    """All alive candidates of one query, with threshold-based pruning.

    All mutations must go through the pool API (:meth:`absorb_postings`,
    :meth:`resolve_dimension`, :meth:`drop`, :meth:`revive`) so the
    incremental structures stay consistent; ``candidates`` itself is a
    read-only view by convention.

    **View contract** (shared with
    :class:`repro.core.columnar.ColumnarPool`; pinned by the property
    suite): :meth:`queue`, :meth:`unresolved` and :meth:`topk_candidates`
    return *cached read-only lists* — repeat calls between mutations
    return the same object, and any mutation invalidates them;
    :meth:`topk_worstscores` returns a *freshly allocated*
    ``np.ndarray`` each call (callers may sort it in place);
    ``candidates`` is an insertion-ordered read-only mapping.
    """

    def __init__(
        self, num_lists: int, k: int, incremental: Optional[bool] = None
    ) -> None:
        if not 1 <= num_lists <= 60:
            raise ValueError("num_lists must be between 1 and 60")
        if k <= 0:
            raise ValueError("k must be positive")
        self.num_lists = num_lists
        self.k = k
        self.full_mask = (1 << num_lists) - 1
        self.candidates: Dict[int, Candidate] = {}
        self.min_k = 0.0
        self.topk_ids: set = set()
        self._miss_sums: Dict[int, float] = {0: 0.0}
        self._highs: Tuple[float, ...] = tuple([float("inf")] * num_lists)
        self._highs_frozen = False
        self.peak_size = 0
        #: exact count of alive candidates per ``seen_mask`` (all
        #: candidates, top-k included) — consumed by the KSR scheduler.
        self.mask_counts: Dict[int, int] = {}
        self._incremental = (
            _DEFAULT_INCREMENTAL if incremental is None else bool(incremental)
        )
        # Incremental machinery (unused in reference mode).
        self._dirty: set = set()
        self._topk_heap: List[Tuple[float, int]] = []  # (worstscore, -doc)
        self._queue_min: Dict[int, List[Tuple[float, int]]] = {}
        self._queue_max: Dict[int, List[Tuple[float, int]]] = {}
        self._epoch = 0
        self._term_memo = False
        self._term_memo_version = -1
        # Mutation counter driving the cached views (queue/unresolved/topk).
        self._version = 0
        self._queue_cache: Optional[List[Candidate]] = None
        self._queue_cache_version = -1
        self._unresolved_cache: Optional[List[Candidate]] = None
        self._unresolved_cache_version = -1
        self._topk_cache: Optional[List[Candidate]] = None
        self._topk_cache_version = -1

    @property
    def incremental(self) -> bool:
        """Whether this pool runs the incremental maintenance path."""
        return self._incremental

    @property
    def mode(self) -> str:
        """Bookkeeping-mode label surfaced in traces and metrics."""
        return "incremental" if self._incremental else "reference"

    @property
    def epoch(self) -> int:
        """Bumped whenever :meth:`set_highs` actually moves the bounds."""
        return self._epoch

    # ------------------------------------------------------------------
    # Updates from index accesses
    # ------------------------------------------------------------------
    def absorb_postings(
        self, dim: int, doc_ids: Sequence[int], scores: Sequence[float]
    ) -> List[int]:
        """Merge one list's batch of postings; returns newly seen doc ids."""
        bit = 1 << dim
        # Normalize the batch to plain Python scalars up front: ``tolist``
        # converts a whole numpy block in C (exactly — same float bits),
        # which beats per-element ``int()`` / ``float()`` on the hot loop.
        if isinstance(doc_ids, np.ndarray):
            doc_ids = doc_ids.tolist()
        else:
            doc_ids = [int(d) for d in doc_ids]
        if isinstance(scores, np.ndarray):
            scores = scores.tolist()
        else:
            scores = [float(s) for s in scores]
        new_docs: List[int] = []
        new_docs_append = new_docs.append
        candidates = self.candidates
        candidates_get = candidates.get
        mask_counts = self.mask_counts
        track_dirty = self._incremental
        touched: List[Candidate] = []
        touched_append = touched.append
        for doc_id, score in zip(doc_ids, scores):
            cand = candidates_get(doc_id)
            if cand is None:
                # Fast path for first encounters (the vast majority of a
                # sorted batch): the 0 -> bit bucket move collapses into
                # the single deferred bit-bucket increment below.
                cand = Candidate(doc_id, score, bit)
                candidates[doc_id] = cand
                new_docs_append(doc_id)
                if track_dirty:
                    touched_append(cand)
                continue
            seen = cand.seen_mask
            if seen & bit:
                continue  # already resolved by an earlier random access
            cand.seen_mask = seen | bit
            cand.worstscore += score
            self._move_mask(seen, seen | bit)
            if track_dirty:
                touched_append(cand)
        if new_docs:
            # Deferred bucket update: within this call the ``bit`` bucket
            # is only ever incremented (an existing candidate never has
            # ``bit`` in its old mask), so batching the new-doc count is
            # order-independent.
            mask_counts[bit] = mask_counts.get(bit, 0) + len(new_docs)
        if touched:
            self._dirty.update(touched)
        self.peak_size = max(self.peak_size, len(candidates))
        self._version += 1
        return new_docs

    def resolve_dimension(self, doc_id: int, dim: int, score: float) -> Candidate:
        """Record a random-access lookup result for one dimension."""
        bit = 1 << dim
        cand = self.candidates.get(doc_id)
        if cand is None:
            cand = Candidate(doc_id)
            self.candidates[doc_id] = cand
            self.mask_counts[0] = self.mask_counts.get(0, 0) + 1
        if not cand.seen_mask & bit:
            old_mask = cand.seen_mask
            cand.seen_mask = old_mask | bit
            cand.worstscore += float(score)
            self._move_mask(old_mask, cand.seen_mask)
            if self._incremental:
                self._dirty.add(cand)
            self._version += 1
        return cand

    def revive(self, doc_id: int) -> Candidate:
        """Get-or-create a candidate (used by TA to resolve pruned docs)."""
        cand = self.candidates.get(doc_id)
        if cand is None:
            cand = Candidate(doc_id)
            self.candidates[doc_id] = cand
            self.mask_counts[0] = self.mask_counts.get(0, 0) + 1
            if self._incremental:
                self._dirty.add(cand)
            self._version += 1
        return cand

    def drop(self, doc_id: int) -> Optional[Candidate]:
        """Remove a candidate (pruning by a policy); returns it, if alive.

        Stale heap entries for the dropped document are discarded lazily;
        a dropped top-k member leaves the top-k under capacity until the
        next :meth:`recompute` refills it from the queue.
        """
        cand = self.candidates.pop(doc_id, None)
        if cand is None:
            return None
        count = self.mask_counts.get(cand.seen_mask, 0) - 1
        if count > 0:
            self.mask_counts[cand.seen_mask] = count
        else:
            self.mask_counts.pop(cand.seen_mask, None)
        self.topk_ids.discard(doc_id)
        self._dirty.discard(cand)
        self._version += 1
        return cand

    def prune_below(self, threshold: float) -> Tuple[int, float]:
        """Drop every queued candidate whose bestscore is *strictly*
        below ``threshold``; returns ``(dropped, max_dropped_bestscore)``
        (``-inf`` when nothing was dropped).

        The predicted-threshold accelerator's mutation primitive.  Two
        deliberate asymmetries against the regular ``min-k`` prune in
        :meth:`recompute`: the comparison is strict with *no* epsilon
        slack (a candidate tying the threshold is never dropped, so a
        dead-on prediction cannot perturb tie-breaking), and the largest
        dropped bestscore is reported back — the caller's certificate
        that, at termination, every dropped document scored strictly
        below the final threshold.  Top-k members are never touched.
        Call :meth:`recompute` afterwards when anything was dropped.
        """
        doomed: List[int] = []
        max_dropped = float("-inf")
        for cand in self.queue():
            score = self.bestscore(cand)
            if score < threshold:
                doomed.append(cand.doc_id)
                if score > max_dropped:
                    max_dropped = score
        for doc_id in doomed:
            self.drop(doc_id)
        return len(doomed), max_dropped

    def _move_mask(self, old_mask: int, new_mask: int) -> None:
        """Shift one candidate between ``mask_counts`` buckets."""
        counts = self.mask_counts
        count = counts.get(old_mask, 0) - 1
        if count > 0:
            counts[old_mask] = count
        else:
            counts.pop(old_mask, None)
        counts[new_mask] = counts.get(new_mask, 0) + 1

    # ------------------------------------------------------------------
    # Derived bounds
    # ------------------------------------------------------------------
    def set_highs(self, highs: Sequence[float]) -> None:
        """Install the current ``high_i`` vector and reset the mask cache.

        A no-op when the vector did not move (probe-only rounds), so the
        missing-high-sum cache and the termination latch survive.  The
        worstscore-keyed queue heaps are never invalidated by this call —
        only the bounds derived from them at prune/termination time
        change — which is what makes epoch bumps cheap.
        """
        new = tuple(float(h) for h in highs)
        if self._highs_frozen and new == self._highs:
            return
        self._highs = new
        self._highs_frozen = True
        self._miss_sums = {self.full_mask: 0.0}
        self._epoch += 1
        self._version += 1

    def missing_high_sum(self, seen_mask: int) -> float:
        """Sum of ``high_i`` over the dimensions *not* in ``seen_mask``."""
        cached = self._miss_sums.get(seen_mask)
        if cached is None:
            cached = sum(
                self._highs[i]
                for i in range(self.num_lists)
                if not seen_mask >> i & 1
            )
            self._miss_sums[seen_mask] = cached
        return cached

    def bestscore(self, cand: Candidate) -> float:
        """Upper bound for the candidate's final aggregated score."""
        return cand.worstscore + self.missing_high_sum(cand.seen_mask)

    @property
    def unseen_bestscore(self) -> float:
        """Upper bound for any document never encountered: sum of highs."""
        return self.missing_high_sum(0)

    def missing_dims(self, cand: Candidate) -> List[int]:
        """Unevaluated dimensions ``E(d)`` of the candidate."""
        return [
            i for i in range(self.num_lists) if not cand.seen_mask >> i & 1
        ]

    # ------------------------------------------------------------------
    # Threshold maintenance and pruning
    # ------------------------------------------------------------------
    def recompute(self) -> None:
        """Refresh the top-k / min-k split and prune dead candidates.

        Must be called after :meth:`set_highs` whenever scan positions or
        candidate states changed.  Pruning removes every candidate outside
        the current top-k whose bestscore cannot exceed ``min-k``.  The
        incremental path touches only the documents marked dirty since the
        previous call; the reference path re-sorts the whole pool.
        """
        self._version += 1
        candidates = self.candidates
        if not candidates:
            self.topk_ids = set()
            self.min_k = 0.0
            self._dirty.clear()
            return
        if not self._incremental:
            self._recompute_full()
            return
        self._flush_dirty()
        self._rebalance_topk()
        self._prune_queue()

    def _recompute_full(self) -> None:
        """Reference implementation: full re-sort and pruning scan."""
        candidates = self.candidates
        top = heapq.nlargest(
            self.k,
            candidates.values(),
            key=lambda c: (c.worstscore, -c.doc_id),
        )
        self.topk_ids = {c.doc_id for c in top}
        self.min_k = top[-1].worstscore if len(top) >= self.k else 0.0
        threshold = self.min_k + EPSILON
        if self.min_k <= 0.0:
            return
        dead = [
            doc_id
            for doc_id, cand in candidates.items()
            if doc_id not in self.topk_ids and self.bestscore(cand) <= threshold
        ]
        for doc_id in dead:
            self.drop(doc_id)

    # -- incremental pieces --------------------------------------------
    def _flush_dirty(self) -> None:
        """Reinsert the documents touched since the last recompute.

        Dirty queue members that provably cannot enter the new top-k and
        whose bestscore cannot beat even the *current* top-k minimum are
        dropped right here, before ever touching a heap.  The current
        minimum is a lower bound for the new ``min-k`` (the new top-k is
        the k largest keys, so its minimum is at least the minimum of
        the current k-member set), so every early drop is one the
        reference prune performs as well; survivors enter the heaps and
        :meth:`_prune_queue` applies the final threshold.  Under heavy
        churn — most postings die in the round that delivered them —
        this skips the push/pop round-trip for almost every posting and
        is the main constant-factor saving of the incremental mode.
        """
        dirty = self._dirty
        if not dirty:
            return
        self._dirty = set()
        candidates = self.candidates
        topk_ids = self.topk_ids
        topk_heap = self._topk_heap
        heappush = heapq.heappush
        queue_cands: List[Candidate] = []
        queue_append = queue_cands.append
        # The dirty set only ever holds live candidates (:meth:`drop`
        # removes the object), so no aliveness re-check is needed here.
        for cand in dirty:
            if cand.doc_id in topk_ids:
                heappush(topk_heap, (cand.worstscore, -cand.doc_id))
            else:
                queue_append(cand)
        if not queue_cands:
            return
        top_min = (
            self._valid_topk_min() if len(topk_ids) >= self.k else None
        )
        if top_min is None or top_min[0] <= 0.0:
            # No full, positive top-k floor yet (reference prunes nothing
            # when min-k is zero): keep every survivor.
            for cand in queue_cands:
                self._push_queue_entry(cand)
            return
        floor, floor_neg_doc = top_min
        threshold = floor + EPSILON
        mask_counts = self.mask_counts
        miss_sums = self._miss_sums
        missing_high_sum = self.missing_high_sum
        for cand in queue_cands:
            worst = cand.worstscore
            if worst < floor or (
                worst == floor and -cand.doc_id < floor_neg_doc
            ):
                mask = cand.seen_mask
                ms = miss_sums.get(mask)
                if ms is None:
                    ms = missing_high_sum(mask)
                if worst + ms <= threshold:
                    del candidates[cand.doc_id]
                    count = mask_counts.get(mask, 0) - 1
                    if count > 0:
                        mask_counts[mask] = count
                    else:
                        mask_counts.pop(mask, None)
                    continue
            self._push_queue_entry(cand)

    def _push_queue_entry(self, cand: Candidate) -> None:
        """Register a queue (non-top-k) candidate's current state."""
        mask = cand.seen_mask
        entry = (cand.worstscore, cand.doc_id)
        heap = self._queue_min.get(mask)
        if heap is None:
            heap = self._queue_min[mask] = []
        heapq.heappush(heap, entry)
        heap = self._queue_max.get(mask)
        if heap is None:
            heap = self._queue_max[mask] = []
        heapq.heappush(heap, (-cand.worstscore, cand.doc_id))

    def _queue_entry_alive(
        self, mask: int, doc_id: int, worstscore: float
    ) -> bool:
        """Whether a queue heap entry still describes a live queue member.

        The recorded worstscore must match too: mask and worstscore only
        ever change together through absorb/resolve, but a document that
        was dropped and later re-encountered starts a new life with a
        recycled mask and a different worstscore — its old entries must
        read as stale.
        """
        cand = self.candidates.get(doc_id)
        return (
            cand is not None
            and doc_id not in self.topk_ids
            and cand.seen_mask == mask
            and cand.worstscore == worstscore
        )

    def _valid_topk_min(self) -> Optional[Tuple[float, int]]:
        """Peek the valid minimum ``(worstscore, -doc_id)`` of the top-k.

        Pops stale entries (evicted members, or worstscore-growth
        leftovers, which sort *below* their fresh replacement).
        """
        heap = self._topk_heap
        candidates = self.candidates
        topk_ids = self.topk_ids
        while heap:
            worst, neg_doc = heap[0]
            cand = candidates.get(-neg_doc)
            if (
                cand is None
                or -neg_doc not in topk_ids
                or cand.worstscore != worst
            ):
                heapq.heappop(heap)
                continue
            return worst, neg_doc
        return None

    def _best_queue_entry(
        self, pop: bool
    ) -> Optional[Tuple[float, int]]:
        """The queue candidate with the largest ``(worstscore, -doc_id)``.

        Scans the per-mask max-heaps (cleaning stale tops); at most one
        valid top per group is compared.  With ``pop`` the winning entry
        is removed — the caller is promoting it into the top-k.
        """
        best: Optional[Tuple[float, int]] = None
        best_mask = 0
        for mask in list(self._queue_max):
            heap = self._queue_max[mask]
            while heap:
                neg_worst, doc_id = heap[0]
                if self._queue_entry_alive(mask, doc_id, -neg_worst):
                    break
                heapq.heappop(heap)
            if not heap:
                del self._queue_max[mask]
                continue
            worst = -heap[0][0]
            doc_id = heap[0][1]
            if best is None or (worst, -doc_id) > (best[0], -best[1]):
                best = (worst, doc_id)
                best_mask = mask
        if best is not None and pop:
            heapq.heappop(self._queue_max[best_mask])
        return best

    def _rebalance_topk(self) -> None:
        """Refill the top-k to capacity and swap in superior queue docs.

        Terminates with no queue candidate beating the valid top-k
        minimum under the strict ``(worstscore, -doc_id)`` order, i.e.
        ``topk_ids`` holds exactly the k largest keys — the same set the
        reference ``nlargest`` computes (keys are unique per document).
        """
        candidates = self.candidates
        topk_ids = self.topk_ids
        capacity = min(self.k, len(candidates))
        while True:
            while len(topk_ids) < capacity:
                entry = self._best_queue_entry(pop=True)
                if entry is None:  # pragma: no cover - defensive resync
                    self._rebuild_structures()
                    self._update_min_k()
                    return
                worst, doc_id = entry
                topk_ids.add(doc_id)
                heapq.heappush(self._topk_heap, (worst, -doc_id))
            top_min = self._valid_topk_min()
            if top_min is None:
                if capacity == 0:
                    break
                self._rebuild_structures()  # pragma: no cover - defensive
                self._update_min_k()
                return
            entry = self._best_queue_entry(pop=False)
            if entry is None:
                break
            worst, doc_id = entry
            if (worst, -doc_id) <= top_min:
                break
            # Swap: the queue's best strictly beats the rank-k item.
            self._best_queue_entry(pop=True)
            heapq.heappop(self._topk_heap)
            evicted_doc = -top_min[1]
            topk_ids.discard(evicted_doc)
            evicted = candidates.get(evicted_doc)
            if evicted is not None:
                self._push_queue_entry(evicted)
            topk_ids.add(doc_id)
            heapq.heappush(self._topk_heap, (worst, -doc_id))
        self._update_min_k()

    def _update_min_k(self) -> None:
        if len(self.topk_ids) >= self.k:
            top_min = self._valid_topk_min()
            self.min_k = top_min[0] if top_min is not None else 0.0
        else:
            self.min_k = 0.0

    def _prune_queue(self) -> None:
        """Drop every queue candidate whose bestscore cannot beat min-k.

        Per mask group the test ``worstscore + miss_sum <= threshold``
        reduces to a worstscore bound, and the group min-heap pops in
        worstscore order, so the loop stops at the first surviving entry
        — no full scan.  Entries inside the float-safety band are
        confirmed with the exact reference expression before deletion.
        """
        if self.min_k <= 0.0:
            return
        threshold = self.min_k + EPSILON
        candidates = self.candidates
        mask_counts = self.mask_counts
        for mask in list(self._queue_min):
            heap = self._queue_min[mask]
            miss_sum = self.missing_high_sum(mask)
            bound = threshold - miss_sum + _BOUND_SLACK
            kept: List[Tuple[float, int]] = []
            while heap and heap[0][0] <= bound:
                worst, doc_id = heapq.heappop(heap)
                if not self._queue_entry_alive(mask, doc_id, worst):
                    continue
                if worst + miss_sum <= threshold:  # exact reference test
                    # Inlined drop: validity was just established, the
                    # entry is not in the top-k, and the dirty set is
                    # empty at prune time (the flush runs first).
                    del candidates[doc_id]
                    count = mask_counts.get(mask, 0) - 1
                    if count > 0:
                        mask_counts[mask] = count
                    else:
                        mask_counts.pop(mask, None)
                else:
                    kept.append((worst, doc_id))
            for entry in kept:
                heapq.heappush(heap, entry)
            if not heap:
                del self._queue_min[mask]

    def _rebuild_structures(self) -> None:
        """Rebuild every incremental structure from the candidate dict.

        Defensive fallback only — reached when the lazy heaps lost track
        of a live candidate, which the property suite asserts never
        happens through the pool API.
        """
        candidates = self.candidates
        top = heapq.nlargest(
            self.k,
            candidates.values(),
            key=lambda c: (c.worstscore, -c.doc_id),
        )
        self.topk_ids = {c.doc_id for c in top}
        self._topk_heap = [(c.worstscore, -c.doc_id) for c in top]
        heapq.heapify(self._topk_heap)
        self._queue_min = {}
        self._queue_max = {}
        for doc_id, cand in candidates.items():
            if doc_id not in self.topk_ids:
                self._push_queue_entry(cand)
        self._dirty.clear()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def queue(self) -> List[Candidate]:
        """Candidates outside the current top-k (the paper's queue ``Q``).

        The returned list is cached until the next pool mutation — repeat
        calls in one round return the same object; treat it as read-only.
        """
        if self._queue_cache_version != self._version:
            self._queue_cache = [
                cand
                for doc_id, cand in self.candidates.items()
                if doc_id not in self.topk_ids
            ]
            self._queue_cache_version = self._version
        return self._queue_cache

    def queue_size(self) -> int:
        """Number of candidates outside the current top-k."""
        if self._queue_cache_version == self._version:
            return len(self._queue_cache)
        return len(self.candidates) - sum(
            1 for doc_id in self.topk_ids if doc_id in self.candidates
        )

    def unresolved(self) -> List[Candidate]:
        """All candidates (queue and top-k) with at least one missing dim.

        Cached like :meth:`queue`; treat the returned list as read-only.
        """
        if self._unresolved_cache_version != self._version:
            self._unresolved_cache = [
                cand
                for cand in self.candidates.values()
                if cand.seen_mask != self.full_mask
            ]
            self._unresolved_cache_version = self._version
        return self._unresolved_cache

    def topk_candidates(self) -> List[Candidate]:
        """The current top-k candidates in descending worstscore order.

        Cached like :meth:`queue`; treat the returned list as read-only.
        """
        if self._topk_cache_version != self._version:
            top = [self.candidates[d] for d in self.topk_ids]
            top.sort(key=lambda c: (-c.worstscore, c.doc_id))
            self._topk_cache = top
            self._topk_cache_version = self._version
        return self._topk_cache

    def topk_worstscores(self) -> np.ndarray:
        """Worstscores of the current top-k items (unordered, fresh array)."""
        return np.array(
            [self.candidates[d].worstscore for d in self.topk_ids],
            dtype=np.float64,
        )

    def mask_count_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(masks, counts)`` arrays over all alive candidates.

        Array form of :attr:`mask_counts` for vectorized consumers (the
        KSR scheduler); masks come back in ascending order.
        """
        if not self.mask_counts:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        masks = np.fromiter(
            self.mask_counts.keys(), dtype=np.int64, count=len(self.mask_counts)
        )
        counts = np.fromiter(
            self.mask_counts.values(),
            dtype=np.int64,
            count=len(self.mask_counts),
        )
        order = np.argsort(masks)
        return masks[order], counts[order]

    def max_queue_bestscore(self) -> float:
        """Largest bestscore over the queue; ``-inf`` for an empty queue."""
        best = float("-inf")
        for cand in self.queue():
            score = self.bestscore(cand)
            if score > best:
                best = score
        return best

    @property
    def is_terminated(self) -> bool:
        """Paper Sec. 2.3 stop rule: no candidate (queued or unseen) can
        still exceed ``min-k``, and the top-k is fully populated (or fewer
        than k scored documents exist and nothing relevant remains unseen).

        The incremental path answers from the per-mask maxima (one valid
        heap top per mask group) and memoizes the answer against the pool
        version, so repeat checks between mutations are free — any
        mutation (which can flip the answer either way until the next
        :meth:`recompute`) invalidates the memo.  With mutations pending
        since the last :meth:`recompute` it falls back to the reference
        scan, so the answer matches the reference semantics in every call
        order.  In the engine's regime — highs non-increasing,
        :meth:`recompute` before every check — a True answer is permanent
        (see DESIGN.md), which is what lets the executor stop for good.
        """
        if self._incremental:
            if self._term_memo_version == self._version:
                return self._term_memo
            if self._dirty:
                result = self._is_terminated_scan()
            else:
                result = self._is_terminated_heaps()
            self._term_memo = result
            self._term_memo_version = self._version
            return result
        return self._is_terminated_scan()

    def _is_terminated_scan(self) -> bool:
        """Reference termination test: full scan of the candidate pool."""
        if len(self.candidates) < self.k:
            # Fewer than k docs encountered: done only once no unseen doc
            # can carry any positive score at all.
            return self.unseen_bestscore <= EPSILON
        threshold = self.min_k + EPSILON
        if self.unseen_bestscore > threshold:
            return False
        for doc_id, cand in self.candidates.items():
            if doc_id in self.topk_ids:
                continue
            if self.bestscore(cand) > threshold:
                return False
        return True

    def _is_terminated_heaps(self) -> bool:
        """Termination from the per-mask queue maxima (no full scan).

        Within one mask group every bestscore shares the same missing-high
        sum, and float rounding is monotone in the worstscore argument, so
        checking the group's valid maximum with the exact reference
        expression decides the whole group.
        """
        if len(self.candidates) < self.k:
            return self.unseen_bestscore <= EPSILON
        threshold = self.min_k + EPSILON
        if self.unseen_bestscore > threshold:
            return False
        for mask in list(self._queue_max):
            heap = self._queue_max[mask]
            while heap:
                neg_worst, doc_id = heap[0]
                if self._queue_entry_alive(mask, doc_id, -neg_worst):
                    break
                heapq.heappop(heap)
            if not heap:
                del self._queue_max[mask]
                continue
            if -heap[0][0] + self.missing_high_sum(mask) > threshold:
                return False
        return True

    def __len__(self) -> int:
        return len(self.candidates)
