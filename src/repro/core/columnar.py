"""Struct-of-arrays candidate bookkeeping (the columnar hot path).

:class:`ColumnarPool` keeps the per-document state of
:mod:`repro.core.bookkeeping` in contiguous numpy columns instead of a
dict of per-document ``Candidate`` objects:

====================  ======================================================
column                meaning
====================  ======================================================
``doc``   (int64)     document id occupying the slot
``worst`` (float64)   ``worstscore(d)`` — sum of the known dimension scores
``seen``  (int64)     evaluated-dimension bitmask ``E(d)``
``dim_scores``        per-dimension partial scores (``capacity x m``)
``alive`` (bool)      slot holds a live candidate
``in_topk`` (bool)    slot is in the current top-k
``seq``   (int64)     insertion counter (dict-order tie line)
``slot_epoch``        bumped when the slot is freed (recycling guard)
====================  ======================================================

Freed slots are recycled through a free list; ``slot_epoch`` and the
never-reused ``seq`` counter let the lazily maintained object layer (see
below) tell a recycled slot from the allocation it journalled.  A
direct-address ``doc -> slot`` table makes the batch merge of
:meth:`absorb_postings` a handful of fancy-indexing operations with no
per-posting Python loop.

Float-bit parity
----------------

The pool is *access-identical* to the scalar reference implementation:
same float bits in every bound, hence the same accesses, prunes, and
traces for every algorithm triple.  This holds because every vectorized
step either

* performs the *same scalar float operations* elementwise — absorbing a
  batch does ``worst[slots] += scores`` (one IEEE-754 add per posting,
  exactly the reference's ``cand.worstscore += score``), bestscore is the
  single add ``worst + miss_sum`` on both paths, and the missing-high
  table is filled by adding ``high_i`` in ascending ``i`` — the exact
  addition order of the reference's ``sum(...)``; or
* is *comparison-only* (top-k selection, pruning masks, termination
  reductions), where any evaluation order yields identical results.

Object views
------------

Policies consume the pool through object views (``queue()``,
``unresolved()``, ``candidates``).  The pool keeps an insertion-ordered
dict of ``Candidate`` objects that is synchronized *lazily*: bulk
mutations only append a compact journal (new slots / updated slots /
dropped doc ids) and the first view access replays it — or rebuilds from
the columns when the journal grew past the pool size.  Replay recreates
the reference dict order exactly because insertion order is fully
determined by the ``seq`` counter, and a journalled "new" entry whose
slot was recycled in the meantime (``seq`` mismatch) is provably a
dropped document, so skipping it is exact.  Algorithms that never read
object views (NRA) therefore never pay any per-document Python cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .bookkeeping import EPSILON, Candidate
from .selection import topk_indices

#: Maximum number of query dimensions for which the missing-high sums are
#: materialized as a dense mask-indexed table (``2**m`` floats).
_MAX_TABLE_BITS = 16

#: Journal ops (relative to pool size) beyond which a full rebuild of the
#: object layer is cheaper than replaying the journal.
_JOURNAL_REBUILD_FACTOR = 2


class ColumnarPool:
    """Struct-of-arrays implementation of the ``CandidatePool`` contract.

    Behaviourally identical to
    :class:`repro.core.bookkeeping.CandidatePool` (both modes) for every
    operation and view — the differential and property suites pin this —
    while the round-loop hot path (absorb / recompute / termination)
    runs as numpy array operations.

    The **view contract** (shared with ``CandidatePool``): ``queue()``,
    ``unresolved()`` and ``topk_candidates()`` return *cached read-only
    lists* — repeat calls between mutations return the same object;
    ``topk_worstscores()`` returns a *freshly allocated* ``np.ndarray``
    each call (safe for callers to sort in place); ``candidates`` is an
    insertion-ordered read-only mapping.
    """

    def __init__(self, num_lists: int, k: int) -> None:
        if not 1 <= num_lists <= 60:
            raise ValueError("num_lists must be between 1 and 60")
        if k <= 0:
            raise ValueError("k must be positive")
        self.num_lists = num_lists
        self.k = k
        self.full_mask = (1 << num_lists) - 1
        self.min_k = 0.0
        self.topk_ids: set = set()
        self.peak_size = 0
        self._miss_sums: Dict[int, float] = {0: 0.0}
        self._highs: Tuple[float, ...] = tuple([float("inf")] * num_lists)
        self._highs_frozen = False
        self._epoch = 0
        self._version = 0

        # -- columns ----------------------------------------------------
        cap = 1024
        self._doc = np.full(cap, -1, dtype=np.int64)
        self._worst = np.zeros(cap, dtype=np.float64)
        self._seen = np.zeros(cap, dtype=np.int64)
        self._dim_scores = np.zeros((cap, num_lists), dtype=np.float64)
        self._alive = np.zeros(cap, dtype=bool)
        self._in_topk = np.zeros(cap, dtype=bool)
        self._seq = np.zeros(cap, dtype=np.int64)
        self._slot_epoch = np.zeros(cap, dtype=np.int64)
        self._size = 0  # high-water slot count
        self._alive_count = 0
        self._next_seq = 0
        self._free: List[int] = []
        # direct-address doc -> slot table (-1 = absent)
        self._lookup = np.full(1024, -1, dtype=np.int64)

        # -- top-k scratch (kept across rounds) -------------------------
        self._topk_slots = np.empty(0, dtype=np.int64)
        self._topk_dirty = True
        # Slots whose worstscore changed (or that were created) since the
        # last recompute: the only rows that can newly beat the top-k
        # boundary, because worstscores never decrease.
        self._touched: List[np.ndarray] = []
        # Queue membership maintained incrementally between recomputes:
        # survivors of the last prune plus slots created since.  ``None``
        # means it must be rebuilt from the alive mask (after a
        # reselection or an out-of-band drop).
        self._queue_arr: Optional[np.ndarray] = None
        self._queue_new: List[np.ndarray] = []

        # -- missing-high table (per epoch) -----------------------------
        self._miss_table: Optional[np.ndarray] = None
        self._miss_table_epoch = -1

        # -- lazily synchronized object layer ---------------------------
        self._objs: Dict[int, Candidate] = {}
        self._objs_version = 0
        self._journal: List[tuple] = []
        self._journal_ops = 0

        # -- caches ------------------------------------------------------
        self._alive_cache: Optional[np.ndarray] = None
        self._alive_cache_version = -1
        self._queue_cache: Optional[list] = None
        self._queue_cache_version = -1
        self._unresolved_cache: Optional[list] = None
        self._unresolved_cache_version = -1
        self._topk_cache: Optional[list] = None
        self._topk_cache_version = -1
        self._mask_counts_cache: Optional[Dict[int, int]] = None
        self._mask_counts_version = -1
        self._mask_arrays_cache = None
        self._mask_arrays_version = -1
        self._term_memo = False
        self._term_memo_version = -1
        # Post-prune queue bestscores, valid while the version matches:
        # recompute's prune pass already evaluated every queue row against
        # ``min-k``, so termination and the shard bound tap can reuse it.
        self._term_queue_bs: Optional[np.ndarray] = None
        self._term_queue_version = -1

    # ------------------------------------------------------------------
    # Identity / geometry
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """Bookkeeping-mode label surfaced in traces and metrics."""
        return "columnar"

    @property
    def epoch(self) -> int:
        """Bumped whenever :meth:`set_highs` actually moves the bounds."""
        return self._epoch

    def __len__(self) -> int:
        return self._alive_count

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def _grow_columns(self, needed: int) -> None:
        cap = self._doc.size
        new_cap = max(cap * 2, cap + needed)
        grown = np.full(new_cap, -1, dtype=np.int64)
        grown[:cap] = self._doc
        self._doc = grown
        for name in ("_worst", "_seen", "_seq", "_slot_epoch"):
            col = getattr(self, name)
            grown = np.zeros(new_cap, dtype=col.dtype)
            grown[:cap] = col
            setattr(self, name, grown)
        for name in ("_alive", "_in_topk"):
            col = getattr(self, name)
            grown = np.zeros(new_cap, dtype=bool)
            grown[:cap] = col
            setattr(self, name, grown)
        grown2 = np.zeros((new_cap, self.num_lists), dtype=np.float64)
        grown2[:cap] = self._dim_scores
        self._dim_scores = grown2

    def _grow_lookup(self, max_doc: int) -> None:
        size = self._lookup.size
        new_size = max(size * 2, max_doc + 1)
        grown = np.full(new_size, -1, dtype=np.int64)
        grown[:size] = self._lookup
        self._lookup = grown

    def _allocate_slots(self, count: int) -> np.ndarray:
        """Pop ``count`` slots (recycled first, then fresh capacity)."""
        free = self._free
        take = min(count, len(free))
        if take:
            recycled = np.asarray(free[-take:], dtype=np.int64)
            del free[-take:]
            # Recycling while the object journal is pending is exactly
            # what the seq stamps on "new" entries guard against.
        else:
            recycled = np.empty(0, dtype=np.int64)
        fresh_count = count - take
        if fresh_count:
            if self._size + fresh_count > self._doc.size:
                self._grow_columns(fresh_count)
            fresh = np.arange(
                self._size, self._size + fresh_count, dtype=np.int64
            )
            self._size += fresh_count
            slots = np.concatenate([recycled, fresh]) if take else fresh
        else:
            slots = recycled
        return slots

    def _free_slots(self, slots: np.ndarray) -> None:
        """Return slots to the free list; bumps their recycling epoch."""
        self._alive[slots] = False
        self._in_topk[slots] = False
        self._slot_epoch[slots] += 1
        self._lookup[self._doc[slots]] = -1
        self._free.extend(slots.tolist())
        self._alive_count -= int(slots.size)

    def _alive_slots(self) -> np.ndarray:
        if self._alive_cache_version != self._version:
            self._alive_cache = np.flatnonzero(self._alive[: self._size])
            self._alive_cache_version = self._version
        return self._alive_cache

    # ------------------------------------------------------------------
    # Updates from index accesses
    # ------------------------------------------------------------------
    def absorb_postings(
        self, dim: int, doc_ids: Sequence[int], scores: Sequence[float]
    ) -> List[int]:
        """Merge one list's batch of postings; returns newly seen doc ids.

        The whole decoded block lands in the columns through a few fancy
        indexing operations: one ``|=`` for the seen bits and one ``+=``
        for the worstscores — elementwise the same IEEE-754 operations
        the scalar reference performs per posting, in any order (each
        batch touches each document at most once after dedup).
        """
        bit = 1 << dim
        docs = np.asarray(doc_ids, dtype=np.int64)
        svals = np.asarray(scores, dtype=np.float64)
        was_synced = self._objs_version == self._version and not self._journal
        if docs.size == 0:
            self.peak_size = max(self.peak_size, self._alive_count)
            self._version += 1
            if was_synced:
                self._objs_version = self._version
            return []
        if docs.min() < 0:
            raise ValueError("doc ids must be non-negative")
        # Keep only the first occurrence of each document: the reference
        # loop sets the bit at the first occurrence and skips the rest.
        uniq, first = np.unique(docs, return_index=True)
        if uniq.size != docs.size:
            keep = np.sort(first)
            docs = docs[keep]
            svals = svals[keep]
        max_doc = int(docs.max())
        if max_doc >= self._lookup.size:
            self._grow_lookup(max_doc)
        slots = self._lookup[docs]
        present = slots >= 0
        new_docs: List[int] = []
        if present.any():
            pslots = slots[present]
            update = (self._seen[pslots] & bit) == 0
            uslots = pslots[update]
            if uslots.size:
                uscores = svals[present][update]
                self._seen[uslots] |= bit
                self._worst[uslots] += uscores
                self._dim_scores[uslots, dim] = uscores
                self._touched.append(uslots)
                self._journal.append(("upd", uslots))
                self._journal_ops += int(uslots.size)
        fresh = ~present
        n_new = int(fresh.sum())
        if n_new:
            ndocs = docs[fresh]
            nscores = svals[fresh]
            nslots = self._allocate_slots(n_new)
            self._doc[nslots] = ndocs
            self._worst[nslots] = nscores
            self._seen[nslots] = bit
            self._dim_scores[nslots] = 0.0
            self._dim_scores[nslots, dim] = nscores
            self._alive[nslots] = True
            self._in_topk[nslots] = False
            seqs = np.arange(
                self._next_seq, self._next_seq + n_new, dtype=np.int64
            )
            self._next_seq += n_new
            self._seq[nslots] = seqs
            self._lookup[ndocs] = nslots
            self._alive_count += n_new
            self._touched.append(nslots)
            self._queue_new.append(nslots)
            self._journal.append(("new", nslots, seqs))
            self._journal_ops += n_new
            new_docs = ndocs.tolist()
        self.peak_size = max(self.peak_size, self._alive_count)
        self._version += 1
        if was_synced and not self._journal:
            # Every posting was already resolved: nothing to journal, the
            # object layer still mirrors the columns.
            self._objs_version = self._version
        return new_docs

    def resolve_dimension(self, doc_id: int, dim: int, score: float):
        """Record a random-access lookup result for one dimension."""
        bit = 1 << dim
        self._ensure_synced()
        doc_id = int(doc_id)
        slot = self._slot_for(doc_id)
        if slot < 0:
            cand = self._create_candidate(doc_id)
            slot = self._lookup[doc_id]
        else:
            cand = self._objs[doc_id]
        if not cand.seen_mask & bit:
            score = float(score)
            cand.seen_mask |= bit
            cand.worstscore += score
            self._seen[slot] |= bit
            self._worst[slot] += score
            self._dim_scores[slot, dim] = score
            self._touched.append(np.asarray([slot], dtype=np.int64))
            self._version += 1
            self._objs_version = self._version
        return cand

    def revive(self, doc_id: int):
        """Get-or-create a candidate (used by TA to resolve pruned docs)."""
        self._ensure_synced()
        doc_id = int(doc_id)
        slot = self._slot_for(doc_id)
        if slot >= 0:
            return self._objs[doc_id]
        cand = self._create_candidate(doc_id)
        self._version += 1
        self._objs_version = self._version
        return cand

    def drop(self, doc_id: int):
        """Remove a candidate (pruning by a policy); returns it, if alive."""
        self._ensure_synced()
        doc_id = int(doc_id)
        slot = self._slot_for(doc_id)
        if slot < 0:
            return None
        cand = self._objs.pop(doc_id)
        self._free_slots(np.asarray([slot], dtype=np.int64))
        self._queue_arr = None
        self._queue_new.clear()
        if doc_id in self.topk_ids:
            # Drop the freed slot from the top-k scratch and force a full
            # reselection at the next recompute.
            self.topk_ids.discard(doc_id)
            self._topk_slots = self._topk_slots[self._topk_slots != slot]
            self._topk_dirty = True
        self._version += 1
        self._objs_version = self._version
        return cand

    def prune_below(self, threshold: float) -> Tuple[int, float]:
        """Drop every queue candidate whose bestscore is *strictly* below
        ``threshold`` — vectorized override of the reference scan.

        One boolean mask over the queue rows, mirroring ``recompute``'s
        prune pass but with a strict comparison and no epsilon: a
        candidate tying the predicted threshold is never dropped, so a
        dead-on prediction cannot perturb tie-breaking.  Returns
        ``(dropped, max_dropped_bestscore)``; the maximum is the
        certificate the executor checks against the final ``min-k``.
        Top-k rows are untouched by construction.  Call ``recompute()``
        afterwards before reading ``min_k`` / termination state.
        """
        was_synced = self._objs_version == self._version and not self._journal
        alive = self._alive_slots()
        queue_slots = alive[~self._in_topk[alive]]
        if not queue_slots.size:
            return 0, float("-inf")
        bs = self._worst[queue_slots] + self._row_miss(
            self._seen[queue_slots]
        )
        doomed = bs < threshold
        dead = queue_slots[doomed]
        if not dead.size:
            return 0, float("-inf")
        max_dropped = float(bs[doomed].max())
        dead_docs = self._doc[dead].tolist()
        self._free_slots(dead)
        if was_synced:
            objs = self._objs
            for doc in dead_docs:
                del objs[doc]
        else:
            self._journal.append(("del", dead_docs))
            self._journal_ops += len(dead_docs)
        self._alive_cache = None
        self._alive_cache_version = -1
        self._queue_arr = None
        self._queue_new.clear()
        self._version += 1
        if was_synced:
            self._objs_version = self._version
        return int(dead.size), max_dropped

    def _slot_for(self, doc_id: int) -> int:
        if 0 <= doc_id < self._lookup.size:
            return int(self._lookup[doc_id])
        if doc_id < 0:
            raise ValueError("doc ids must be non-negative")
        return -1

    def _create_candidate(self, doc_id: int) -> Candidate:
        """Allocate a zero-state candidate in the columns and the dict."""
        if doc_id >= self._lookup.size:
            self._grow_lookup(doc_id)
        slot = int(self._allocate_slots(1)[0])
        self._doc[slot] = doc_id
        self._worst[slot] = 0.0
        self._seen[slot] = 0
        self._dim_scores[slot] = 0.0
        self._alive[slot] = True
        self._in_topk[slot] = False
        self._seq[slot] = self._next_seq
        self._next_seq += 1
        self._lookup[doc_id] = slot
        self._alive_count += 1
        # Even a zero-worstscore row can beat a 0.0 boundary on doc-id
        # tie-break, so creations count as touched.
        slot_arr = np.asarray([slot], dtype=np.int64)
        self._touched.append(slot_arr)
        self._queue_new.append(slot_arr)
        cand = Candidate(doc_id)
        self._objs[doc_id] = cand
        return cand

    # ------------------------------------------------------------------
    # Derived bounds
    # ------------------------------------------------------------------
    def set_highs(self, highs: Sequence[float]) -> None:
        """Install the current ``high_i`` vector and reset the mask cache."""
        new = tuple(float(h) for h in highs)
        if self._highs_frozen and new == self._highs:
            return
        self._highs = new
        self._highs_frozen = True
        self._miss_sums = {self.full_mask: 0.0}
        self._epoch += 1
        self._version += 1
        if self._objs_version == self._version - 1 and not self._journal:
            self._objs_version = self._version

    def missing_high_sum(self, seen_mask: int) -> float:
        """Sum of ``high_i`` over the dimensions *not* in ``seen_mask``."""
        cached = self._miss_sums.get(seen_mask)
        if cached is None:
            cached = sum(
                self._highs[i]
                for i in range(self.num_lists)
                if not seen_mask >> i & 1
            )
            self._miss_sums[seen_mask] = cached
        return cached

    def bestscore(self, cand) -> float:
        """Upper bound for the candidate's final aggregated score."""
        return cand.worstscore + self.missing_high_sum(cand.seen_mask)

    @property
    def unseen_bestscore(self) -> float:
        """Upper bound for any document never encountered: sum of highs."""
        return self.missing_high_sum(0)

    def missing_dims(self, cand) -> List[int]:
        """Unevaluated dimensions ``E(d)`` of the candidate."""
        return [
            i for i in range(self.num_lists) if not cand.seen_mask >> i & 1
        ]

    def _miss_sums_table(self) -> np.ndarray:
        """Dense ``mask -> missing-high sum`` table for the current epoch.

        Filled by adding ``high_i`` in ascending dimension order — the
        exact float addition sequence of the scalar ``sum(...)`` — then
        overlaid with any entries already pinned in the scalar cache
        (which carries the pre-``set_highs`` convention that the empty
        mask sums to 0.0 even while the highs are still infinite).
        """
        if self._miss_table_epoch == self._epoch:
            return self._miss_table
        m = self.num_lists
        if m <= 4:
            # Tiny mask space: the scalar cache fills it faster than the
            # vectorized build (and with the identical ascending-``i``
            # float additions).
            table = np.asarray(
                [self.missing_high_sum(mask) for mask in range(1 << m)],
                dtype=np.float64,
            )
        else:
            table = np.zeros(1 << m, dtype=np.float64)
            mask_idx = np.arange(1 << m, dtype=np.int64)
            for i in range(m):
                missing = (mask_idx >> i) & 1 == 0
                table[missing] += self._highs[i]
            for mask, value in self._miss_sums.items():
                table[mask] = value
        self._miss_table = table
        self._miss_table_epoch = self._epoch
        return table

    def _row_miss(self, masks: np.ndarray) -> np.ndarray:
        """Missing-high sums for an array of seen masks (bit-exact)."""
        if self.num_lists <= _MAX_TABLE_BITS:
            return self._miss_sums_table()[masks]
        uniq, inverse = np.unique(masks, return_inverse=True)
        vals = np.asarray(
            [self.missing_high_sum(int(mask)) for mask in uniq],
            dtype=np.float64,
        )
        return vals[inverse]

    # ------------------------------------------------------------------
    # Threshold maintenance and pruning
    # ------------------------------------------------------------------
    def recompute(self) -> None:
        """Refresh the top-k / min-k split and prune dead candidates.

        The top-k selection runs as a vectorized fast path: the previous
        round's top-k slots are kept in scratch, and a full reselection
        happens only when some queue candidate actually beats the current
        boundary under the strict ``(worstscore, -doc_id)`` order (a
        comparison-only check, hence exact).  Pruning is one boolean-mask
        compaction over ``worstscore + missing-high`` per queue row.
        """
        self._version += 1
        was_synced = (
            self._objs_version == self._version - 1 and not self._journal
        )
        if self._alive_count == 0:
            self.topk_ids = set()
            self._topk_slots = np.empty(0, dtype=np.int64)
            self.min_k = 0.0
            self._topk_dirty = True
            self._touched.clear()
            self._queue_arr = None
            self._queue_new.clear()
            if was_synced:
                self._objs_version = self._version
            return
        n = self._alive_count
        want = min(self.k, n)
        tslots = self._topk_slots
        reselect = self._topk_dirty or int(tslots.size) != want
        if not reselect:
            tw = self._worst[tslots]
            # Boundary member: min (worstscore, -doc) of the kept top-k.
            wmin = tw.min()
            if self._touched:
                # Only rows touched since the last recompute can newly
                # beat the boundary: worstscores never decrease, so every
                # untouched queue row that lost the (worstscore, -doc)
                # comparison last time loses it again (the boundary can
                # only have strengthened since).
                at_min = tw == wmin
                bdoc = self._doc[tslots][at_min].max()
                touched = (
                    np.concatenate(self._touched)
                    if len(self._touched) > 1
                    else self._touched[0]
                )
                outside = touched[~self._in_topk[touched]]
                if outside.size:
                    ow = self._worst[outside]
                    od = self._doc[outside]
                    beats = (ow > wmin) | ((ow == wmin) & (od < bdoc))
                    if bool(np.any(beats)):
                        reselect = True
            if not reselect:
                self.min_k = float(wmin) if n >= self.k else 0.0
        if reselect:
            alive = self._alive_slots()
            sel = topk_indices(self._worst[alive], self._doc[alive], self.k)
            new_tslots = alive[sel]
            self._in_topk[tslots] = False
            self._in_topk[new_tslots] = True
            self._topk_slots = new_tslots
            # Fresh set, inserted in descending (worstscore, -doc) order —
            # the reference rebuilds its set the same way each recompute.
            self.topk_ids = set(self._doc[new_tslots].tolist())
            self.min_k = (
                float(self._worst[new_tslots[-1]]) if n >= self.k else 0.0
            )
            self._topk_dirty = False
            self._queue_arr = None
        self._touched.clear()
        if self._queue_arr is not None:
            if self._queue_new:
                queue_slots = np.concatenate(
                    [self._queue_arr] + self._queue_new
                )
            else:
                queue_slots = self._queue_arr
        else:
            alive = self._alive_slots()
            queue_slots = alive[~self._in_topk[alive]]
        self._queue_new.clear()
        if self.min_k > 0.0:
            threshold = self.min_k + EPSILON
            if queue_slots.size:
                bs = self._worst[queue_slots] + self._row_miss(
                    self._seen[queue_slots]
                )
                keep = bs > threshold
                dead = queue_slots[~keep]
                if dead.size:
                    dead_docs = self._doc[dead].tolist()
                    self._free_slots(dead)
                    if was_synced:
                        objs = self._objs
                        for doc in dead_docs:
                            del objs[doc]
                    else:
                        self._journal.append(("del", dead_docs))
                        self._journal_ops += len(dead_docs)
                    self._alive_cache = None
                    self._alive_cache_version = -1
                    bs = bs[keep]
                    queue_slots = queue_slots[keep]
            else:
                bs = np.empty(0, dtype=np.float64)
            # Every surviving queue row was just compared against the
            # exact termination threshold: cache the result for the
            # same-version `is_terminated` / `max_queue_bestscore` calls.
            self._term_queue_bs = bs
            self._term_queue_version = self._version
        self._queue_arr = queue_slots
        if was_synced:
            self._objs_version = self._version

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    @property
    def is_terminated(self) -> bool:
        """Paper Sec. 2.3 stop rule, evaluated as array reductions.

        Same semantics as the reference scan: with fewer than k scored
        documents, done only once nothing unseen can score at all;
        otherwise no unseen document and no queue candidate may be able
        to beat ``min-k``.  Memoized against the pool version.
        """
        if self._term_memo_version == self._version:
            return self._term_memo
        result = self._is_terminated_now()
        self._term_memo = result
        self._term_memo_version = self._version
        return result

    def _is_terminated_now(self) -> bool:
        if self._alive_count < self.k:
            return self.unseen_bestscore <= EPSILON
        threshold = self.min_k + EPSILON
        if self.unseen_bestscore > threshold:
            return False
        if self._term_queue_version == self._version:
            # The prune pass already compared every queue row against this
            # exact threshold and kept only the winners.
            return self._term_queue_bs.size == 0
        alive = self._alive_slots()
        queue_slots = alive[~self._in_topk[alive]]
        if not queue_slots.size:
            return True
        bs = self._worst[queue_slots] + self._row_miss(self._seen[queue_slots])
        return not bool(np.any(bs > threshold))

    # ------------------------------------------------------------------
    # Aggregate views (no object sync needed)
    # ------------------------------------------------------------------
    @property
    def mask_counts(self) -> Dict[int, int]:
        """Exact count of alive candidates per ``seen_mask`` (derived)."""
        if self._mask_counts_version != self._version:
            masks, counts = self.mask_count_arrays()
            self._mask_counts_cache = dict(
                zip(masks.tolist(), counts.tolist())
            )
            self._mask_counts_version = self._version
        return self._mask_counts_cache

    def mask_count_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(masks, counts)`` arrays over all alive candidates."""
        if self._mask_arrays_version != self._version:
            alive = self._alive_slots()
            masks, counts = np.unique(self._seen[alive], return_counts=True)
            self._mask_arrays_cache = (masks, counts.astype(np.int64))
            self._mask_arrays_version = self._version
        return self._mask_arrays_cache

    def queue_size(self) -> int:
        """Number of candidates outside the current top-k."""
        return self._alive_count - len(self.topk_ids)

    def topk_worstscores(self) -> np.ndarray:
        """Worstscores of the current top-k items (unordered, fresh array)."""
        return self._worst[self._topk_slots] + 0.0

    def max_queue_bestscore(self) -> float:
        """Largest bestscore over the queue; ``-inf`` for an empty queue.

        Used by the shard bound tap — a max reduction over the same
        per-row single adds the scalar loop performs, hence exact.
        """
        if self._term_queue_version == self._version:
            bs = self._term_queue_bs
            if not bs.size:
                return float("-inf")
            return float(bs.max())
        alive = self._alive_slots()
        queue_slots = alive[~self._in_topk[alive]]
        if not queue_slots.size:
            return float("-inf")
        bs = self._worst[queue_slots] + self._row_miss(self._seen[queue_slots])
        return float(bs.max())

    def partial_scores(self, doc_id: int) -> Optional[np.ndarray]:
        """Per-dimension known scores of one candidate (fresh array)."""
        slot = self._slot_for(int(doc_id))
        if slot < 0:
            return None
        return self._dim_scores[slot].copy()

    # ------------------------------------------------------------------
    # Object views (lazily synchronized)
    # ------------------------------------------------------------------
    @property
    def candidates(self):
        """Insertion-ordered ``doc_id -> Candidate`` mapping (read-only)."""
        self._ensure_synced()
        return self._objs

    def queue(self) -> list:
        """Candidates outside the current top-k (the paper's queue ``Q``).

        Cached until the next pool mutation — treat as read-only.
        """
        if self._queue_cache_version != self._version:
            topk_ids = self.topk_ids
            self._queue_cache = [
                cand
                for doc_id, cand in self.candidates.items()
                if doc_id not in topk_ids
            ]
            self._queue_cache_version = self._version
        return self._queue_cache

    def unresolved(self) -> list:
        """All candidates (queue and top-k) with at least one missing dim.

        Cached like :meth:`queue`; treat the returned list as read-only.
        """
        if self._unresolved_cache_version != self._version:
            full = self.full_mask
            self._unresolved_cache = [
                cand
                for cand in self.candidates.values()
                if cand.seen_mask != full
            ]
            self._unresolved_cache_version = self._version
        return self._unresolved_cache

    def topk_candidates(self) -> list:
        """The current top-k candidates in descending worstscore order.

        Cached like :meth:`queue`; treat the returned list as read-only.
        """
        if self._topk_cache_version != self._version:
            candidates = self.candidates
            top = [candidates[d] for d in self.topk_ids]
            top.sort(key=lambda c: (-c.worstscore, c.doc_id))
            self._topk_cache = top
            self._topk_cache_version = self._version
        return self._topk_cache

    # -- synchronization machinery -------------------------------------
    def _ensure_synced(self) -> None:
        if self._objs_version == self._version and not self._journal:
            return
        journal = self._journal
        if journal and self._journal_ops <= max(
            1024, _JOURNAL_REBUILD_FACTOR * self._alive_count
        ):
            self._replay_journal(journal)
        else:
            self._rebuild_objects()
        self._journal = []
        self._journal_ops = 0
        self._objs_version = self._version

    def _replay_journal(self, journal: List[tuple]) -> None:
        """Apply the mutation journal to the object dict, in order.

        * ``new`` entries append in batch order; an entry whose slot was
          recycled since (``seq`` mismatch) belongs to a document that
          was dropped again before this sync — its ``del`` entry makes
          skipping it exact.
        * ``upd`` entries copy the *current* column values onto whichever
          journalled document still lives in the dict, so stale
          intermediate values can never surface.
        * ``del`` entries pop; popping keeps dict order for the rest.
        """
        from .bookkeeping import Candidate

        objs = self._objs
        doc_col = self._doc
        worst_col = self._worst
        seen_col = self._seen
        seq_col = self._seq
        alive_col = self._alive
        for entry in journal:
            kind = entry[0]
            if kind == "new":
                slots, seqs = entry[1], entry[2]
                valid = seq_col[slots] == seqs
                if not valid.all():
                    slots = slots[valid]
                for slot in slots.tolist():
                    if not alive_col[slot]:
                        continue
                    doc = int(doc_col[slot])
                    objs[doc] = Candidate(
                        doc, float(worst_col[slot]), int(seen_col[slot])
                    )
            elif kind == "upd":
                for slot in entry[1].tolist():
                    cand = objs.get(int(doc_col[slot]))
                    if cand is not None:
                        cand.worstscore = float(worst_col[slot])
                        cand.seen_mask = int(seen_col[slot])
            else:  # "del"
                for doc in entry[1]:
                    objs.pop(doc, None)

    def _rebuild_objects(self) -> None:
        """Rebuild the object dict from the columns in ``seq`` order."""
        alive = self._alive_slots()
        order = np.argsort(self._seq[alive], kind="stable")
        slots = alive[order]
        old = self._objs
        objs: Dict[int, Candidate] = {}
        docs = self._doc[slots].tolist()
        worsts = self._worst[slots].tolist()
        seens = self._seen[slots].tolist()
        for doc, worst, seen in zip(docs, worsts, seens):
            cand = old.get(doc)
            if cand is None:
                cand = Candidate(doc, worst, seen)
            else:
                cand.worstscore = worst
                cand.seen_mask = seen
            objs[doc] = cand
        self._objs = objs
