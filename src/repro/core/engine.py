"""The batched TA-family query driver (paper Sec. 2.3 and 4).

The engine processes a query in rounds.  Each round:

1. the **SA policy** splits a batch of ``b`` sorted accesses (whole blocks of
   the inverted block-index) across the ``m`` query lists,
2. the delivered postings are merged into the candidate pool and the
   threshold bookkeeping is refreshed,
3. the **RA policy** gets a hook to issue random-access probes — a few
   (TA/CA/Upper), none (NRA), or the entire final probing phase
   (Last-/Ben-Probing),
4. the engine stops as soon as the Sec. 2.3 termination condition holds:
   neither a queued candidate nor any unseen document can still exceed the
   ``min-k`` threshold.

All index data flows through charged cursors/accessors, so the meter's COST
is exactly the paper's ``#SA + (cR/cS) * #RA``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set

from ..stats.catalog import StatsCatalog
from ..stats.score_predictor import ScorePredictor
from ..storage.accessors import (
    ListUnavailableError,
    RandomAccessor,
    RetryPolicy,
    RetrySession,
    SortedCursor,
)
from ..storage.block_index import InvertedBlockIndex
from ..storage.diskmodel import AccessMeter, CostModel
from .bookkeeping import EPSILON, Candidate, CandidatePool
from .results import QueryStats, RankedItem, RoundTrace, TopKResult


class DegradedExecution(Exception):
    """Internal control flow: a list became unavailable mid-probing.

    Raised by :meth:`QueryState.probe` when a random accessor exhausts its
    retry budget (or is already failed), so that any RA policy — whatever
    its internal loop structure — unwinds immediately instead of spinning
    on a dead list.  The engine catches it, records the degradation, and
    carries on with the remaining lists.
    """

    def __init__(self, term: str) -> None:
        super().__init__("query degraded: list %r dropped" % term)
        self.term = term


@dataclass(frozen=True)
class QueryDeadline:
    """Anytime-execution limits for one query (paper-style cost or time).

    The engine checks the deadline between processing rounds; once
    ``wall_clock_seconds`` of real time have elapsed or the meter's
    normalized COST reaches ``cost_budget``, the round loop stops and the
    current candidate state is returned as a *degraded* result whose
    per-item ``[worstscore, bestscore]`` intervals are still correct.
    """

    wall_clock_seconds: Optional[float] = None
    cost_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wall_clock_seconds is None and self.cost_budget is None:
            raise ValueError(
                "a deadline needs wall_clock_seconds, cost_budget, or both"
            )
        if self.wall_clock_seconds is not None and self.wall_clock_seconds <= 0:
            raise ValueError("wall_clock_seconds must be positive")
        if self.cost_budget is not None and self.cost_budget <= 0:
            raise ValueError("cost_budget must be positive")

    def exceeded(self, elapsed_seconds: float, cost: float) -> bool:
        """Whether either limit has been reached."""
        if (
            self.wall_clock_seconds is not None
            and elapsed_seconds >= self.wall_clock_seconds
        ):
            return True
        return self.cost_budget is not None and cost >= self.cost_budget


class QueryState:
    """Everything one in-flight query knows, shared with the policies.

    The policies read scan positions, ``high_i`` bounds, candidate bounds
    and the probabilistic predictor from here, and mutate the query only
    through :meth:`perform_sorted_round` and the probe methods — which keeps
    every index access charged and every decision statistics-driven.
    """

    def __init__(
        self,
        index: InvertedBlockIndex,
        stats: StatsCatalog,
        terms: Sequence[str],
        k: int,
        cost_model: CostModel,
        batch_blocks: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
        predictor_cls: type = ScorePredictor,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if not terms:
            raise ValueError("a query needs at least one term")
        if int(k) < 1:
            raise ValueError("k must be positive (got %r)" % (k,))
        self.predictor_cls = predictor_cls
        self.index = index
        self.stats = stats
        self.terms = list(terms)
        self.k = int(k)
        self.num_lists = len(self.terms)
        self.cost_model = cost_model
        if weights is None:
            weights = [1.0] * self.num_lists
        if len(weights) != self.num_lists:
            raise ValueError("weights must match the number of query terms")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive (monotonicity)")
        #: per-dimension aggregation weights (monotone weighted summation)
        self.weights = [float(w) for w in weights]
        self.meter = AccessMeter(cost_model=cost_model)
        #: per-query retry state; None disables fault recovery (a single
        #: fault then permanently fails its list)
        self.retry = RetrySession(retry_policy) if retry_policy else None
        #: dimensions dropped after a fault exhausted their retries;
        #: their ``high_i`` stays frozen at the last value read, keeping
        #: every bestscore interval correct
        self.failed_dims: Set[int] = set()
        lists = index.lists_for(self.terms)
        self.cursors: List[SortedCursor] = [
            SortedCursor(lst, self.meter, retry=self.retry) for lst in lists
        ]
        self.randoms: List[RandomAccessor] = [
            RandomAccessor(lst, self.meter, retry=self.retry) for lst in lists
        ]
        self.list_lengths = [len(lst) for lst in lists]
        self.block_size = lists[0].block_size if lists else 1
        #: sorted accesses per round; defaults to one block per query list
        self.batch_blocks = batch_blocks if batch_blocks else self.num_lists
        self.histograms = [
            stats.histogram(t).scaled(w)
            for t, w in zip(self.terms, self.weights)
        ]
        self.pool = CandidatePool(self.num_lists, self.k)
        self.round_no = 0
        self.last_allocation: List[int] = [0] * self.num_lists
        self.last_new_docs: List[int] = []
        self._predictor: Optional[ScorePredictor] = None
        self._predictor_round = -1
        self.pool.set_highs(self.highs)
        self.pool.recompute()

    # ------------------------------------------------------------------
    # Scan geometry
    # ------------------------------------------------------------------
    @property
    def highs(self) -> List[float]:
        """Current weighted ``high_i`` bounds at the scan positions."""
        return [
            cursor.high * w for cursor, w in zip(self.cursors, self.weights)
        ]

    @property
    def positions(self) -> List[int]:
        """Current scan positions ``pos_i`` (entries read per list)."""
        return [cursor.position for cursor in self.cursors]

    @property
    def exhausted(self) -> bool:
        """True when every list has been fully scanned."""
        return all(cursor.exhausted for cursor in self.cursors)

    @property
    def min_k(self) -> float:
        return self.pool.min_k

    @property
    def unseen_bestscore(self) -> float:
        return self.pool.unseen_bestscore

    @property
    def predictor(self) -> ScorePredictor:
        """The probabilistic predictor, refreshed at most once per round.

        Built on the query's (weight-scaled) histograms so that score
        predictions live on the same scale as the candidate bounds.
        """
        if self._predictor is None:
            self._predictor = self.predictor_cls(
                histograms=self.histograms,
                list_lengths=self.list_lengths,
                num_docs=self.index.num_docs,
                covariance=self.stats.covariance(self.terms),
            )
            self._predictor.refresh(self.positions)
            self._predictor_round = self.round_no
        elif self._predictor_round != self.round_no:
            self._predictor.refresh(self.positions)
            self._predictor_round = self.round_no
        return self._predictor

    # ------------------------------------------------------------------
    # Sorted access
    # ------------------------------------------------------------------
    def perform_sorted_round(self, blocks_per_list: Sequence[int]) -> None:
        """Execute one batch of sorted accesses and refresh bookkeeping."""
        if len(blocks_per_list) != self.num_lists:
            raise ValueError("allocation must cover every query list")
        self.round_no += 1
        self.last_new_docs = []
        allocation = [0] * self.num_lists
        for dim, blocks in enumerate(blocks_per_list):
            if blocks <= 0:
                continue
            doc_ids, scores = self.cursors[dim].read_next_blocks(int(blocks))
            allocation[dim] = int(doc_ids.size)
            if doc_ids.size:
                if self.weights[dim] != 1.0:
                    scores = scores * self.weights[dim]
                self.last_new_docs.extend(
                    self.pool.absorb_postings(dim, doc_ids, scores)
                )
        self.last_allocation = allocation
        self._note_cursor_failures()
        self.recompute()

    def _note_cursor_failures(self) -> None:
        """Record lists whose sorted-access path gave up this round."""
        for dim, cursor in enumerate(self.cursors):
            if cursor.failed:
                self.failed_dims.add(dim)

    def recompute(self) -> None:
        """Refresh highs, the top-k/min-k split, and prune the queue."""
        self.pool.set_highs(self.highs)
        self.pool.recompute()

    def probabilistic_prune(self, epsilon: float) -> int:
        """Approximate pruning (paper Sec. 7 / its reference [29]).

        Drops every queued candidate whose probability of still reaching
        the top-k — the combined predictor ``p(d)`` of Sec. 3.3 — falls
        below ``epsilon``.  This trades a bounded chance of missing a true
        result for earlier threshold termination; ``epsilon = 0`` keeps
        the processing exact.  Returns the number of dropped candidates.
        """
        if epsilon <= 0.0 or self.min_k <= 0.0:
            return 0
        predictor = self.predictor
        pool = self.pool
        doomed = [
            doc_id
            for doc_id, cand in pool.candidates.items()
            if doc_id not in pool.topk_ids
            and predictor.qualify_probability(
                cand.seen_mask, cand.worstscore, self.min_k
            ) < epsilon
        ]
        for doc_id in doomed:
            del pool.candidates[doc_id]
        return len(doomed)

    # ------------------------------------------------------------------
    # Random access
    # ------------------------------------------------------------------
    def probe(self, doc_id: int, dim: int) -> float:
        """One random access: resolve ``dim`` for ``doc_id``.

        Raises :class:`DegradedExecution` when the list's random-access
        path is (or becomes) unavailable, so policy loops unwind instead
        of spinning on probes that can never resolve anything.
        """
        accessor = self.randoms[dim]
        if accessor.failed:
            self.failed_dims.add(dim)
            raise DegradedExecution(self.terms[dim])
        try:
            raw = accessor.probe(doc_id)
        except ListUnavailableError:
            self.failed_dims.add(dim)
            raise DegradedExecution(self.terms[dim]) from None
        score = raw * self.weights[dim]
        self.pool.resolve_dimension(doc_id, dim, score)
        return score

    def probe_candidate(
        self,
        cand: Candidate,
        dims: Optional[Sequence[int]] = None,
        stop_when_pruned: bool = True,
    ) -> None:
        """Probe a candidate's missing dimensions one random access at a time.

        Dimensions default to ascending list selectivity ``l_i / n``
        (Sec. 5.2) — the most selective (shortest) lists first, since those
        are most likely to disqualify the candidate cheaply.  When
        ``stop_when_pruned`` is set, the probe sequence is broken off as
        soon as the candidate's bestscore drops to ``min-k`` or below.
        """
        if dims is None:
            dims = sorted(
                self.pool.missing_dims(cand), key=lambda i: self.list_lengths[i]
            )
        for dim in dims:
            if cand.seen_mask >> dim & 1:
                continue
            if self.randoms[dim].failed:
                continue  # unavailable list: leave the dimension unresolved
            if (
                stop_when_pruned
                and self.pool.bestscore(cand) <= self.min_k + EPSILON
            ):
                return
            self.probe(cand.doc_id, dim)

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    @property
    def is_terminated(self) -> bool:
        if self.pool.is_terminated:
            return True
        # A fully scanned index cannot deliver new information by sorted
        # access; if candidates still need resolution the RA policy must act,
        # but with all highs at 0 every candidate is already resolved
        # (missing dimensions contribute exactly 0).
        return self.exhausted and self.pool.unseen_bestscore <= 0.0

    def build_result(
        self, algorithm: str, wall_time: float, degraded: bool = False
    ) -> TopKResult:
        # Documents whose aggregated lower bound is 0 carry no evidence of
        # a match and are indistinguishable from unseen documents — they
        # are never returned (FullMerge applies the same rule).
        self._note_cursor_failures()
        top = self.pool.topk_candidates()
        items = [
            RankedItem(
                doc_id=c.doc_id,
                worstscore=c.worstscore,
                bestscore=self.pool.bestscore(c),
            )
            for c in top
            if c.worstscore > 0.0
        ]
        stats = QueryStats.from_meter(
            self.meter,
            rounds=self.round_no,
            peak_queue_size=self.pool.peak_size,
            wall_time_seconds=wall_time,
            retries=self.retry.retries if self.retry else 0,
            simulated_io_wait_ms=self.retry.waited_ms if self.retry else 0.0,
        )
        return TopKResult(
            items=items,
            stats=stats,
            algorithm=algorithm,
            degraded=degraded or bool(self.failed_dims),
            exhausted_lists=[self.terms[d] for d in sorted(self.failed_dims)],
        )


class SAPolicy:
    """Base class for sorted-access scheduling policies (Sec. 4)."""

    name = "sa"

    def allocate(self, state: QueryState, batch_blocks: int) -> List[int]:
        """Split ``batch_blocks`` whole blocks across the query lists."""
        raise NotImplementedError


class RAPolicy:
    """Base class for random-access scheduling policies (Sec. 5)."""

    name = "ra"

    def wants_sorted_access(self, state: QueryState) -> bool:
        """Whether the engine should run another SA round first."""
        return True

    def after_round(self, state: QueryState) -> None:
        """Hook to issue random accesses after an SA round."""


class TopKEngine:
    """Runs one TA-family algorithm — an (SA policy, RA policy) pair."""

    def __init__(
        self,
        index: InvertedBlockIndex,
        stats: Optional[StatsCatalog] = None,
        cost_model: Optional[CostModel] = None,
        batch_blocks: Optional[int] = None,
        max_rounds: int = 1_000_000,
        predictor_cls: type = ScorePredictor,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.index = index
        self.stats = stats if stats is not None else StatsCatalog(index)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.batch_blocks = batch_blocks
        self.max_rounds = max_rounds
        self.predictor_cls = predictor_cls
        #: fault-recovery parameters applied to every query's accessors;
        #: None disables retries (any storage fault drops its list)
        self.retry_policy = retry_policy

    def run(
        self,
        terms: Sequence[str],
        k: int,
        sa_policy: SAPolicy,
        ra_policy: RAPolicy,
        algorithm_name: str = "",
        weights: Optional[Sequence[float]] = None,
        trace: bool = False,
        prune_epsilon: float = 0.0,
        deadline: Optional[QueryDeadline] = None,
    ) -> TopKResult:
        """Execute one top-k query and return results plus access stats.

        With ``trace=True`` the result carries one :class:`RoundTrace`
        snapshot per processing round (scan positions, bounds, threshold,
        queue size) — the programmatic version of the paper's Fig. 1.

        ``prune_epsilon > 0`` enables *approximate* processing: candidates
        whose estimated qualification probability drops below the epsilon
        are discarded early (the paper's Sec. 7 suggestion of combining
        the scheduling framework with probabilistic pruning).

        ``deadline`` turns the query *anytime*: the engine checks the
        wall-clock/cost limits between rounds and, once exceeded, stops
        early and returns the current top-k as a ``degraded`` result with
        correct per-item score intervals.  The same degradation path
        covers storage faults: a list whose retry budget is exhausted is
        dropped (named in ``result.exhausted_lists``) and its ``high_i``
        contribution stays frozen at the last value read.
        """
        started = time.perf_counter()
        state = QueryState(
            index=self.index,
            stats=self.stats,
            terms=terms,
            k=k,
            cost_model=self.cost_model,
            batch_blocks=self.batch_blocks,
            weights=weights,
            predictor_cls=self.predictor_cls,
            retry_policy=self.retry_policy,
        )
        traces: List[RoundTrace] = []
        deadline_hit = False
        while not state.is_terminated:
            if deadline is not None and deadline.exceeded(
                time.perf_counter() - started, state.meter.cost
            ):
                deadline_hit = True
                break
            progressed = False
            if not state.exhausted and ra_policy.wants_sorted_access(state):
                allocation = sa_policy.allocate(state, state.batch_blocks)
                if any(b > 0 for b in allocation):
                    state.perform_sorted_round(allocation)
                    progressed = True
            ra_before = state.meter.random_accesses
            try:
                ra_policy.after_round(state)
            except DegradedExecution:
                # A list went unavailable mid-probing; the failure is
                # recorded in state.failed_dims — keep going with the
                # remaining lists and report a degraded result.
                pass
            if state.meter.random_accesses != ra_before:
                state.recompute()
                progressed = True
            if prune_epsilon > 0.0 and state.probabilistic_prune(
                prune_epsilon
            ):
                state.recompute()
            if not progressed:
                # Policy refused both access kinds while work remains; fall
                # back to a round-robin SA round to guarantee progress.
                if state.exhausted:
                    break
                fallback = _round_robin_fallback(state)
                state.perform_sorted_round(fallback)
            if trace:
                traces.append(
                    RoundTrace(
                        round_no=state.round_no,
                        allocation=tuple(state.last_allocation),
                        positions=tuple(state.positions),
                        highs=tuple(state.highs),
                        min_k=state.min_k,
                        unseen_bestscore=state.pool.unseen_bestscore,
                        queue_size=len(state.pool.queue()),
                        sorted_accesses=state.meter.sorted_accesses,
                        random_accesses=state.meter.random_accesses,
                    )
                )
            if state.round_no > self.max_rounds:  # pragma: no cover - guard
                raise RuntimeError("engine exceeded max_rounds; likely a bug")
        elapsed = time.perf_counter() - started
        name = algorithm_name or "%s-%s" % (sa_policy.name, ra_policy.name)
        degraded = deadline_hit or not state.is_terminated
        result = state.build_result(name, elapsed, degraded=degraded)
        result.trace = traces
        return result


def _round_robin_fallback(state: QueryState) -> List[int]:
    """One block for each non-exhausted list (progress guarantee)."""
    return [0 if cursor.exhausted else 1 for cursor in state.cursors]
