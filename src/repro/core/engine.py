"""Query state and policy interfaces for the TA-family engine.

The query path is split into three layers (see :mod:`repro.core.planner`,
:mod:`repro.core.executor`, and :mod:`repro.core.session`):

* **planner** — resolves a request into an immutable
  :class:`~repro.core.planner.QueryPlan` (algorithm triple, terms,
  weights, k, deadline, prune epsilon, cost model),
* **executor** — drives the round loop of batched sorted accesses and
  random-access hooks (paper Sec. 2.3 and 4) and emits
  :class:`~repro.core.executor.ExecutionListener` events,
* **session** — caches per-index statistics catalogs and executors and
  offers the batch entry points.

This module holds what those layers share: :class:`QueryState` — the pure
bookkeeping of one in-flight query (cursors, candidate pool, bounds,
predictor) — and the :class:`SAPolicy` / :class:`RAPolicy` base classes
that scheduling strategies implement.  All index data flows through
charged cursors/accessors, so the meter's COST is exactly the paper's
``#SA + (cR/cS) * #RA``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..stats.catalog import StatsCatalog
from ..stats.score_predictor import ScorePredictor
from ..storage.accessors import (
    ListUnavailableError,
    RandomAccessor,
    RetryPolicy,
    RetrySession,
    SortedCursor,
)
from ..storage.block_index import InvertedBlockIndex
from ..storage.diskmodel import AccessMeter, CostModel
from .bookkeeping import EPSILON, Candidate, make_pool, resolve_bookkeeping_mode


class DegradedExecution(Exception):
    """Internal control flow: a list became unavailable mid-probing.

    Raised by :meth:`QueryState.probe` when a random accessor exhausts its
    retry budget (or is already failed), so that any RA policy — whatever
    its internal loop structure — unwinds immediately instead of spinning
    on a dead list.  The executor catches it, records the degradation, and
    carries on with the remaining lists.
    """

    def __init__(self, term: str) -> None:
        super().__init__("query degraded: list %r dropped" % term)
        self.term = term


class QueryState:
    """Everything one in-flight query knows, shared with the policies.

    The policies read scan positions, ``high_i`` bounds, candidate bounds
    and the probabilistic predictor from here, and mutate the query only
    through :meth:`perform_sorted_round` and the probe methods — which keeps
    every index access charged and every decision statistics-driven.

    The state is pure bookkeeping: the round loop, deadline handling, and
    result assembly live in :class:`repro.core.executor.QueryExecutor`.
    ``listeners`` (if any) receive an ``on_probe`` event per random access.
    """

    def __init__(
        self,
        index: InvertedBlockIndex,
        stats: StatsCatalog,
        terms: Sequence[str],
        k: int,
        cost_model: CostModel,
        batch_blocks: Optional[int] = None,
        weights: Optional[Sequence[float]] = None,
        predictor_cls: type = ScorePredictor,
        retry_policy: Optional[RetryPolicy] = None,
        listeners: Sequence = (),
        bookkeeping: Optional[str] = None,
        predicted_threshold: Optional[float] = None,
    ) -> None:
        if not terms:
            raise ValueError("a query needs at least one term")
        if int(k) < 1:
            raise ValueError("k must be positive (got %r)" % (k,))
        self.predictor_cls = predictor_cls
        self.index = index
        self.stats = stats
        self.terms = list(terms)
        self.k = int(k)
        self.num_lists = len(self.terms)
        self.cost_model = cost_model
        if weights is None:
            weights = [1.0] * self.num_lists
        if len(weights) != self.num_lists:
            raise ValueError("weights must match the number of query terms")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive (monotonicity)")
        #: per-dimension aggregation weights (monotone weighted summation)
        self.weights = [float(w) for w in weights]
        self.meter = AccessMeter(cost_model=cost_model)
        #: observers notified of every random-access probe; must not raise
        self.listeners = tuple(listeners)
        #: per-query retry state; None disables fault recovery (a single
        #: fault then permanently fails its list)
        self.retry = RetrySession(retry_policy) if retry_policy else None
        #: dimensions dropped after a fault exhausted their retries;
        #: their ``high_i`` stays frozen at the last value read, keeping
        #: every bestscore interval correct
        self.failed_dims: Set[int] = set()
        lists = index.lists_for(self.terms)
        self.cursors: List[SortedCursor] = [
            SortedCursor(lst, self.meter, retry=self.retry) for lst in lists
        ]
        self.randoms: List[RandomAccessor] = [
            RandomAccessor(lst, self.meter, retry=self.retry) for lst in lists
        ]
        self.list_lengths = [len(lst) for lst in lists]
        self.block_size = lists[0].block_size if lists else 1
        #: sorted accesses per round; defaults to one block per query list
        self.batch_blocks = batch_blocks if batch_blocks else self.num_lists
        self.histograms = [
            stats.histogram(t).scaled(w)
            for t, w in zip(self.terms, self.weights)
        ]
        #: bookkeeping mode resolved at query construction (explicit
        #: option > context override > environment > default), so a
        #: session built outside a ``bookkeeping_mode`` context still
        #: honours the context active when the query runs
        self.bookkeeping = resolve_bookkeeping_mode(bookkeeping)
        self.pool = make_pool(self.num_lists, self.k, self.bookkeeping)
        #: plan-time predicted top-k threshold (pruning accelerator only);
        #: None disables prediction-driven pruning entirely
        self.predicted_threshold = (
            float(predicted_threshold)
            if predicted_threshold is not None
            else None
        )
        #: candidates dropped against the prediction, and the largest
        #: bestscore among them — the certificate the safety check
        #: compares against the final ``min-k``
        self.prediction_drops = 0
        self.max_dropped_bestscore = float("-inf")
        self.round_no = 0
        self.last_allocation: List[int] = [0] * self.num_lists
        self.last_new_docs: List[int] = []
        self._predictor: Optional[ScorePredictor] = None
        self._predictor_round = -1
        self.pool.set_highs(self.highs)
        self.pool.recompute()

    # ------------------------------------------------------------------
    # Scan geometry
    # ------------------------------------------------------------------
    @property
    def highs(self) -> List[float]:
        """Current weighted ``high_i`` bounds at the scan positions."""
        return [
            cursor.high * w for cursor, w in zip(self.cursors, self.weights)
        ]

    @property
    def positions(self) -> List[int]:
        """Current scan positions ``pos_i`` (entries read per list)."""
        return [cursor.position for cursor in self.cursors]

    @property
    def exhausted(self) -> bool:
        """True when every list has been fully scanned."""
        return all(cursor.exhausted for cursor in self.cursors)

    @property
    def min_k(self) -> float:
        return self.pool.min_k

    @property
    def unseen_bestscore(self) -> float:
        return self.pool.unseen_bestscore

    @property
    def predictor(self) -> ScorePredictor:
        """The probabilistic predictor, refreshed at most once per round.

        Built on the query's (weight-scaled) histograms so that score
        predictions live on the same scale as the candidate bounds.
        """
        if self._predictor is None:
            self._predictor = self.predictor_cls(
                histograms=self.histograms,
                list_lengths=self.list_lengths,
                num_docs=self.index.num_docs,
                covariance=self.stats.covariance(self.terms),
            )
            self._predictor.refresh(self.positions)
            self._predictor_round = self.round_no
        elif self._predictor_round != self.round_no:
            self._predictor.refresh(self.positions)
            self._predictor_round = self.round_no
        return self._predictor

    # ------------------------------------------------------------------
    # Sorted access
    # ------------------------------------------------------------------
    def perform_sorted_round(self, blocks_per_list: Sequence[int]) -> None:
        """Execute one batch of sorted accesses and refresh bookkeeping."""
        if len(blocks_per_list) != self.num_lists:
            raise ValueError("allocation must cover every query list")
        self.round_no += 1
        self.last_new_docs = []
        allocation = [0] * self.num_lists
        for dim, blocks in enumerate(blocks_per_list):
            if blocks <= 0:
                continue
            doc_ids, scores = self.cursors[dim].read_next_blocks(int(blocks))
            allocation[dim] = int(doc_ids.size)
            if doc_ids.size:
                if self.weights[dim] != 1.0:
                    scores = scores * self.weights[dim]
                self.last_new_docs.extend(
                    self.pool.absorb_postings(dim, doc_ids, scores)
                )
        self.last_allocation = allocation
        self._note_cursor_failures()
        self.recompute()

    def _note_cursor_failures(self) -> None:
        """Record lists whose sorted-access path gave up this round."""
        for dim, cursor in enumerate(self.cursors):
            if cursor.failed:
                self.failed_dims.add(dim)

    def recompute(self) -> None:
        """Refresh highs, the top-k/min-k split, and prune the queue."""
        self.pool.set_highs(self.highs)
        self.pool.recompute()

    def probabilistic_prune(self, epsilon: float) -> int:
        """Approximate pruning (paper Sec. 7 / its reference [29]).

        Drops every queued candidate whose probability of still reaching
        the top-k — the combined predictor ``p(d)`` of Sec. 3.3 — falls
        below ``epsilon``.  This trades a bounded chance of missing a true
        result for earlier threshold termination; ``epsilon = 0`` keeps
        the processing exact.  Returns the number of dropped candidates.
        """
        if epsilon <= 0.0 or self.min_k <= 0.0:
            return 0
        predictor = self.predictor
        pool = self.pool
        doomed = [
            cand.doc_id
            for cand in pool.queue()
            if predictor.qualify_probability(
                cand.seen_mask, cand.worstscore, self.min_k
            ) < epsilon
        ]
        for doc_id in doomed:
            pool.drop(doc_id)
        return len(doomed)

    def prediction_prune(self) -> int:
        """Drop queue candidates against the plan-time predicted threshold.

        A pruning *accelerator* only: candidates whose bestscore is
        strictly below the prediction are dropped early, but termination
        still requires the true ``min-k`` bound.  Every drop is recorded
        — the maximum dropped bestscore is the certificate
        :attr:`prediction_unsafe` compares against the final threshold,
        so an over-aggressive prediction is always detected and the
        executor falls back to a prediction-free re-execution.  The
        comparison is strict (no epsilon): candidates *tying* the
        prediction are never dropped, so a dead-on estimate cannot
        perturb tie-breaking.  Returns the number of dropped candidates.
        """
        tau = self.predicted_threshold
        if tau is None or tau <= self.min_k:
            # The true threshold has caught up: normal epsilon-pruning
            # already dominates the prediction.
            return 0
        dropped, max_bs = self.pool.prune_below(tau)
        if dropped:
            self.prediction_drops += dropped
            if max_bs > self.max_dropped_bestscore:
                self.max_dropped_bestscore = max_bs
            self.recompute()
        return dropped

    @property
    def prediction_unsafe(self) -> bool:
        """True when some prediction-driven drop is uncertified.

        Checked at termination: every dropped candidate's recorded
        bestscore must sit strictly below the final ``min-k`` for the
        drops to be provably harmless.  A single violation voids the
        prediction — the executor then re-runs without it.
        """
        return (
            self.prediction_drops > 0
            and self.max_dropped_bestscore >= self.min_k
        )

    # ------------------------------------------------------------------
    # Random access
    # ------------------------------------------------------------------
    def probe(self, doc_id: int, dim: int) -> float:
        """One random access: resolve ``dim`` for ``doc_id``.

        Raises :class:`DegradedExecution` when the list's random-access
        path is (or becomes) unavailable, so policy loops unwind instead
        of spinning on probes that can never resolve anything.
        """
        accessor = self.randoms[dim]
        if accessor.failed:
            self.failed_dims.add(dim)
            raise DegradedExecution(self.terms[dim])
        try:
            raw = accessor.probe(doc_id)
        except ListUnavailableError:
            self.failed_dims.add(dim)
            raise DegradedExecution(self.terms[dim]) from None
        score = raw * self.weights[dim]
        self.pool.resolve_dimension(doc_id, dim, score)
        for listener in self.listeners:
            listener.on_probe(self, doc_id, dim, score)
        return score

    def probe_candidate(
        self,
        cand: Candidate,
        dims: Optional[Sequence[int]] = None,
        stop_when_pruned: bool = True,
    ) -> None:
        """Probe a candidate's missing dimensions one random access at a time.

        Dimensions default to ascending list selectivity ``l_i / n``
        (Sec. 5.2) — the most selective (shortest) lists first, since those
        are most likely to disqualify the candidate cheaply.  When
        ``stop_when_pruned`` is set, the probe sequence is broken off as
        soon as the candidate's bestscore drops to ``min-k`` or below.
        """
        if dims is None:
            dims = sorted(
                self.pool.missing_dims(cand), key=lambda i: self.list_lengths[i]
            )
        for dim in dims:
            if cand.seen_mask >> dim & 1:
                continue
            if self.randoms[dim].failed:
                continue  # unavailable list: leave the dimension unresolved
            if (
                stop_when_pruned
                and self.pool.bestscore(cand) <= self.min_k + EPSILON
            ):
                return
            self.probe(cand.doc_id, dim)

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    @property
    def is_terminated(self) -> bool:
        if self.pool.is_terminated:
            return True
        # A fully scanned index cannot deliver new information by sorted
        # access; if candidates still need resolution the RA policy must act,
        # but with all highs at 0 every candidate is already resolved
        # (missing dimensions contribute exactly 0).
        return self.exhausted and self.pool.unseen_bestscore <= 0.0


class SAPolicy:
    """Base class for sorted-access scheduling policies (Sec. 4)."""

    name = "sa"

    def allocate(self, state: QueryState, batch_blocks: int) -> List[int]:
        """Split ``batch_blocks`` whole blocks across the query lists."""
        raise NotImplementedError


class RAPolicy:
    """Base class for random-access scheduling policies (Sec. 5)."""

    name = "ra"

    def wants_sorted_access(self, state: QueryState) -> bool:
        """Whether the executor should run another SA round first."""
        return True

    def after_round(self, state: QueryState) -> None:
        """Hook to issue random accesses after an SA round."""


_EXECUTOR_REEXPORTS = ("TopKEngine", "QueryDeadline", "QueryExecutor")


def __getattr__(name: str):
    # Backwards-compatible re-exports: the round loop moved to
    # repro.core.executor, but `from repro.core.engine import TopKEngine`
    # (and QueryDeadline) keeps working.  Lazy to avoid a circular import
    # (executor imports QueryState from this module).
    if name in _EXECUTOR_REEXPORTS:
        from . import executor

        return getattr(executor, name)
    raise AttributeError(
        "module %r has no attribute %r" % (__name__, name)
    )
