"""The execution layer: the TA-family round loop, phase by phase.

The executor drives one :class:`~repro.core.planner.QueryPlan` over one
index (paper Sec. 2.3 and 4).  Each iteration of the loop is decomposed
into named phases:

* :meth:`QueryExecutor.check_termination` — the Sec. 2.3 stop test
  (neither a queued candidate nor any unseen document can still exceed
  the ``min-k`` threshold) plus the anytime deadline,
* :meth:`QueryExecutor.sorted_round` — the SA policy splits a batch of
  ``b`` sorted accesses (whole blocks) across the ``m`` query lists,
* :meth:`QueryExecutor.random_round` — the RA policy's hook to issue
  random-access probes (a few for TA/CA/Upper, none for NRA, the entire
  final probing phase for Last-/Ben-Probing); a
  :class:`~repro.core.engine.DegradedExecution` unwind is absorbed here,
* :meth:`QueryExecutor.prune` — optional probabilistic candidate pruning
  (approximate processing, Sec. 7).

Every phase transition is observable through :class:`ExecutionListener`
hooks (query-start, round-start, probe, round-end, termination) — the
single instrumentation point used for per-round tracing
(:class:`TraceListener`), benchmarks, and chaos experiments.  Listeners
only observe: the access sequence with listeners attached is identical,
access for access, to a bare run.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..stats.score_predictor import ScorePredictor
from ..storage.accessors import RetryPolicy
from ..storage.block_index import InvertedBlockIndex
from ..storage.diskmodel import CostModel
from ..stats.catalog import StatsCatalog
from .engine import DegradedExecution, QueryState, RAPolicy, SAPolicy
from .planner import QueryPlan
from .results import (
    DEGRADE_DEAD_LIST,
    DEGRADE_DEADLINE,
    QueryStats,
    RankedItem,
    RoundTrace,
    TopKResult,
)


@dataclass(frozen=True)
class QueryDeadline:
    """Anytime-execution limits for one query (paper-style cost or time).

    The executor checks the deadline between processing rounds; once
    ``wall_clock_seconds`` of real time have elapsed or the meter's
    normalized COST reaches ``cost_budget``, the round loop stops and the
    current candidate state is returned as a *degraded* result whose
    per-item ``[worstscore, bestscore]`` intervals are still correct.
    """

    wall_clock_seconds: Optional[float] = None
    cost_budget: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wall_clock_seconds is None and self.cost_budget is None:
            raise ValueError(
                "a deadline needs wall_clock_seconds, cost_budget, or both"
            )
        if self.wall_clock_seconds is not None and self.wall_clock_seconds <= 0:
            raise ValueError("wall_clock_seconds must be positive")
        if self.cost_budget is not None and self.cost_budget <= 0:
            raise ValueError("cost_budget must be positive")

    def exceeded(self, elapsed_seconds: float, cost: float) -> bool:
        """Whether either limit has been reached."""
        if (
            self.wall_clock_seconds is not None
            and elapsed_seconds >= self.wall_clock_seconds
        ):
            return True
        return self.cost_budget is not None and cost >= self.cost_budget

    def split(self, parts: int) -> List["QueryDeadline"]:
        """Split this deadline into ``parts`` per-shard budgets.

        The **cost budget is divided**: the shares are equal and sum to at
        most the parent budget even under floating-point rounding (the
        last share absorbs any excess), so a query fanned out over shards
        can never charge more total COST than its single-node budget
        allowed.  The **wall clock passes through unchanged**: shards run
        concurrently, so each one may use the full remaining wall time —
        elapsed wall time is shared, not divided.
        """
        if parts < 1:
            raise ValueError("parts must be at least 1")
        if self.cost_budget is None:
            return [self] * parts
        share = self.cost_budget / parts
        shares = [share] * parts
        excess = math.fsum(shares) - self.cost_budget
        if excess > 0.0:
            shares[-1] -= excess
        return [
            QueryDeadline(
                wall_clock_seconds=self.wall_clock_seconds,
                cost_budget=s,
            )
            for s in shares
        ]


class ExecutionListener:
    """Observer interface for one query execution.

    Subclass and override any subset of the hooks; the default
    implementations do nothing.  Listeners are observational only — they
    must not mutate the state or issue accesses, and must not raise (an
    exception would abort the query).  Hook order per query::

        on_query_start
        (on_round_start  [on_probe ...]  on_round_end) * rounds
        on_termination

    ``on_probe`` fires once per random access, from whichever phase
    issued it (an RA policy hook or the final probing phase).
    """

    def on_query_start(self, plan: QueryPlan, state: QueryState) -> None:
        """The executor built the query state and is about to loop."""

    def on_round_start(self, state: QueryState) -> None:
        """A processing round is about to run its phases."""

    def on_probe(
        self, state: QueryState, doc_id: int, dim: int, score: float
    ) -> None:
        """One random access resolved ``dim`` for ``doc_id``."""

    def on_round_end(self, state: QueryState, trace: RoundTrace) -> None:
        """A round finished; ``trace`` snapshots the state after it."""

    def on_termination(
        self, state: QueryState, result: TopKResult, reason: str
    ) -> None:
        """The loop stopped (reason: threshold/deadline/exhausted)."""


class TraceListener(ExecutionListener):
    """Collects one :class:`RoundTrace` per round (the ``trace=True`` path).

    The records buffer resets on ``on_query_start``, so one instance can
    be attached to an executor or session and reused across queries; read
    ``records`` between runs (the executor also copies them onto
    ``result.trace``).
    """

    def __init__(self) -> None:
        self.records: List[RoundTrace] = []

    def on_query_start(self, plan: QueryPlan, state: QueryState) -> None:
        self.records = []

    def on_round_end(self, state: QueryState, trace: RoundTrace) -> None:
        self.records.append(trace)


#: Termination reasons passed to :meth:`ExecutionListener.on_termination`.
TERMINATED_THRESHOLD = "threshold"
TERMINATED_DEADLINE = "deadline"
TERMINATED_EXHAUSTED = "exhausted"


class QueryExecutor:
    """Runs query plans against one index — the execution layer.

    Holds everything that is per-index rather than per-query: the index,
    its statistics catalog, default cost model and batch size, the retry
    policy for storage faults, and any permanently attached listeners.
    Executors are reusable and are typically obtained from a
    :class:`repro.core.session.QuerySession`, which caches one per index.
    """

    def __init__(
        self,
        index: InvertedBlockIndex,
        stats: Optional[StatsCatalog] = None,
        cost_model: Optional[CostModel] = None,
        batch_blocks: Optional[int] = None,
        max_rounds: int = 1_000_000,
        predictor_cls: type = ScorePredictor,
        retry_policy: Optional[RetryPolicy] = None,
        listeners: Sequence[ExecutionListener] = (),
        bookkeeping: Optional[str] = None,
    ) -> None:
        self.index = index
        self.stats = stats if stats is not None else StatsCatalog(index)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.batch_blocks = batch_blocks
        self.max_rounds = max_rounds
        self.predictor_cls = predictor_cls
        #: fault-recovery parameters applied to every query's accessors;
        #: None disables retries (any storage fault drops its list)
        self.retry_policy = retry_policy
        #: listeners attached to every execution on this executor
        self.listeners: Tuple[ExecutionListener, ...] = tuple(listeners)
        #: bookkeeping mode (columnar | incremental | reference); None
        #: defers to the context override / environment / library default
        self.bookkeeping = bookkeeping

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: QueryPlan,
        listeners: Sequence[ExecutionListener] = (),
    ) -> TopKResult:
        """Run one plan to completion and return results plus stats.

        ``listeners`` are per-call observers combined with the executor's
        own; see :class:`ExecutionListener` for the event protocol.  The
        plan's ``cost_model`` / ``batch_blocks`` override the executor
        defaults when set, its ``deadline`` turns the query *anytime*
        (stop early, return the current top-k as a ``degraded`` result
        with correct score intervals), and ``prune_epsilon > 0`` enables
        approximate processing.  The same degradation path covers storage
        faults: a list whose retry budget is exhausted is dropped (named
        in ``result.exhausted_lists``) and its ``high_i`` contribution
        stays frozen at the last value read.
        """
        started = time.perf_counter()
        all_listeners = self.listeners + tuple(listeners)
        sa_policy, ra_policy = plan.make_policies()
        state = QueryState(
            index=self.index,
            stats=self.stats,
            terms=plan.terms,
            k=plan.k,
            cost_model=(
                plan.cost_model
                if plan.cost_model is not None
                else self.cost_model
            ),
            batch_blocks=(
                plan.batch_blocks
                if plan.batch_blocks is not None
                else self.batch_blocks
            ),
            weights=plan.weights,
            predictor_cls=self.predictor_cls,
            retry_policy=self.retry_policy,
            listeners=all_listeners,
            bookkeeping=self.bookkeeping,
            predicted_threshold=(
                plan.predicted_threshold.value
                if plan.predicted_threshold is not None
                else None
            ),
        )
        if state.retry is not None and plan.deadline is not None:
            # Deadline-aware retries: once the query's budget is spent,
            # a faulty list stops retrying (and stops accruing simulated
            # backoff) instead of burning budget on an answer that is
            # already due.
            deadline, meter = plan.deadline, state.meter
            state.retry.bind_deadline(
                lambda: deadline.exceeded(
                    time.perf_counter() - started, meter.cost
                )
            )
        for listener in all_listeners:
            listener.on_query_start(plan, state)
        reason = self._run_rounds(plan, state, sa_policy, ra_policy,
                                  all_listeners, started)
        if (
            state.predicted_threshold is not None
            and reason != TERMINATED_DEADLINE
            and state.prediction_unsafe
        ):
            # Safety fallback: some prediction-driven drop cannot be
            # certified against the final threshold — the prediction was
            # too aggressive.  Discard it and re-execute prediction-free
            # (the nested call runs the full listener protocol); the
            # abandoned run's accesses are folded into the stats so the
            # reported cost is honest.
            return self._prediction_fallback(plan, listeners, state, started)
        elapsed = time.perf_counter() - started
        degraded = (
            reason == TERMINATED_DEADLINE or not state.is_terminated
        )
        result = self.assemble_result(
            state, plan.algorithm, elapsed, degraded=degraded
        )
        for listener in all_listeners:
            if isinstance(listener, TraceListener):
                result.trace = list(listener.records)
                break
        for listener in all_listeners:
            listener.on_termination(state, result, reason)
        return result

    def _prediction_fallback(
        self,
        plan: QueryPlan,
        listeners: Sequence[ExecutionListener],
        abandoned: QueryState,
        started: float,
    ) -> TopKResult:
        """Re-execute without the prediction and merge the wasted work.

        The abandoned run's sorted/random accesses, rounds, retries and
        simulated waits are added to the fallback result's stats (they
        were really performed), wall time spans both runs, and
        ``prediction_fallback`` is bumped so callers — and the
        adversarial safety suite — can observe that the fallback fired.
        """
        result = self.execute(
            plan.replace(predicted_threshold=None), listeners
        )
        stats = result.stats
        stats.sorted_accesses += abandoned.meter.sorted_accesses
        stats.random_accesses += abandoned.meter.random_accesses
        stats.cost += abandoned.meter.cost
        stats.rounds += abandoned.round_no
        stats.peak_queue_size = max(
            stats.peak_queue_size, abandoned.pool.peak_size
        )
        stats.wall_time_seconds = time.perf_counter() - started
        if abandoned.retry is not None:
            stats.retries += abandoned.retry.retries
            stats.simulated_io_wait_ms += abandoned.retry.waited_ms
        stats.prediction_drops += abandoned.prediction_drops
        stats.prediction_fallback += 1
        return result

    def _run_rounds(
        self,
        plan: QueryPlan,
        state: QueryState,
        sa_policy: SAPolicy,
        ra_policy: RAPolicy,
        listeners: Tuple[ExecutionListener, ...],
        started: float,
    ) -> str:
        """The round loop; returns the termination reason."""
        while True:
            reason = self.check_termination(
                state, plan.deadline, time.perf_counter() - started
            )
            if reason is not None:
                return reason
            for listener in listeners:
                listener.on_round_start(state)
            progressed = self.sorted_round(state, sa_policy, ra_policy)
            if self.random_round(state, ra_policy):
                progressed = True
            self.prune(state, plan.prune_epsilon)
            self.prediction_prune(state)
            if not progressed:
                # Policy refused both access kinds while work remains; fall
                # back to a round-robin SA round to guarantee progress.
                if state.exhausted:
                    return TERMINATED_EXHAUSTED
                state.perform_sorted_round(_round_robin_fallback(state))
            if listeners:
                trace = self.snapshot(state)
                for listener in listeners:
                    listener.on_round_end(state, trace)
            if state.round_no > self.max_rounds:  # pragma: no cover - guard
                raise RuntimeError("engine exceeded max_rounds; likely a bug")

    # ------------------------------------------------------------------
    # Named phases
    # ------------------------------------------------------------------
    def check_termination(
        self,
        state: QueryState,
        deadline: Optional[QueryDeadline],
        elapsed_seconds: float,
    ) -> Optional[str]:
        """Stop test: threshold termination first, then the deadline."""
        if state.is_terminated:
            return TERMINATED_THRESHOLD
        if deadline is not None and deadline.exceeded(
            elapsed_seconds, state.meter.cost
        ):
            return TERMINATED_DEADLINE
        return None

    def sorted_round(
        self,
        state: QueryState,
        sa_policy: SAPolicy,
        ra_policy: RAPolicy,
    ) -> bool:
        """One batch of sorted accesses, if the RA policy allows it."""
        if state.exhausted or not ra_policy.wants_sorted_access(state):
            return False
        allocation = sa_policy.allocate(state, state.batch_blocks)
        if not any(blocks > 0 for blocks in allocation):
            return False
        state.perform_sorted_round(allocation)
        return True

    def random_round(self, state: QueryState, ra_policy: RAPolicy) -> bool:
        """The RA policy's probe hook; True when probes were issued."""
        ra_before = state.meter.random_accesses
        try:
            ra_policy.after_round(state)
        except DegradedExecution:
            # A list went unavailable mid-probing; the failure is
            # recorded in state.failed_dims — keep going with the
            # remaining lists and report a degraded result.
            pass
        if state.meter.random_accesses != ra_before:
            state.recompute()
            return True
        return False

    def prune(self, state: QueryState, epsilon: float) -> int:
        """Probabilistic candidate pruning; returns dropped count."""
        if epsilon <= 0.0:
            return 0
        dropped = state.probabilistic_prune(epsilon)
        if dropped:
            state.recompute()
        return dropped

    def prediction_prune(self, state: QueryState) -> int:
        """Prediction-driven pruning phase; returns dropped count.

        Delegates to :meth:`QueryState.prediction_prune` — candidates are
        dropped against the plan-time predicted threshold, with every
        drop recorded for the termination-time safety certificate.
        """
        if state.predicted_threshold is None:
            return 0
        return state.prediction_prune()

    # ------------------------------------------------------------------
    # Observation and result assembly
    # ------------------------------------------------------------------
    @staticmethod
    def snapshot(state: QueryState) -> RoundTrace:
        """A :class:`RoundTrace` of the state after the current round."""
        return RoundTrace(
            round_no=state.round_no,
            allocation=tuple(state.last_allocation),
            positions=tuple(state.positions),
            highs=tuple(state.highs),
            min_k=state.min_k,
            unseen_bestscore=state.pool.unseen_bestscore,
            queue_size=state.pool.queue_size(),
            sorted_accesses=state.meter.sorted_accesses,
            random_accesses=state.meter.random_accesses,
            bookkeeping=state.pool.mode,
        )

    @staticmethod
    def assemble_result(
        state: QueryState,
        algorithm: str,
        wall_time: float,
        degraded: bool = False,
    ) -> TopKResult:
        """Build the :class:`TopKResult` from the final bookkeeping."""
        # Documents whose aggregated lower bound is 0 carry no evidence of
        # a match and are indistinguishable from unseen documents — they
        # are never returned (FullMerge applies the same rule).
        state._note_cursor_failures()
        top = state.pool.topk_candidates()
        items = [
            RankedItem(
                doc_id=c.doc_id,
                worstscore=c.worstscore,
                bestscore=state.pool.bestscore(c),
            )
            for c in top
            if c.worstscore > 0.0
        ]
        stats = QueryStats.from_meter(
            state.meter,
            rounds=state.round_no,
            peak_queue_size=state.pool.peak_size,
            wall_time_seconds=wall_time,
            retries=state.retry.retries if state.retry else 0,
            simulated_io_wait_ms=state.retry.waited_ms if state.retry else 0.0,
            prediction_drops=state.prediction_drops,
        )
        is_degraded = degraded or bool(state.failed_dims)
        reason = None
        if is_degraded:
            # Primary-cause priority: a dead list outranks the deadline
            # (losing data is the more severe event; the deadline is the
            # only other way a single-node query degrades).
            reason = (
                DEGRADE_DEAD_LIST if state.failed_dims else DEGRADE_DEADLINE
            )
        return TopKResult(
            items=items,
            stats=stats,
            algorithm=algorithm,
            degraded=is_degraded,
            exhausted_lists=[
                state.terms[d] for d in sorted(state.failed_dims)
            ],
            degrade_reason=reason,
        )


class TopKEngine(QueryExecutor):
    """Backwards-compatible façade over :class:`QueryExecutor`.

    Kept for API stability: pre-refactor code (and the golden parity
    tests) drive the engine with explicit policy instances via
    :meth:`run`.  New code should build a
    :class:`~repro.core.planner.QueryPlan` and call :meth:`execute`, or
    go through :class:`repro.core.session.QuerySession`.
    """

    def run(
        self,
        terms: Sequence[str],
        k: int,
        sa_policy: SAPolicy,
        ra_policy: RAPolicy,
        algorithm_name: str = "",
        weights: Optional[Sequence[float]] = None,
        trace: bool = False,
        prune_epsilon: float = 0.0,
        deadline: Optional[QueryDeadline] = None,
    ) -> TopKResult:
        """Execute one top-k query with pre-built policy instances.

        ``trace=True`` attaches a :class:`TraceListener` for the duration
        of the call, so the result carries one :class:`RoundTrace` per
        processing round — the programmatic version of the paper's
        Fig. 1.  The policy instances are used as-is (single-shot: they
        carry per-query state), which is why this wrapper exists beside
        the factory-based :class:`~repro.core.planner.QueryPlan` path.
        """
        name = algorithm_name or "%s-%s" % (sa_policy.name, ra_policy.name)
        plan = QueryPlan(
            algorithm=name,
            terms=tuple(terms),
            k=int(k),
            weights=None if weights is None else tuple(weights),
            prune_epsilon=float(prune_epsilon),
            deadline=deadline,
            sa_factory=lambda: sa_policy,
            ra_factory=lambda: ra_policy,
        )
        listeners: Tuple[ExecutionListener, ...] = (
            (TraceListener(),) if trace else ()
        )
        return self.execute(plan, listeners=listeners)


def _round_robin_fallback(state: QueryState) -> List[int]:
    """One block for each non-exhausted list (progress guarantee)."""
    return [0 if cursor.exhausted else 1 for cursor in state.cursors]
