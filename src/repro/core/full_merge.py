"""FullMerge baseline: scan every query list completely, then sort.

The paper uses a full merge of the index lists followed by a partial sort as
its DBMS-style baseline (Sec. 6.1).  Its access cost is simply the sum of
the list lengths (every entry is read by sorted access, no random accesses),
but thanks to trivial bookkeeping it is a tough *runtime* competitor — which
our implementation mirrors by aggregating with vectorized numpy operations.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..storage.block_index import InvertedBlockIndex
from ..storage.diskmodel import AccessMeter, CostModel
from .results import QueryStats, RankedItem, TopKResult
from .selection import topk_indices


def full_merge(
    index: InvertedBlockIndex,
    terms: Sequence[str],
    k: int,
    cost_model: CostModel = None,
    weights: Sequence[float] = None,
) -> TopKResult:
    """Aggregate all postings of the query lists and return the top-k.

    ``weights`` (one positive factor per term) select the paper's monotone
    weighted summation; default is plain summation.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not terms:
        raise ValueError("a query needs at least one term")
    if weights is None:
        weights = [1.0] * len(terms)
    if len(weights) != len(terms):
        raise ValueError("weights must match the number of query terms")
    started = time.perf_counter()
    cost_model = cost_model if cost_model is not None else CostModel()
    meter = AccessMeter(cost_model=cost_model)

    lists = index.lists_for(terms)
    doc_parts = []
    score_parts = []
    for index_list, weight in zip(lists, weights):
        meter.charge_sorted(len(index_list))
        doc_parts.append(index_list.doc_ids_by_rank)
        score_parts.append(index_list.scores_by_rank * float(weight))
    if not doc_parts:
        return TopKResult(algorithm="FullMerge")
    all_docs = np.concatenate(doc_parts)
    all_scores = np.concatenate(score_parts)

    unique_docs, inverse = np.unique(all_docs, return_inverse=True)
    totals = np.bincount(inverse, weights=all_scores)

    # Documents with aggregated score 0 carry no evidence of a match; the
    # TA-family engine never surfaces them (they are indistinguishable from
    # unseen documents), so the baseline excludes them for consistency.
    positive = totals > 0.0
    unique_docs = unique_docs[positive]
    totals = totals[positive]

    take = min(k, unique_docs.size)
    if take == 0:
        elapsed = time.perf_counter() - started
        stats = QueryStats.from_meter(
            meter, rounds=1, wall_time_seconds=elapsed
        )
        return TopKResult(items=[], stats=stats, algorithm="FullMerge")
    # Partial selection for the top-k with the engine's exact tie-break
    # (score descending, doc id ascending on ties) applied already at the
    # selection boundary, not just within the selected set.
    top_idx = topk_indices(totals, unique_docs, take)

    items = [
        RankedItem(
            doc_id=int(unique_docs[i]),
            worstscore=float(totals[i]),
            bestscore=float(totals[i]),
        )
        for i in top_idx
    ]
    elapsed = time.perf_counter() - started
    stats = QueryStats.from_meter(meter, rounds=1, wall_time_seconds=elapsed)
    return TopKResult(items=items, stats=stats, algorithm="FullMerge")
