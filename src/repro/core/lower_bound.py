"""Per-query lower bound for TA-family algorithms (paper Sec. 2.5).

Any correct top-k method that stops its sorted accesses at depths
``(d_1, ..., d_m)`` must (a) have encountered every definitive top-k
document, (b) have pushed the unseen-document bound ``sum_i high_i(d_i)``
down to the final ``min-k`` (otherwise an adversary could hide a better
document below the scan positions), and (c) perform at least one random
access for every *seen but unresolved* document whose bestscore at those
depths still exceeds the final ``min-k`` — such a document can never be
pruned by the threshold test alone.  The method's cost is therefore at
least

    min over (d_1..d_m)  of  [ sum_i d_i  +  (cR/cS) * |X(d_1..d_m)| ]

with ``X`` the set from (c) and, like the paper, depths restricted to block
boundaries.

Enumerating every block-boundary combination is infeasible in Python for
long lists, so we enumerate *cells* of a coarsened per-list depth grid and
lower-bound the cost over each whole cell, exploiting monotonicity:

* the SA cost of any depth in cell ``[g_t, g_{t+1})`` is at least ``g_t``
  (shallow corner);
* a document counts toward the cell's RA bound only if it is in ``X`` for
  *every* depth combination in the cell — it must be seen already at the
  shallow corner (seen-sets grow with depth), still unresolved at the deep
  corner, and its bestscore at the deep corner (bestscores shrink with
  depth) must still exceed ``min-k``;
* the cell is feasible if its deep corner can satisfy the unseen-bound and
  top-k-seen constraints (the easiest point of the cell).

The minimum of these cell bounds is a valid lower bound for *all*
block-boundary schedules; coarsening can only make it smaller (safer), and
with the grid at full block granularity it is exact.  Because the bound's
tightness depends on where the (geometric) grid boundaries happen to fall,
the computer evaluates several grid resolutions and reports the **maximum**
of their bounds — each is valid on its own, so the maximum is too.

The computation is an offline analysis tool, not a query algorithm: it may
read exact scores.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

_TOL = 1e-9


class _GridBound:
    """Cell data and enumeration for one per-list depth-grid resolution."""

    def __init__(
        self,
        lists,
        ranks: np.ndarray,
        scores: np.ndarray,
        weights: Sequence[float],
        max_depths_per_list: int,
        max_combinations: int,
    ) -> None:
        self.m = len(lists)
        self.max_combinations = max_combinations
        self._num_docs = ranks.shape[1]
        # Per-list cells: cell t spans block-boundary depths
        # [shallow[t], deep[t]] with deep[t] the last boundary before the
        # next grid point (for the final cell, the full list).
        self.shallow_depths: List[np.ndarray] = []
        self.deep_depths: List[np.ndarray] = []
        self.deep_highs: List[np.ndarray] = []
        self._seen_shallow: List[np.ndarray] = []
        self._seen_deep: List[np.ndarray] = []
        self._best_deep: List[np.ndarray] = []
        for i, lst in enumerate(lists):
            boundaries = _depth_grid(lst, max_depths_per_list)
            shallow = boundaries[:-1]
            deep = np.maximum(boundaries[1:] - lst.block_size, shallow)
            deep[-1] = boundaries[-1]  # final cell: exactly the full scan
            highs = np.array(
                [lst.score_at_rank(int(d)) * weights[i] for d in deep]
            )
            seen_shallow = ranks[i][None, :] < shallow[:, None]
            seen_deep = ranks[i][None, :] < deep[:, None]
            best_deep = np.where(
                seen_deep, scores[i][None, :], highs[:, None]
            )
            self.shallow_depths.append(shallow)
            self.deep_depths.append(deep)
            self.deep_highs.append(highs)
            self._seen_shallow.append(seen_shallow)
            self._seen_deep.append(seen_deep)
            self._best_deep.append(best_deep.astype(np.float32))

    # ------------------------------------------------------------------
    def _cell_groups(self) -> List[List[Tuple[int, int]]]:
        """Per-list cell groupings whose combination count fits the cap.

        Merging adjacent cells keeps the bound valid (a merged cell's
        shallow corner under-counts SA, its deep corner under-counts X for
        every depth inside), it only loosens it.  The budget of cells goes
        to the longest lists first — the ones whose scan depth actually
        moves the optimum.
        """
        sizes = [len(s) for s in self.shallow_depths]
        counts = [1] * self.m
        order = sorted(
            range(self.m), key=lambda i: -int(self.deep_depths[i][-1])
        )
        # Greedily grant one more cell to the longest list whose increment
        # keeps the total combination count within budget.
        progressed = True
        while progressed:
            progressed = False
            for i in order:
                if counts[i] >= sizes[i]:
                    continue
                product = 1
                for j in range(self.m):
                    product *= counts[j] + (1 if j == i else 0)
                if product <= self.max_combinations:
                    counts[i] += 1
                    progressed = True
        groups: List[List[Tuple[int, int]]] = []
        for i in range(self.m):
            edges = np.unique(
                np.linspace(0, sizes[i], counts[i] + 1).astype(int)
            )
            groups.append(
                [(int(edges[g]), int(edges[g + 1] - 1))
                 for g in range(len(edges) - 1)]
            )
        return groups

    # ------------------------------------------------------------------
    def enumerate_bound(
        self,
        min_k: float,
        required: np.ndarray,
        not_topk: np.ndarray,
        ratio: float,
    ) -> float:
        """Exact minimum of the cell bounds over this grid."""
        groups = self._cell_groups()
        m = self.m
        # Minimal achievable high-sum from lists i.. onward, to prune
        # subtrees that can never satisfy the unseen-bound constraint.
        min_high_suffix = np.zeros(m + 1)
        for i in range(m - 1, -1, -1):
            min_high_suffix[i] = min_high_suffix[i + 1] + float(
                self.deep_highs[i].min()
            )
        best = [float("inf")]
        num_docs = self._num_docs
        zeros_f = np.zeros(num_docs, dtype=np.float32)
        false_b = np.zeros(num_docs, dtype=bool)

        def recurse(i, best_vec, seen_shallow, seen_deep_all, req_seen,
                    high_sum, sa_cost):
            if high_sum + min_high_suffix[i] > min_k + _TOL:
                return
            if sa_cost >= best[0]:
                return
            if i == m:
                if required.size and not req_seen.all():
                    return
                in_x = (
                    seen_shallow
                    & ~seen_deep_all
                    & not_topk
                    & (best_vec > min_k + _TOL)
                )
                cost = sa_cost + ratio * int(np.count_nonzero(in_x))
                if cost < best[0]:
                    best[0] = cost
                return
            for lo, hi in groups[i]:
                recurse(
                    i + 1,
                    best_vec + self._best_deep[i][hi],
                    seen_shallow | self._seen_shallow[i][lo],
                    seen_deep_all & self._seen_deep[i][hi],
                    req_seen | self._seen_deep[i][hi][required],
                    high_sum + float(self.deep_highs[i][hi]),
                    sa_cost + int(self.shallow_depths[i][lo]),
                )

        recurse(
            0, zeros_f, false_b.copy(), ~false_b,
            np.zeros(required.size, dtype=bool), 0.0, 0,
        )
        return best[0]


class LowerBoundComputer:
    """Reusable lower-bound evaluator for one (index, query) pair.

    Building the rank/score matrices is the expensive part and is shared
    across different values of ``k``, different cost ratios, and the
    several grid resolutions whose bounds are combined.
    """

    def __init__(
        self,
        index,
        terms: Sequence[str],
        max_depths_per_list: int = 12,
        max_combinations: int = 6000,
        weights: Sequence[float] = None,
        grid_resolutions: Sequence[int] = None,
    ) -> None:
        if max_depths_per_list < 2:
            raise ValueError("need at least the empty and the full depth")
        self.terms = list(terms)
        lists = index.lists_for(self.terms)
        self.m = len(lists)
        self.max_combinations = max_combinations
        if weights is None:
            weights = [1.0] * self.m
        if len(weights) != self.m:
            raise ValueError("weights must match the number of query terms")
        self.weights = [float(w) for w in weights]

        union = np.unique(
            np.concatenate([lst.doc_ids_by_rank for lst in lists])
        )
        self._num_docs = union.size
        ranks = np.empty((self.m, union.size), dtype=np.int64)
        scores = np.zeros((self.m, union.size), dtype=np.float64)
        for i, lst in enumerate(lists):
            ranks[i, :] = len(lst)  # "absent": never reached by any depth
            idx = np.searchsorted(union, lst.doc_ids_by_rank)
            ranks[i, idx] = np.arange(len(lst))
            scores[i, idx] = lst.scores_by_rank * self.weights[i]
        self.totals = scores.sum(axis=0)

        if grid_resolutions is None:
            grid_resolutions = (max_depths_per_list,
                                max_depths_per_list * 2 - 4)
        self._grids = [
            _GridBound(lists, ranks, scores, self.weights, resolution,
                       max_combinations)
            for resolution in sorted(set(grid_resolutions))
        ]
        self._cache: Dict[Tuple[int, float], float] = {}

    # Backwards-compatible views onto the primary grid.
    @property
    def shallow_depths(self) -> List[np.ndarray]:
        return self._grids[0].shallow_depths

    @property
    def deep_depths(self) -> List[np.ndarray]:
        return self._grids[0].deep_depths

    def _cell_groups(self) -> List[List[Tuple[int, int]]]:
        return self._grids[0]._cell_groups()

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def cost_for_k(self, k: int, cost_ratio: float) -> float:
        """Lower bound on COST = #SA + ratio * #RA for a top-``k`` query.

        Reports the maximum over the configured grid resolutions: every
        grid's cell bound is valid on its own, so the maximum is the
        tightest statement this computer can make.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        key = (int(k), float(cost_ratio))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        take = min(k, self._num_docs)
        if take == 0:
            return 0.0
        min_k = float(np.partition(self.totals, -take)[-take])
        # Docs that *must* be found by sorted access (definitive top-k) and
        # docs excluded from X because they may legitimately end up in the
        # returned top-k (score >= min-k, ties included, conservatively).
        required = np.flatnonzero(self.totals > min_k + _TOL)
        not_topk = self.totals < min_k - _TOL

        cost = max(
            grid.enumerate_bound(min_k, required, not_topk, cost_ratio)
            for grid in self._grids
        )
        self._cache[key] = cost
        return cost


def _depth_grid(index_list, max_depths: int) -> np.ndarray:
    """Block-boundary scan depths, geometrically subsampled.

    Always contains depth 0 and the full list; intermediate boundaries are
    geometrically spaced because shallow depths matter most (SA cost grows
    linearly while |X| shrinks fastest near the top of the lists).
    """
    blocks = index_list.num_blocks
    size = index_list.block_size
    length = len(index_list)
    if blocks <= max_depths - 1:
        boundaries = list(range(blocks))
    else:
        raw = np.geomspace(1, blocks, max_depths - 1)
        boundaries = sorted({0} | {int(round(b)) for b in raw} - {blocks})
    depths = [min(b * size, length) for b in boundaries]
    depths.append(length)
    return np.array(sorted(set(depths)), dtype=np.int64)
