"""Query planning: one immutable, validated description of a query.

The planner layer turns a user request — terms, ``k``, an algorithm name,
optional weights/deadline/pruning — into a :class:`QueryPlan` *before*
anything touches the index.  A plan captures every decision that shapes
the execution:

* the **resolved algorithm triple** (aliases like ``TA`` already mapped to
  their canonical ``SA-RA-ordering`` name, e.g. ``RR-All``),
* the query shape (terms, ``k``, per-term aggregation weights),
* execution limits (:class:`~repro.core.executor.QueryDeadline`,
  ``prune_epsilon`` for approximate processing),
* the cost environment (:class:`~repro.storage.diskmodel.CostModel`,
  scan batch size).

Plans are produced by :func:`repro.core.algorithms.plan` (which fills in
the policy factories from the registry) or by
:meth:`repro.core.session.QuerySession.plan`, and consumed by
:class:`repro.core.executor.QueryExecutor`.  A plan is reusable: every
:meth:`QueryPlan.make_policies` call returns *fresh* policy instances, so
one plan can drive many executions (policies carry per-query state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from ..storage.diskmodel import CostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..stats.catalog import StatsCatalog
    from ..stats.threshold import PredictedThreshold
    from .engine import RAPolicy, SAPolicy
    from .executor import QueryDeadline


@dataclass(frozen=True)
class QueryPlan:
    """Validated, immutable execution plan for one top-k query.

    ``cost_model`` and ``batch_blocks`` are optional overrides: when left
    ``None`` the executor's own defaults apply, which lets one executor
    serve plans at different cost ratios (the benchmark harness relies on
    this to share statistics across cR/cS settings).

    ``sa_factory`` / ``ra_factory`` build the scheduling policies.  They
    are resolved eagerly by :func:`repro.core.algorithms.plan`; when a
    plan is constructed directly with factories left ``None``,
    :meth:`make_policies` falls back to resolving ``algorithm`` through
    the registry.

    ``predicted_threshold`` is an optional plan-time
    :class:`~repro.stats.threshold.PredictedThreshold` (attached by
    :func:`attach_threshold_prediction`): a pruning accelerator the
    executor uses to drop candidates early, guarded by a safety check
    that re-executes without the prediction whenever it proves too
    aggressive — so it shapes the access schedule, never the answer.

    Every engine-affecting field participates in equality and hashing —
    only the policy factories are excluded (two plans for the same
    algorithm are interchangeable regardless of which factory callables
    they hold).  This is load-bearing for plan-keyed caches: a plan with
    a prediction attached must never be conflated with the same query
    without one.
    """

    algorithm: str
    terms: Tuple[str, ...]
    k: int
    weights: Optional[Tuple[float, ...]] = None
    prune_epsilon: float = 0.0
    deadline: Optional["QueryDeadline"] = None
    cost_model: Optional[CostModel] = None
    batch_blocks: Optional[int] = None
    predicted_threshold: Optional["PredictedThreshold"] = None
    sa_factory: Optional[Callable[[], "SAPolicy"]] = field(
        default=None, repr=False, compare=False
    )
    ra_factory: Optional[Callable[[], "RAPolicy"]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("a query needs at least one term")
        if int(self.k) < 1:
            raise ValueError("k must be positive (got %r)" % (self.k,))
        if self.weights is not None:
            if len(self.weights) != len(self.terms):
                raise ValueError(
                    "weights must match the number of query terms"
                )
            if any(w <= 0 for w in self.weights):
                raise ValueError("weights must be positive (monotonicity)")
        if self.prune_epsilon < 0.0:
            raise ValueError("prune_epsilon must be non-negative")
        if (
            self.predicted_threshold is not None
            and self.predicted_threshold.value < 0.0
        ):
            raise ValueError("predicted threshold must be non-negative")

    @property
    def num_lists(self) -> int:
        return len(self.terms)

    def make_policies(self) -> Tuple["SAPolicy", "RAPolicy"]:
        """Fresh per-execution policy instances for this plan."""
        if self.sa_factory is not None and self.ra_factory is not None:
            return self.sa_factory(), self.ra_factory()
        from .algorithms import make_policies

        sa_policy, ra_policy, _ = make_policies(self.algorithm)
        return sa_policy, ra_policy

    def replace(self, **changes: object) -> "QueryPlan":
        """A copy of this plan with the given fields replaced."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


def attach_threshold_prediction(
    plan: QueryPlan,
    catalog: "StatsCatalog",
    predictor: Optional[Callable] = None,
    **estimator_kwargs: object,
) -> QueryPlan:
    """Plan-time hook: attach a predicted top-k threshold to a plan.

    ``predictor`` is any callable with the signature of
    :func:`repro.stats.threshold.predict_threshold` (the default) —
    ``(catalog, terms, k, weights=...) -> Optional[PredictedThreshold]``
    — which is also the injection point the adversarial safety suite
    uses.  Returns the plan unchanged when it already carries a
    prediction or when the predictor declines (returns ``None``);
    otherwise a new plan with ``predicted_threshold`` set.
    """
    if plan.predicted_threshold is not None:
        return plan
    if predictor is None:
        from ..stats.threshold import predict_threshold as predictor
    predicted = predictor(
        catalog, plan.terms, plan.k, weights=plan.weights, **estimator_kwargs
    )
    if predicted is None:
        return plan
    return plan.replace(predicted_threshold=predicted)
