"""Random-access scheduling policies and orderings (paper Sec. 5)."""

from .ben import BenProbe
from .last import LastProbe, PickProbe
from .ordering import (
    BenOrdering,
    BestOrdering,
    RAOrdering,
    expected_wasted_ra_cost,
    final_probe_phase,
)
from .simple import AllProbe, EachProbe, NeverProbe, TopProbe

__all__ = [
    "AllProbe",
    "BenOrdering",
    "BenProbe",
    "BestOrdering",
    "EachProbe",
    "LastProbe",
    "NeverProbe",
    "PickProbe",
    "RAOrdering",
    "TopProbe",
    "expected_wasted_ra_cost",
    "final_probe_phase",
]
