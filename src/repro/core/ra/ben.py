"""Ben-Probing (paper Sec. 5.2): cost-model-driven switch and ordering.

Ben-Probing replaces Last-Probing's balanced-cost switch with *expected
wasted costs* (EWC) — the expected cost of accesses an optimal schedule
would not have made:

* ``EWC_RA(d) = |E(d)| * (1 - p(d)) * cR/cS`` — probing candidate ``d`` is
  wasted unless it ends up in the top-k (probability ``p(d)``, combining the
  score predictor, selectivities and correlations of Sec. 3).
* ``EWC_SA(batch) = (b/|Q|) * sum_{d in Q} (1 - q_b(d) * p_s(d))`` — a
  sorted-access batch is wasted for ``d`` if it neither encounters ``d``
  (probability ``q_b(d)``) nor ``d`` makes the top-k.

The policy performs SA batches while the cumulated ``EWC_SA`` is still below
the total ``EWC_RA`` of the queue; once random accesses become the less
wasteful option it probes the whole queue in ascending ``EWC_RA`` order
(most promising candidates first), each candidate's lists in ascending
selectivity, stopping early whenever a candidate drops under the threshold.
"""

from __future__ import annotations

from ..engine import QueryState, RAPolicy
from .last import LastProbe, _all_results_seen, _residual_scan_volume
from .ordering import BenOrdering, expected_wasted_ra_cost, final_probe_phase


class BenProbe(RAPolicy):
    """Last-style probing governed by the EWC cost model."""

    name = "Ben"

    def __init__(self) -> None:
        self.ordering = BenOrdering()
        self._switched = False
        self._cumulative_sa_ewc = 0.0

    def wants_sorted_access(self, state: QueryState) -> bool:
        return not self._switched

    def after_round(self, state: QueryState) -> None:
        if self._switched:
            return
        self._cumulative_sa_ewc += self._batch_sa_ewc(state)
        if not _all_results_seen(state):
            return
        total_ra_ewc = sum(
            expected_wasted_ra_cost(state, cand)
            for cand in state.pool.queue()
        )
        if total_ra_ewc > self._cumulative_sa_ewc:
            return
        # Same rationality guard as Last-Probing: a probe phase costlier
        # than scanning the remaining list volume cannot pay off.
        estimated = LastProbe.estimate_remaining_probes(state)
        if estimated * state.cost_model.ratio > _residual_scan_volume(state):
            return
        self._switched = True
        final_probe_phase(state, self.ordering)

    # ------------------------------------------------------------------
    # EWC of the sorted-access batch just performed
    # ------------------------------------------------------------------
    def _batch_sa_ewc(self, state: QueryState) -> float:
        batch = sum(state.last_allocation)
        if batch <= 0:
            return 0.0
        queue = state.pool.queue()
        if not queue:
            # No candidates to benefit: the whole batch counts as wasted.
            return float(batch)
        predictor = state.predictor
        min_k = state.min_k
        full_mask = state.pool.full_mask
        positions = state.positions
        wasted = 0.0
        for cand in queue:
            remainder = full_mask & ~cand.seen_mask
            # q_b(d): chance of meeting d in at least one list of this batch.
            miss_all = 1.0
            for dim in range(state.num_lists):
                if not remainder >> dim & 1:
                    continue
                entries = state.last_allocation[dim]
                if entries <= 0:
                    continue
                before = max(
                    state.list_lengths[dim] - (positions[dim] - entries), 1
                )
                reach = min(entries / before, 1.0)
                occurrence = predictor.remainder_occurrence(
                    dim, cand.seen_mask
                )
                miss_all *= 1.0 - reach * occurrence
            q_batch = 1.0 - miss_all
            p_score = predictor.score_exceedance(
                remainder, min_k - cand.worstscore
            )
            wasted += 1.0 - q_batch * p_score
        return batch * wasted / len(queue)
