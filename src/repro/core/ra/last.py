"""Last-Probing (paper Sec. 5.1) and the Pick baseline.

Both run a pure-SA phase followed by a pure-RA phase; they differ in the
switch criterion:

* **Pick** [Bruno et al.] switches as soon as every potential result has
  been *seen*, i.e. when the bestscore of an unseen document drops to the
  ``min-k`` threshold.  That tends to switch far too early and probe huge
  queues.
* **Last-Probing** additionally requires that the *estimated* number of
  remaining random accesses is cheap enough to balance the sorted-access
  cost spent so far (``est_RA * cR <= #SA * cS``).  The estimate is the
  Poisson/incomplete-gamma estimator of Sec. 5.1, which is dramatically
  sharper than "every queued candidate needs a lookup" for flat score
  distributions like BM25.
"""

from __future__ import annotations

import numpy as np

from ...stats.poisson import estimate_remaining_random_accesses
from ..bookkeeping import EPSILON
from ..engine import QueryState, RAPolicy
from .ordering import BestOrdering, RAOrdering, final_probe_phase


class PickProbe(RAPolicy):
    """Pick: switch to the RA phase once nothing relevant remains unseen."""

    name = "Pick"

    def __init__(self, ordering: RAOrdering = None) -> None:
        self.ordering = ordering if ordering is not None else BestOrdering()
        self._switched = False

    def wants_sorted_access(self, state: QueryState) -> bool:
        return not self._switched

    def after_round(self, state: QueryState) -> None:
        if self._switched:
            return
        if not _all_results_seen(state):
            return
        self._switched = True
        final_probe_phase(state, self.ordering)


class LastProbe(RAPolicy):
    """Last-Probing with the Poisson estimate of remaining lookups."""

    name = "Last"

    def __init__(self, ordering: RAOrdering = None) -> None:
        self.ordering = ordering if ordering is not None else BestOrdering()
        self._switched = False

    def wants_sorted_access(self, state: QueryState) -> bool:
        return not self._switched

    def after_round(self, state: QueryState) -> None:
        if self._switched:
            return
        # First criterion: all potential top-k items have been encountered.
        # (The paper notes this is typically satisfied long before the cost
        # criterion.)
        if not _all_results_seen(state):
            return
        # Second criterion: estimated RA cost balances the SA cost so far.
        estimated = self.estimate_remaining_probes(state)
        ratio = state.cost_model.ratio
        if estimated * ratio > state.meter.sorted_accesses:
            return
        # Rationality guard: stopping the scans can save at most the cost
        # of the unscanned remainder, so a probe phase more expensive than
        # that residual volume can never pay off (bites at very high
        # cR/cS, where the paper also finds NRA-like behaviour optimal).
        if estimated * ratio > _residual_scan_volume(state):
            return
        self._switched = True
        final_probe_phase(state, self.ordering)

    @staticmethod
    def estimate_remaining_probes(state: QueryState) -> float:
        """Sec. 5.1 estimate of the random accesses a stop-now would need."""
        queue = state.pool.queue()
        if not queue:
            return 0.0
        predictor = state.predictor
        min_k = state.min_k
        full_mask = state.pool.full_mask
        bestscores = np.empty(len(queue))
        exceed_probs = np.empty(len(queue))
        missing_counts = np.empty(len(queue))
        for idx, cand in enumerate(queue):
            bestscores[idx] = state.pool.bestscore(cand)
            remainder = full_mask & ~cand.seen_mask
            # Combined probability P[F_d > min-k] of Sec. 3.3: the pure
            # score predictor assumes the document occurs in all remainder
            # lists and grossly overestimates competitors on long lists,
            # which would inflate the Poisson means and cause premature
            # switching; weighting by the occurrence probability q(d) fixes
            # the estimate.
            exceed_probs[idx] = predictor.qualify_probability(
                cand.seen_mask, cand.worstscore, min_k
            )
            missing_counts[idx] = bin(remainder).count("1")
        return estimate_remaining_random_accesses(
            bestscores,
            exceed_probs,
            missing_counts,
            state.pool.topk_worstscores(),
            min_k,
        )


def _all_results_seen(state: QueryState) -> bool:
    """True when no unseen document can still reach the top-k."""
    if len(state.pool.topk_ids) < state.pool.k:
        return False
    return state.pool.unseen_bestscore <= state.min_k + EPSILON


def _residual_scan_volume(state: QueryState) -> float:
    """Sorted accesses left if the scans simply ran to exhaustion."""
    return float(
        sum(
            cursor.list_length - cursor.position
            for cursor in state.cursors
        )
    )
