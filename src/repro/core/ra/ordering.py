"""Random-access orderings and the shared final probing phase (Sec. 5).

Two orderings from the paper's taxonomy (Sec. 2.4.3):

* **Best** — probe candidates in descending bestscore order (used by CA,
  Upper, and Last-Best).
* **Ben** — probe candidates in ascending order of their expected wasted RA
  cost ``EWC_RA(d) = |E(d)| * (1 - p(d)) * cR/cS`` (Sec. 5.2), i.e. most
  promising candidates first.

The *final probing phase* shared by the Last-style policies resolves every
remaining candidate with random accesses: per candidate the missing
dimensions are probed in ascending list selectivity ``l_i / n``, the probe
sequence is broken off as soon as the candidate falls under the threshold,
and candidates promoted into the top-k evict the previous rank-k item (which
may in turn need further probes).  The threshold is maintained incrementally
with a min-heap, so the whole phase is linear in the number of probes plus
O(q log k) bookkeeping.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from ..bookkeeping import EPSILON, Candidate
from ..engine import QueryState


class RAOrdering:
    """Base class: permute the probe order of a batch of candidates."""

    name = "order"

    def order(self, state: QueryState, candidates: Sequence[Candidate]) -> List[Candidate]:
        raise NotImplementedError


class BestOrdering(RAOrdering):
    """Descending bestscore (the paper's *Best*)."""

    name = "Best"

    def order(self, state: QueryState, candidates: Sequence[Candidate]) -> List[Candidate]:
        pool = state.pool
        return sorted(
            candidates, key=lambda c: (-pool.bestscore(c), c.doc_id)
        )


class BenOrdering(RAOrdering):
    """Ascending expected wasted RA cost (the paper's *Ben*)."""

    name = "Ben"

    def order(self, state: QueryState, candidates: Sequence[Candidate]) -> List[Candidate]:
        keyed = [
            (expected_wasted_ra_cost(state, cand), cand.doc_id, cand)
            for cand in candidates
        ]
        keyed.sort(key=lambda item: (item[0], item[1]))
        return [cand for _, _, cand in keyed]


def expected_wasted_ra_cost(state: QueryState, cand: Candidate) -> float:
    """``EWC_RA(d) = |E(d)| * (1 - p(d)) * cR/cS`` (Sec. 5.2)."""
    missing = state.pool.missing_dims(cand)
    if not missing:
        return 0.0
    p_qualify = state.predictor.qualify_probability(
        cand.seen_mask, cand.worstscore, state.min_k
    )
    return len(missing) * (1.0 - p_qualify) * state.cost_model.ratio


def final_probe_phase(state: QueryState, ordering: RAOrdering) -> None:
    """Resolve all remaining candidates by random accesses (Last phase)."""
    pool = state.pool
    state.recompute()
    if len(pool.topk_ids) < pool.k:
        return  # cannot have a threshold yet; nothing sensible to probe

    # Incremental threshold: min-heap over the current top-k worstscores.
    heap = [
        (pool.candidates[d].worstscore, d) for d in pool.topk_ids
    ]
    heapq.heapify(heap)

    def current_min_k() -> float:
        return heap[0][0]

    pending = list(pool.queue())
    while pending:
        batch = ordering.order(state, pending)
        pending = []
        for cand in batch:
            min_k = current_min_k()
            if pool.bestscore(cand) <= min_k + EPSILON:
                pool.drop(cand.doc_id)
                continue
            dims = sorted(
                pool.missing_dims(cand), key=lambda i: state.list_lengths[i]
            )
            for dim in dims:
                state.probe(cand.doc_id, dim)
                if pool.bestscore(cand) <= current_min_k() + EPSILON:
                    break
            if pool.bestscore(cand) <= current_min_k() + EPSILON:
                pool.drop(cand.doc_id)
                continue
            # Fully resolved and above the threshold: promote into the
            # top-k; the evicted rank-k item may need probes of its own.
            evicted_worst, evicted_doc = heapq.heappushpop(
                heap, (cand.worstscore, cand.doc_id)
            )
            if evicted_doc == cand.doc_id:
                continue
            evicted = pool.candidates.get(evicted_doc)
            if evicted is None:
                continue
            if pool.bestscore(evicted) > current_min_k() + EPSILON:
                pending.append(evicted)
            else:
                pool.drop(evicted_doc)
    state.recompute()
