"""The classic RA scheduling policies: Never, All, Each, Top (Sec. 2.4.2).

These turn the engine into the textbook algorithms:

* ``RR + NeverProbe``  = NRA (no random accesses at all),
* ``RR + AllProbe``    = TA (every newly seen document is resolved at once),
* ``RR + EachProbe``   = CA (one RA per cR/cS sorted accesses, on the best
  candidate),
* ``RR + TopProbe``    = Upper (probe the best candidate while its bestscore
  exceeds what any unseen document could reach).
"""

from __future__ import annotations

import heapq
from typing import Optional

from ..bookkeeping import EPSILON, Candidate
from ..engine import QueryState, RAPolicy


class NeverProbe(RAPolicy):
    """NRA: sorted accesses only."""

    name = "Never"

    def after_round(self, state: QueryState) -> None:
        return


class AllProbe(RAPolicy):
    """TA: resolve every newly encountered document immediately.

    TA keeps no candidate queue — the price is one random access for every
    missing dimension of every document it meets, which is exactly the
    RA-heavy behaviour the paper measures (Sec. 6.1).
    """

    name = "All"

    def __init__(self) -> None:
        self._resolved = set()

    def after_round(self, state: QueryState) -> None:
        for doc_id in state.last_new_docs:
            if doc_id in self._resolved:
                continue
            self._resolved.add(doc_id)
            # A doc pruned during this round's bookkeeping before TA got
            # to resolve it is re-created; TA has no queue and would pay
            # the probes anyway (the dimension seen by sorted access is
            # re-fetched by one extra probe — a negligible, conservative
            # overcount).
            cand = state.pool.revive(doc_id)
            for dim in state.pool.missing_dims(cand):
                state.probe(doc_id, dim)


class EachProbe(RAPolicy):
    """CA: balance RA cost against SA cost continuously.

    After each round, the policy is allowed ``#SA / (cR/cS)`` random
    accesses in total; it spends the allowance one probe at a time on the
    unresolved candidate with the highest bestscore, choosing the most
    selective missing list first.
    """

    name = "Each"

    def after_round(self, state: QueryState) -> None:
        ratio = state.cost_model.ratio
        while (
            (state.meter.random_accesses + 1) * ratio
            <= state.meter.sorted_accesses
        ):
            cand = _best_unresolved(state)
            if cand is None:
                return
            dims = sorted(
                state.pool.missing_dims(cand),
                key=lambda i: state.list_lengths[i],
            )
            state.probe(cand.doc_id, dims[0])


class TopProbe(RAPolicy):
    """Upper: probe the top candidate while it beats every unseen document.

    As long as some candidate's bestscore exceeds both the threshold and the
    bestscore any yet-unseen document could reach, Upper performs a single
    random access on that candidate — on the missing list with the highest
    expected score contribution — before considering more sorted accesses.
    """

    name = "Top"

    def after_round(self, state: QueryState) -> None:
        pool = state.pool
        # Lazy max-heap over bestscores: highs are fixed within the hook,
        # so a candidate's bestscore only changes when we probe it — stale
        # heap entries are detected by re-computing the key on pop.
        heap = [
            (-pool.bestscore(cand), cand.doc_id)
            for cand in pool.unresolved()
        ]
        heapq.heapify(heap)
        probes = 0
        while heap:
            neg_best, doc_id = heapq.heappop(heap)
            cand = pool.candidates.get(doc_id)
            if cand is None or cand.seen_mask == pool.full_mask:
                continue
            current_best = pool.bestscore(cand)
            if current_best < -neg_best - EPSILON:
                heapq.heappush(heap, (-current_best, doc_id))
                continue
            bar = max(pool.unseen_bestscore, state.min_k) + EPSILON
            if current_best <= bar:
                break
            dim = self._most_promising_dim(state, cand)
            state.probe(cand.doc_id, dim)
            probes += 1
            if probes % 64 == 0:
                # Refresh min-k periodically; doing it per probe would make
                # the hook quadratic in the queue size.  A stale (lower)
                # min-k only makes Upper probe more, never miss results.
                state.recompute()
            if cand.seen_mask != pool.full_mask:
                heapq.heappush(heap, (-pool.bestscore(cand), doc_id))
        if probes:
            state.recompute()

    @staticmethod
    def _most_promising_dim(state: QueryState, cand: Candidate) -> int:
        """Missing dimension with the highest expected remaining score."""
        best_dim = -1
        best_mean = -1.0
        for dim in state.pool.missing_dims(cand):
            hist = state.histograms[dim]
            cursor = state.cursors[dim]
            mean = hist.mean_score_between(cursor.position, hist.total)
            if mean > best_mean:
                best_mean = mean
                best_dim = dim
        return best_dim


def _best_unresolved(state: QueryState) -> Optional[Candidate]:
    """The unresolved candidate with the highest bestscore, if any."""
    pool = state.pool
    best: Optional[Candidate] = None
    best_score = float("-inf")
    for cand in pool.unresolved():
        score = pool.bestscore(cand)
        if score > best_score or (
            score == best_score and best is not None and cand.doc_id < best.doc_id
        ):
            best = cand
            best_score = score
    return best
