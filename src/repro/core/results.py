"""Result and statistics containers returned by every query algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..storage.diskmodel import AccessMeter

#: Machine-readable causes for a degraded (anytime) result.  At most one
#: is reported per result — the *primary* cause, chosen by severity:
#: a failed shard outranks a failed list outranks an expired deadline
#: (callers that need the full detail still have ``exhausted_lists`` /
#: ``exhausted_shards``).  ``DEGRADE_SHED`` is assigned one level up, by
#: the serving layer, when the deadline that expired was not the
#: caller's but a tightened budget imposed by load shedding.
DEGRADE_DEADLINE = "deadline"
DEGRADE_DEAD_LIST = "dead_list"
DEGRADE_DEAD_SHARD = "dead_shard"
DEGRADE_SHED = "shed"

#: Every valid ``degrade_reason`` value.
DEGRADE_REASONS = (
    DEGRADE_DEADLINE,
    DEGRADE_DEAD_LIST,
    DEGRADE_DEAD_SHARD,
    DEGRADE_SHED,
)


@dataclass(frozen=True)
class RankedItem:
    """One result item with its score bounds at termination.

    TA-family algorithms may terminate with partially evaluated winners:
    ``worstscore`` (the guaranteed lower bound) is the ranking key, and
    ``bestscore`` the matching upper bound.  For fully evaluated items the
    two coincide and equal the item's exact aggregated score.
    """

    doc_id: int
    worstscore: float
    bestscore: float

    @property
    def resolved(self) -> bool:
        """True when the exact aggregated score is known."""
        return self.worstscore >= self.bestscore - 1e-12


@dataclass
class QueryStats:
    """Access counts and bookkeeping totals for one query execution.

    ``retries`` counts storage-fault retries performed by the accessors
    (their re-issued accesses are already included in the access counts
    and therefore in ``cost``); ``simulated_io_wait_ms`` is the
    accumulated exponential-backoff wait those retries would have slept
    on real hardware.  Both are 0 in fault-free execution.

    ``prediction_drops`` counts candidates dropped against a plan-time
    predicted threshold; ``prediction_fallback`` counts safety-fallback
    re-executions taken because a prediction proved too aggressive (the
    abandoned run's accesses are then already folded into the access
    counts and ``cost`` — honest accounting).  Both are 0 when the plan
    carried no prediction.
    """

    sorted_accesses: int = 0
    random_accesses: int = 0
    cost: float = 0.0
    rounds: int = 0
    peak_queue_size: int = 0
    wall_time_seconds: float = 0.0
    retries: int = 0
    simulated_io_wait_ms: float = 0.0
    prediction_drops: int = 0
    prediction_fallback: int = 0

    @classmethod
    def from_meter(
        cls,
        meter: AccessMeter,
        rounds: int = 0,
        peak_queue_size: int = 0,
        wall_time_seconds: float = 0.0,
        retries: int = 0,
        simulated_io_wait_ms: float = 0.0,
        prediction_drops: int = 0,
        prediction_fallback: int = 0,
    ) -> "QueryStats":
        return cls(
            sorted_accesses=meter.sorted_accesses,
            random_accesses=meter.random_accesses,
            cost=meter.cost,
            rounds=rounds,
            peak_queue_size=peak_queue_size,
            wall_time_seconds=wall_time_seconds,
            retries=retries,
            simulated_io_wait_ms=simulated_io_wait_ms,
            prediction_drops=prediction_drops,
            prediction_fallback=prediction_fallback,
        )


@dataclass(frozen=True)
class RoundTrace:
    """Snapshot of the engine state after one processing round.

    Collected when a query runs with ``trace=True`` — the programmatic
    equivalent of the paper's Fig. 1 walkthrough: scan positions, bounds,
    threshold, and queue pressure, round by round.
    """

    round_no: int
    allocation: Tuple[int, ...]          # sorted accesses per list
    positions: Tuple[int, ...]           # pos_i after the round
    highs: Tuple[float, ...]             # high_i after the round
    min_k: float                         # current threshold
    unseen_bestscore: float              # bound for never-seen documents
    queue_size: int                      # candidates outside the top-k
    sorted_accesses: int                 # cumulative #SA
    random_accesses: int                 # cumulative #RA
    #: bookkeeping mode that produced the round (columnar | incremental |
    #: reference); informational only — deliberately absent from
    #: ``__str__`` so trace strings stay mode-independent (cross-mode
    #: trace parity is part of the access-identity contract).
    bookkeeping: str = ""

    def __str__(self) -> str:
        return (
            "round %d: SA+%s pos=%s min-k=%.3f unseen<=%.3f queue=%d "
            "(#SA=%d #RA=%d)" % (
                self.round_no, list(self.allocation), list(self.positions),
                self.min_k, self.unseen_bestscore, self.queue_size,
                self.sorted_accesses, self.random_accesses,
            )
        )


@dataclass
class TopKResult:
    """Top-k answer plus the execution statistics that produced it.

    ``degraded`` marks an *anytime* answer: the engine stopped before the
    exact termination condition held — a deadline or cost budget expired,
    or a list was dropped after exhausting its retry budget (those lists
    are named in ``exhausted_lists``).  Every item still carries a
    correct ``[worstscore, bestscore]`` interval: dropped lists freeze
    their ``high_i`` contribution at the last value read, so the true
    aggregated score of every item lies inside its interval.

    ``degrade_reason`` is the machine-readable primary cause (one of
    :data:`DEGRADE_REASONS`) and is ``None`` exactly when ``degraded``
    is False.  ``exhausted_lists`` stays as the detailed report for
    compatibility — ``degrade_reason`` saves callers from inferring the
    cause out of it.
    """

    items: List[RankedItem] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    algorithm: str = ""
    trace: List[RoundTrace] = field(default_factory=list)
    degraded: bool = False
    exhausted_lists: List[str] = field(default_factory=list)
    degrade_reason: Optional[str] = None

    @property
    def doc_ids(self) -> List[int]:
        """Result doc ids in rank order."""
        return [item.doc_id for item in self.items]

    @property
    def min_k(self) -> float:
        """The final threshold (worstscore of the rank-k item); 0 if empty."""
        return self.items[-1].worstscore if self.items else 0.0

    def __len__(self) -> int:
        return len(self.items)
