"""Sorted-access scheduling policies (paper Sec. 4)."""

from .kba import KnapsackBenefitAggregation
from .knapsack import allocate_budget, delta_table
from .ksr import KnapsackScoreReduction
from .round_robin import RoundRobin

__all__ = [
    "KnapsackBenefitAggregation",
    "KnapsackScoreReduction",
    "RoundRobin",
    "allocate_budget",
    "delta_table",
]
