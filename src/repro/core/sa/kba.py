"""KBA — Knapsack for Benefit Aggregation (paper Sec. 4.2).

KBA refines KSR with an explicit per-candidate benefit: scanning ``b_i``
entries deeper into list ``i`` either *finds* a not-yet-seen candidate there
(raising its worstscore by the expected score ``mu(pos_i, b_i)``) or does
not (shrinking its bestscore by ``Delta_i(b_i)``):

    Ben_i(d, b_i) = q_i^{b_i}(d) * mu(pos_i, b_i) + (1 - q_i^{b_i}(d)) * Delta_i(b_i)

with ``q_i^{b_i}(d) = b_i / (l_i - pos_i) * P[X_i = 1 | E(d)]`` the
probability of encountering ``d`` within the next ``b_i`` entries, using the
correlation-aware occurrence estimate of Sec. 3.4.  The per-list totals
``Ben_i(b_i) = sum_d Ben_i(d, b_i)`` are separable, so the same exact
knapsack allocator applies.

Because ``q_i^{b_i}(d)`` factors into ``(b_i / (l_i - pos_i)) * c_d`` with a
per-candidate constant ``c_d``, the candidate sum collapses to two per-list
aggregates (the count ``w_i`` and the occurrence mass ``C_i = sum_d c_d``),
making each round's optimization O(m * batch^2) regardless of queue size.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from ..engine import QueryState, SAPolicy
from .knapsack import MemoizedAllocator, delta_table, prefer_round_robin
from .round_robin import RoundRobin


class KnapsackBenefitAggregation(SAPolicy):
    """The paper's KBA scheduler."""

    name = "KBA"

    def __init__(self) -> None:
        self._round_robin = RoundRobin()
        self._allocator = MemoizedAllocator()

    def allocate(self, state: QueryState, batch_blocks: int) -> List[int]:
        # Built from the cached unresolved() view, NOT from the pool's
        # maintained mask_counts: the occurrence-mass accumulation below
        # sums floats in this Counter's insertion order, and only the
        # first-seen-candidate order reproduces the reference sums
        # bit-for-bit.
        mask_counts = Counter(
            cand.seen_mask for cand in state.pool.unresolved()
        )
        if not mask_counts:
            return self._round_robin.allocate(state, batch_blocks)

        predictor = state.predictor
        gains: List[List[float]] = []
        for dim in range(state.num_lists):
            cursor = state.cursors[dim]
            max_blocks = min(cursor.blocks_remaining, batch_blocks)
            deltas = delta_table(state, dim, max_blocks)
            # Aggregate over candidates not seen in this list: the count w_i
            # and the occurrence mass C_i = sum of P[X_i = 1 | E(d)].
            weight = 0
            occurrence_mass = 0.0
            for mask, count in mask_counts.items():
                if mask >> dim & 1:
                    continue
                weight += count
                occurrence_mass += count * predictor.remainder_occurrence(
                    dim, mask
                )
            remaining = max(cursor.list_length - cursor.position, 1)
            hist = state.histograms[dim]
            row = [0.0]
            for x in range(1, max_blocks + 1):
                entries = min(x * state.block_size, remaining)
                fraction = min(entries / remaining, 1.0)
                mean_gain = hist.mean_score_between(
                    cursor.position, cursor.position + entries
                )
                found_mass = fraction * occurrence_mass
                row.append(
                    found_mass * mean_gain
                    + (weight - found_mass) * deltas[x]
                )
            gains.append(row)

        allocation = self._allocator.allocate(gains, batch_blocks)
        fallback = self._round_robin.allocate(state, batch_blocks)
        if not any(allocation):
            return fallback
        return prefer_round_robin(gains, allocation, fallback)
