"""Shared optimizer for the Knapsack-style SA schedulers (Sec. 4).

Both KSR and KBA maximize a *separable* objective: the benefit of scanning
``b_i`` further blocks into list ``i`` depends only on ``b_i``, and the total
benefit is the sum over lists, subject to ``sum b_i = B`` (the batch, in
blocks).  The paper notes the relation to the NP-hard knapsack problem and
solves small instances by exhaustive enumeration; for a separable objective
with an integral budget the textbook resource-allocation dynamic program is
exact and polynomial, so we use it — it checks the same space of
combinations implicitly, for any m.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Sequence, Tuple

import numpy as np


def allocate_budget(
    gains: Sequence[Sequence[float]], budget: int
) -> List[int]:
    """Maximize ``sum_i gains[i][b_i]`` subject to ``sum_i b_i = budget``.

    ``gains[i][x]`` is the benefit of giving ``x`` blocks to list ``i``;
    each row may be shorter than ``budget + 1`` when the list has fewer
    blocks remaining (its allocation is then capped at ``len(row) - 1``).
    Returns the optimal per-list allocation.  If the total capacity is below
    the budget, all capacity is allocated.

    Gains need not be monotone or concave; the DP is exact regardless.

    Ties are broken toward the *balanced* (round-robin-like) allocation:
    with flat or uninformative gains — uniform score distributions, or a
    depleted head where every marginal block looks alike — the knapsack
    schedulers then converge to round-robin instead of arbitrarily piling
    the whole batch onto one list (the convergence the paper observes in
    Sec. 6.4).
    """
    num_lists = len(gains)
    if num_lists == 0 or budget <= 0:
        return [0] * num_lists
    capacity = sum(len(row) - 1 for row in gains)
    budget = min(budget, capacity)
    if budget <= 0:
        return [0] * num_lists

    fair_share = budget / num_lists
    neg_inf = float("-inf")
    # dp[b] = best total gain using the lists processed so far with exactly
    # b blocks spent; choice[i][b] = blocks given to list i in that optimum.
    dp = [neg_inf] * (budget + 1)
    dp[0] = 0.0
    choices: List[List[int]] = []
    for row in gains:
        max_here = min(len(row) - 1, budget)
        new_dp = [neg_inf] * (budget + 1)
        choice = [0] * (budget + 1)
        for spent in range(budget + 1):
            best = neg_inf
            best_x = 0
            for x in range(min(max_here, spent) + 1):
                prev = dp[spent - x]
                if prev == neg_inf:
                    continue
                value = prev + row[x]
                better = value > best + 1e-12
                tied = abs(value - best) <= 1e-12 and abs(
                    x - fair_share
                ) < abs(best_x - fair_share)
                if better or tied:
                    best = max(value, best)
                    best_x = x
            new_dp[spent] = best
            choice[spent] = best_x
        dp = new_dp
        choices.append(choice)

    allocation = [0] * num_lists
    spent = budget
    for i in range(num_lists - 1, -1, -1):
        x = choices[i][spent]
        allocation[i] = x
        spent -= x
    return allocation


class MemoizedAllocator:
    """Cross-round memo for :func:`allocate_budget`.

    The knapsack DP is O(m · B²) per round, but its inputs repeat: once a
    list's histogram segment is flat or depleted its gain row stops
    changing, and late rounds often present the exact table of the
    previous round.  The memo key is the *exact* float contents of the
    gain tables plus the budget — rounding the key could merge two tables
    the tie-breaking DP resolves differently and silently change an
    allocation, so only verbatim repeats hit.  LRU-bounded; ``hits`` /
    ``misses`` expose cache efficiency to benchmarks and tests.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._memo: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def allocate(
        self, gains: Sequence[Sequence[float]], budget: int
    ) -> List[int]:
        """Exactly :func:`allocate_budget`, served from cache on repeats."""
        key = (tuple(tuple(row) for row in gains), int(budget))
        cached = self._memo.get(key)
        if cached is not None:
            self._memo.move_to_end(key)
            self.hits += 1
            return list(cached)
        self.misses += 1
        allocation = allocate_budget(gains, budget)
        self._memo[key] = list(allocation)
        if len(self._memo) > self.max_entries:
            self._memo.popitem(last=False)
        return allocation


def allocation_value(
    gains: Sequence[Sequence[float]], allocation: Sequence[int]
) -> float:
    """Total gain of an allocation under the same gain tables."""
    return sum(
        row[min(b, len(row) - 1)] for row, b in zip(gains, allocation)
    )


def prefer_round_robin(
    gains: Sequence[Sequence[float]],
    optimal: List[int],
    round_robin: List[int],
    slack: float = 0.02,
) -> List[int]:
    """Fall back to the round-robin split when it is essentially as good.

    The gain tables come from histogram estimates; when the knapsack
    optimum beats the balanced split by less than ``slack`` the difference
    is estimation noise, and the balanced schedule is the safer choice —
    this is the "knapsacks converge to round-robin on uniform data"
    behaviour the paper reports in Sec. 6.4.
    """
    best_value = allocation_value(gains, optimal)
    rr_value = allocation_value(gains, round_robin)
    if best_value <= rr_value * (1.0 + slack) + 1e-12:
        return round_robin
    return optimal


def delta_table(
    state, dim: int, max_blocks: int
) -> List[float]:
    """``Delta_i(x)`` for ``x = 0..max_blocks``: estimated drop of ``high_i``.

    Both endpoints come from the list's precomputed histogram
    (uniform-within-bucket): ``Delta(x) = est(pos) - est(pos + x)``.
    Anchoring both ends on the estimate cancels the histogram's offset at
    the current position — mixing the exact ``high_i`` with an estimated
    future score would systematically bend a linear score curve into a
    convex one and mislead the knapsack toward degenerate one-list
    allocations.  The table is clamped to ``[0, high_i]`` and forced
    non-decreasing (the true score sequence is non-increasing, so any
    non-monotonicity is histogram noise).
    """
    cursor = state.cursors[dim]
    hist = state.histograms[dim]
    high = cursor.high
    position = cursor.position
    anchor = hist.score_at_rank(position) if high > 0 else 0.0
    depths = position + np.arange(1, max_blocks + 1, dtype=np.int64) * state.block_size
    estimated = hist.scores_at_ranks(depths)
    # Clamp to [0, high] and force non-decreasing via a running maximum;
    # comparisons only, so the table is bit-identical to the scalar loop
    # ``drop = min(max(anchor - est, previous), high)``.
    drops = np.minimum(
        np.maximum.accumulate(np.maximum(anchor - estimated, 0.0)), high
    )
    return [0.0] + drops.tolist()
