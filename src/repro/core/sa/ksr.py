"""KSR — Knapsack for Score Reduction (paper Sec. 4.1).

KSR chooses the batch split ``(b_1, ..., b_m)`` that maximizes the total
expected reduction in candidate bestscores:

    SR(b_1, ..., b_m) = sum_i w_i * Delta_i(b_i)

where ``Delta_i(b_i) = high_i - score_i(pos_i + b_i)`` is the estimated drop
of the scan-position bound (from the precomputed histogram) and
``w_i = |{d in Q : i not in E(d)}|`` counts the queued candidates whose
bestscore that drop actually reduces.  Scanning a list deeply only pays off
if both the scores drop quickly *and* many open candidates depend on that
list's bound.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..engine import QueryState, SAPolicy
from .knapsack import MemoizedAllocator, delta_table, prefer_round_robin
from .round_robin import RoundRobin


class KnapsackScoreReduction(SAPolicy):
    """The paper's KSR scheduler."""

    name = "KSR"

    def __init__(self) -> None:
        self._round_robin = RoundRobin()
        self._allocator = MemoizedAllocator()

    def allocate(self, state: QueryState, batch_blocks: int) -> List[int]:
        weights = _unseen_candidate_counts(state)
        if not any(weights):
            # No candidate information yet (first round) or every candidate
            # fully evaluated: nothing to optimize, behave like round-robin.
            return self._round_robin.allocate(state, batch_blocks)
        gains = []
        for dim in range(state.num_lists):
            max_blocks = min(state.cursors[dim].blocks_remaining, batch_blocks)
            deltas = delta_table(state, dim, max_blocks)
            gains.append([weights[dim] * d for d in deltas])
        allocation = self._allocator.allocate(gains, batch_blocks)
        fallback = self._round_robin.allocate(state, batch_blocks)
        if not any(allocation):
            return fallback
        return prefer_round_robin(gains, allocation, fallback)


def _unseen_candidate_counts(state: QueryState) -> List[int]:
    """``w_i``: candidates not yet evaluated in list ``i``.

    Answered from the pool's mask/count columns: one boolean matrix of
    missing bits times the per-mask counts — integer sums over at most
    ``2^m`` distinct masks instead of a scan over every candidate.
    Exactly the same integers as the per-candidate loop.
    """
    masks, counts = state.pool.mask_count_arrays()
    if masks.size == 0:
        return [0] * state.num_lists
    missing = state.pool.full_mask & ~masks
    dims = np.arange(state.num_lists, dtype=np.int64)
    missing_bits = (missing[:, None] >> dims[None, :]) & 1
    totals = (missing_bits * counts[:, None]).sum(axis=0)
    return [int(total) for total in totals]
