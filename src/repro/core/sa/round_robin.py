"""Round-robin sorted-access scheduling (the classic TA/NRA/CA baseline)."""

from __future__ import annotations

from typing import List

from ..engine import QueryState, SAPolicy


class RoundRobin(SAPolicy):
    """Distribute each batch evenly across the non-exhausted lists.

    With ``batch_blocks = m`` this is exactly one block per list and round —
    the scheduling used by TA, NRA, CA, Upper, and Pick.  When the batch does
    not divide evenly, the surplus blocks rotate across rounds so no list is
    systematically favoured.
    """

    name = "RR"

    def __init__(self) -> None:
        self._offset = 0

    def allocate(self, state: QueryState, batch_blocks: int) -> List[int]:
        active = [
            i for i, cursor in enumerate(state.cursors) if not cursor.exhausted
        ]
        allocation = [0] * state.num_lists
        if not active or batch_blocks <= 0:
            return allocation
        base, surplus = divmod(batch_blocks, len(active))
        for slot, dim in enumerate(active):
            allocation[dim] = base
        for extra in range(surplus):
            dim = active[(self._offset + extra) % len(active)]
            allocation[dim] += 1
        self._offset += surplus
        # Do not schedule more blocks than a list still has; hand the excess
        # to the deepest remaining lists to keep the batch size constant.
        self._clamp_to_remaining(state, allocation, active)
        return allocation

    @staticmethod
    def _clamp_to_remaining(
        state: QueryState, allocation: List[int], active: List[int]
    ) -> None:
        spare = 0
        for dim in active:
            remaining = state.cursors[dim].blocks_remaining
            if allocation[dim] > remaining:
                spare += allocation[dim] - remaining
                allocation[dim] = remaining
        if spare <= 0:
            return
        for dim in sorted(
            active, key=lambda d: -state.cursors[d].blocks_remaining
        ):
            room = state.cursors[dim].blocks_remaining - allocation[dim]
            if room <= 0:
                continue
            grant = min(room, spare)
            allocation[dim] += grant
            spare -= grant
            if spare == 0:
                break
