"""Exact vectorized top-k selection shared by the columnar hot paths.

Selecting the k largest ``(value, -doc_id)`` pairs uses *comparisons
only* — no float arithmetic — so a partition-based numpy selection is
bit-for-bit identical to sorting (or to ``heapq.nlargest``) over the
same keys.  Both :class:`repro.core.columnar.ColumnarPool` and the
FullMerge baseline route their final selection through this helper.
"""

from __future__ import annotations

import numpy as np


def topk_indices(values: np.ndarray, doc_ids: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest ``(value, -doc_id)`` keys, descending.

    Equivalent to ``np.lexsort((doc_ids, -values))[:k]`` but avoids the
    full sort: a partition finds the rank-k value, strictly greater rows
    are all taken, and ties at the boundary are resolved by smallest doc
    id (the paper's ``<score, itemID>`` tie-break).  Returns positions
    into ``values``/``doc_ids`` ordered by descending ``(value, -doc_id)``.
    """
    n = int(values.size)
    if k >= n:
        order = np.lexsort((doc_ids, -values))
        return order
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    # Value of the rank-k item (k-th largest).
    kth = np.partition(values, n - k)[n - k]
    greater = np.flatnonzero(values > kth)
    need = k - int(greater.size)
    if need > 0:
        ties = np.flatnonzero(values == kth)
        if need < int(ties.size):
            tie_docs = doc_ids[ties]
            pick = np.argpartition(tie_docs, need - 1)[:need]
            ties = ties[pick]
        idx = np.concatenate([greater, ties])
    else:  # pragma: no cover - partition guarantees need >= 1 here
        idx = greater
    order = np.lexsort((doc_ids[idx], -values[idx]))
    return idx[order]
