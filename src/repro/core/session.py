"""The session layer: shared statistics, reusable executors, batch entry.

Fagin-style middleware amortizes per-query setup across queries: the
expensive part of a query against a cold stack is not the accesses but
rebuilding the precomputed statistics (per-list histograms, pairwise
covariances) that every scheduling decision feeds on.  A
:class:`QuerySession` owns that amortization:

* a **per-index cache** of :class:`~repro.stats.catalog.StatsCatalog`
  instances — each index's histograms and covariance tables are built
  exactly once per session, no matter how many queries (or cost ratios)
  touch it,
* a **per-index cache** of reusable
  :class:`~repro.core.executor.QueryExecutor` instances,
* the batch API :meth:`QuerySession.run_many` plus the single-query
  convenience :meth:`QuerySession.run`.

The session is the single entry point the rest of the library routes
through: :class:`~repro.core.algorithms.TopKProcessor` wraps a session
bound to one index, :func:`repro.core.algorithms.run_query` consults a
process-wide session cache, and the benchmark harness shares one session
across all its processors.

A session holds strong references to the indexes it has served (an
``id()``-keyed cache needs the id to stay valid).  Pass
``max_cached_indexes`` to bound the cache with LRU eviction — the
process-wide session used by ``run_query`` does.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..live.binding import LiveBinding

from ..stats.catalog import StatsCatalog
from ..storage.accessors import RetryPolicy
from ..storage.block_index import InvertedBlockIndex
from ..storage.diskmodel import CostModel
from .executor import (
    ExecutionListener,
    QueryDeadline,
    QueryExecutor,
    TraceListener,
)
from .planner import QueryPlan
from .results import TopKResult

#: The paper's best-performing triple; the default everywhere.
DEFAULT_ALGORITHM = "KSR-Last-Ben"


class _IndexEntry:
    """Per-index cache slot: the index plus its lazily built companions."""

    __slots__ = ("index", "stats", "executor")

    def __init__(self, index: InvertedBlockIndex) -> None:
        self.index = index
        self.stats: Optional[StatsCatalog] = None
        self.executor: Optional[QueryExecutor] = None


class QuerySession:
    """Shared query-processing context over one or more indexes.

    ``index`` (optional) becomes the default target for :meth:`run`,
    :meth:`run_many`, and friends; every method also accepts an explicit
    ``index=`` to serve multiple indexes from one session.  Construction
    is cheap — statistics are built lazily, on the first query per index,
    and cached for the session's lifetime.

    ``predictor`` selects the probabilistic machinery: ``"histogram"``
    (the paper's convolution-based predictor) or ``"normal"`` (the
    RankSQL-style Normal approximation, for comparison).
    ``retry_policy`` enables fault recovery on every query (see
    :mod:`repro.storage.faults`).  ``listeners`` are
    :class:`~repro.core.executor.ExecutionListener` objects attached to
    every execution the session runs.
    """

    def __init__(
        self,
        index: Optional[InvertedBlockIndex] = None,
        cost_ratio: float = 1000.0,
        cost_model: Optional[CostModel] = None,
        batch_blocks: Optional[int] = None,
        num_buckets: int = 100,
        use_correlations: bool = True,
        predictor: str = "histogram",
        retry_policy: Optional[RetryPolicy] = None,
        listeners: Sequence[ExecutionListener] = (),
        max_cached_indexes: Optional[int] = None,
        bookkeeping: Optional[str] = None,
        predict_threshold: bool = False,
        threshold_predictor: Optional[object] = None,
    ) -> None:
        from ..stats.normal_predictor import NormalScorePredictor
        from ..stats.score_predictor import ScorePredictor

        predictor_classes = {
            "histogram": ScorePredictor,
            "normal": NormalScorePredictor,
        }
        if predictor not in predictor_classes:
            raise ValueError(
                "unknown predictor %r; valid: %s"
                % (predictor, sorted(predictor_classes))
            )
        self.cost_model = (
            cost_model
            if cost_model is not None
            else CostModel.from_ratio(cost_ratio)
        )
        self.batch_blocks = batch_blocks
        self.num_buckets = num_buckets
        self.use_correlations = use_correlations
        self.predictor_cls = predictor_classes[predictor]
        self.retry_policy = retry_policy
        self.listeners = tuple(listeners)
        #: bookkeeping mode for every query this session runs (one of
        #: repro.core.bookkeeping.BOOKKEEPING_MODES); None defers to the
        #: context override / environment / library default at query time
        self.bookkeeping = bookkeeping
        #: when True, plans run through :meth:`run` / :meth:`run_many`
        #: get a plan-time :class:`~repro.stats.threshold.PredictedThreshold`
        #: attached (unless they already carry one); ``threshold_predictor``
        #: overrides the default estimator — any callable with the
        #: signature of :func:`repro.stats.threshold.predict_threshold`
        self.predict_threshold = bool(predict_threshold)
        self.threshold_predictor = threshold_predictor
        self.default_index = index
        self.max_cached_indexes = max_cached_indexes
        self._entries: "OrderedDict[int, _IndexEntry]" = OrderedDict()
        # Guards the id-keyed caches and the lifecycle counters: one
        # session is shared by every worker thread of a sharded query
        # (see repro.distrib.shard), and an OrderedDict being reordered
        # by move_to_end while another thread inserts is not safe.
        # Reentrant because executor_for -> stats_for -> _entry nest.
        self._lock = threading.RLock()
        # Fork safety: the lock and the caches belong to this process.
        # A forked child inherits both — including a lock possibly held
        # by a parent thread that does not exist in the child — so every
        # public entry point revalidates by PID before acquiring.
        self._owner_pid = os.getpid()
        #: lifecycle counters — how many catalogs/executors this session
        #: actually built (the cache-efficiency instrumentation)
        self.stats_builds = 0
        self.executor_builds = 0
        self.queries_run = 0

    # ------------------------------------------------------------------
    # Per-index caches
    # ------------------------------------------------------------------
    def _check_fork(self) -> None:
        """Reset process-local state after a ``fork()``.

        Called before any lock acquisition: the inherited ``RLock`` may
        have been held by a parent thread at fork time (that thread does
        not exist here, so the lock would never be released), and cached
        entries were built for the parent.  The child starts with a
        fresh lock and empty caches; statistics rebuild lazily.
        """
        if os.getpid() != self._owner_pid:
            self._lock = threading.RLock()
            self._entries = OrderedDict()
            self._owner_pid = os.getpid()

    def _entry(self, index: Optional[InvertedBlockIndex]) -> _IndexEntry:
        if index is None:
            index = self.default_index
        if index is None:
            raise ValueError(
                "no index: pass one or bind a default to the session"
            )
        key = id(index)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _IndexEntry(index)
                self._entries[key] = entry
                if (
                    self.max_cached_indexes is not None
                    and len(self._entries) > self.max_cached_indexes
                ):
                    self._entries.popitem(last=False)
            else:
                self._entries.move_to_end(key)
            return entry

    def stats_for(
        self, index: Optional[InvertedBlockIndex] = None
    ) -> StatsCatalog:
        """The (cached) statistics catalog for an index.

        Built at most once per index and session; every query the session
        runs against that index shares it, so histogram and covariance
        computation is amortized across the whole workload.
        """
        self._check_fork()
        with self._lock:
            entry = self._entry(index)
            if entry.stats is None:
                entry.stats = StatsCatalog(
                    entry.index,
                    num_buckets=self.num_buckets,
                    use_correlations=self.use_correlations,
                )
                self.stats_builds += 1
            return entry.stats

    def attach_stats(
        self,
        catalog: StatsCatalog,
        index: Optional[InvertedBlockIndex] = None,
    ) -> None:
        """Adopt a precomputed catalog for an index (e.g. a shared one)."""
        self._check_fork()
        with self._lock:
            entry = self._entry(index)
            entry.stats = catalog
            if entry.executor is not None:
                entry.executor.stats = catalog

    def executor_for(
        self, index: Optional[InvertedBlockIndex] = None
    ) -> QueryExecutor:
        """The (cached) reusable executor for an index."""
        self._check_fork()
        with self._lock:
            entry = self._entry(index)
            if entry.executor is None:
                entry.executor = QueryExecutor(
                    index=entry.index,
                    stats=self.stats_for(entry.index),
                    cost_model=self.cost_model,
                    batch_blocks=self.batch_blocks,
                    predictor_cls=self.predictor_cls,
                    retry_policy=self.retry_policy,
                    listeners=self.listeners,
                    bookkeeping=self.bookkeeping,
                )
                self.executor_builds += 1
            return entry.executor

    @property
    def cached_indexes(self) -> int:
        """How many indexes this session currently holds caches for."""
        self._check_fork()
        with self._lock:
            return len(self._entries)

    def evict_index(self, index: InvertedBlockIndex) -> bool:
        """Drop the cached stats/executor entry for ``index`` (if any).

        The live-index path retires one immutable snapshot per epoch;
        evicting the stale epoch's entry keeps an unbounded session from
        growing by one catalog per write burst.  Safe at any time: a
        query already holding the evicted executor keeps running on it.
        """
        self._check_fork()
        with self._lock:
            return self._entries.pop(id(index), None) is not None

    def open_live(self, live) -> "LiveBinding":
        """Bind a :class:`~repro.live.index.LiveIndex` to this session.

        Returns a :class:`~repro.live.binding.LiveBinding` whose
        ``run``/``run_many`` pin one immutable snapshot per call, so
        queries never observe a torn epoch; statistics (and PR 8
        threshold predictions) rebuild per epoch through the normal
        per-index cache and the stale epoch's entry is evicted.
        """
        from ..live.binding import LiveBinding

        return LiveBinding(self, live)

    # ------------------------------------------------------------------
    # Planning and execution
    # ------------------------------------------------------------------
    def plan(
        self,
        terms: Sequence[str],
        k: int,
        algorithm: str = DEFAULT_ALGORITHM,
        weights: Optional[Sequence[float]] = None,
        prune_epsilon: float = 0.0,
        deadline: Optional[QueryDeadline] = None,
        cost_model: Optional[CostModel] = None,
        batch_blocks: Optional[int] = None,
    ) -> QueryPlan:
        """Resolve and validate a query into a reusable :class:`QueryPlan`."""
        from .algorithms import plan as plan_query

        return plan_query(
            terms,
            k,
            algorithm,
            weights=weights,
            prune_epsilon=prune_epsilon,
            deadline=deadline,
            cost_model=cost_model,
            batch_blocks=batch_blocks,
        )

    def run(
        self,
        terms: Optional[Sequence[str]] = None,
        k: Optional[int] = None,
        algorithm: str = DEFAULT_ALGORITHM,
        index: Optional[InvertedBlockIndex] = None,
        plan: Optional[QueryPlan] = None,
        weights: Optional[Sequence[float]] = None,
        trace: bool = False,
        prune_epsilon: float = 0.0,
        deadline: Optional[QueryDeadline] = None,
        listeners: Sequence[ExecutionListener] = (),
    ) -> TopKResult:
        """Run one top-k query through the session's cached machinery.

        Either pass ``terms`` and ``k`` (optionally with ``algorithm``,
        ``weights``, ``prune_epsilon``, ``deadline``) or a pre-built
        ``plan``.  ``trace=True`` attaches a per-call
        :class:`~repro.core.executor.TraceListener`, so ``result.trace``
        carries one snapshot per processing round; ``listeners`` add
        further per-call observers.
        """
        if plan is None:
            if terms is None or k is None:
                raise ValueError("run() needs terms and k, or a plan")
            plan = self.plan(
                terms,
                k,
                algorithm,
                weights=weights,
                prune_epsilon=prune_epsilon,
                deadline=deadline,
            )
        plan = self._maybe_attach_prediction(plan, index)
        extra = tuple(listeners)
        if trace:
            extra = extra + (TraceListener(),)
        executor = self.executor_for(index)
        with self._lock:
            self.queries_run += 1
        return executor.execute(plan, listeners=extra)

    def run_many(
        self,
        queries: Sequence[Sequence[str]],
        k: int,
        algorithm: str = DEFAULT_ALGORITHM,
        index: Optional[InvertedBlockIndex] = None,
        weights: Optional[Sequence[float]] = None,
        prune_epsilon: float = 0.0,
        deadline: Optional[QueryDeadline] = None,
        listeners: Sequence[ExecutionListener] = (),
    ) -> List[TopKResult]:
        """Run a batch of queries, amortizing statistics and executors.

        The statistics catalog and the executor for the target index are
        built (at most) once for the entire batch — the whole point of
        the session layer.  Results come back in query order.
        """
        executor = self.executor_for(index)
        results = []
        for terms in queries:
            plan = self.plan(
                terms,
                k,
                algorithm,
                weights=weights,
                prune_epsilon=prune_epsilon,
                deadline=deadline,
            )
            plan = self._maybe_attach_prediction(plan, index)
            with self._lock:
                self.queries_run += 1
            results.append(executor.execute(plan, listeners=listeners))
        return results

    def _maybe_attach_prediction(
        self,
        plan: QueryPlan,
        index: Optional[InvertedBlockIndex],
    ) -> QueryPlan:
        """Attach a plan-time threshold prediction when enabled."""
        if not self.predict_threshold or plan.predicted_threshold is not None:
            return plan
        from .planner import attach_threshold_prediction

        return attach_threshold_prediction(
            plan, self.stats_for(index), predictor=self.threshold_predictor
        )

    # ------------------------------------------------------------------
    # Baselines and bounds (conveniences matching TopKProcessor)
    # ------------------------------------------------------------------
    def full_merge(
        self,
        terms: Sequence[str],
        k: int,
        index: Optional[InvertedBlockIndex] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> TopKResult:
        """The DBMS-style FullMerge baseline (scan everything, sort)."""
        from .full_merge import full_merge

        entry = self._entry(index)
        return full_merge(
            entry.index, terms, k, self.cost_model, weights=weights
        )

    def lower_bound(
        self,
        terms: Sequence[str],
        k: int,
        index: Optional[InvertedBlockIndex] = None,
        weights: Optional[Sequence[float]] = None,
    ) -> float:
        """Sec. 2.5 per-query lower bound on any TA-family method's cost."""
        from .lower_bound import LowerBoundComputer

        entry = self._entry(index)
        computer = LowerBoundComputer(entry.index, terms, weights=weights)
        return computer.cost_for_k(k, self.cost_model.ratio)

    def warm(
        self,
        queries: Sequence[Sequence[str]],
        index: Optional[InvertedBlockIndex] = None,
    ) -> int:
        """Precompute statistics for a query log (paper Sec. 3.4 setup)."""
        return self.stats_for(index).precompute_from_query_log(queries)


class ShardedSession:
    """Session-level entry point for document-partitioned execution.

    Wraps the :mod:`repro.distrib` stack behind the same ergonomics as
    :class:`QuerySession`: construct once (partitioning the corpus and
    caching per-shard statistics lazily), then :meth:`run` queries.
    Accepts either a single-node :class:`InvertedBlockIndex` plus a shard
    count (the index is re-partitioned) or a prebuilt
    :class:`~repro.distrib.partition.ShardedIndex`.

    Every query returns a
    :class:`~repro.distrib.coordinator.ShardedTopKResult` whose top-k is
    identical to single-node execution over the unpartitioned corpus —
    distribution changes the access schedule, never the answer (the
    parity suite pins this for all 24 algorithm triples).

    ``mode="bounded"`` (default) runs the round-based coordinator with
    bound-driven shard pruning; ``mode="gather"`` runs every shard to
    completion (the naive baseline).  All other keyword arguments mirror
    :class:`QuerySession` / :class:`~repro.distrib.coordinator.MergeCoordinator`.

    ``backend`` selects where shard executions run: ``"thread"``
    (default — the in-process :class:`~repro.distrib.shard.ShardExecutor`)
    or ``"process"`` (persistent worker processes over mmap'd on-disk
    shard indexes, see :class:`~repro.distrib.process.ProcessShardExecutor`).
    Semantics are identical; only the access schedule's wall-clock
    parallelism differs.  ``start_method``/``spill_dir`` apply to the
    process backend only.  Call :meth:`close` (or use the session as a
    context manager) to release process-backend workers.

    ``live`` accepts a :class:`~repro.live.index.ShardedLiveIndex`
    (thread backend only): updates route to per-shard live indexes and
    every query runs over a consistent per-epoch cut of pinned shard
    snapshots.  The executor/coordinator view is rebuilt when the
    global epoch advances; shards whose epoch is unchanged return the
    same snapshot object, so their statistics stay cached.
    :meth:`close` then also stops any background compaction threads.
    """

    BACKENDS = ("thread", "process")

    def __init__(
        self,
        index: Optional[InvertedBlockIndex] = None,
        num_shards: int = 4,
        strategy: str = "hash",
        sharded: Optional[object] = None,
        session: Optional[QuerySession] = None,
        round_budget: Optional[float] = None,
        max_rounds: Optional[int] = None,
        degrade: Optional[object] = None,
        max_workers: Optional[int] = None,
        predict_threshold: bool = False,
        threshold_predictor: Optional[object] = None,
        backend: str = "thread",
        start_method: Optional[str] = None,
        spill_dir: Optional[str] = None,
        live: Optional[object] = None,
        **session_kwargs,
    ) -> None:
        from ..distrib.coordinator import DEFAULT_MAX_ROUNDS, MergeCoordinator
        from ..distrib.partition import ShardedIndex, partition_index
        from ..distrib.process import ProcessShardExecutor
        from ..distrib.shard import ShardExecutor

        if backend not in self.BACKENDS:
            raise ValueError(
                "unknown backend %r; valid: %s"
                % (backend, list(self.BACKENDS))
            )
        self.backend = backend

        #: when True, bounded-mode queries compute a plan-time threshold
        #: prediction (the max over per-shard estimates) and hand it to
        #: the coordinator for shard skipping/pruning; gather mode — the
        #: parity baseline — always runs prediction-free
        self.predict_threshold = bool(predict_threshold)
        self.threshold_predictor = threshold_predictor

        self.live = live
        if live is not None:
            from ..live.index import ShardedLiveIndex

            if backend != "thread":
                raise ValueError(
                    "live sharded sessions require the thread backend"
                )
            if index is not None or sharded is not None:
                raise ValueError(
                    "pass either live= or a static index/sharded=, not both"
                )
            if not isinstance(live, ShardedLiveIndex):
                raise TypeError("live must be a ShardedLiveIndex")
            self.global_index = None
            self.sharded = None
            self.executor = None
            self.coordinator = None
            self._live_lock = threading.Lock()
            self._live_pid = os.getpid()
            self._live_epoch: Optional[int] = None
            self._live_snaps: tuple = ()
            # One shared session across epoch rebuilds: unchanged shards
            # keep their statistics; the bound keeps churned epochs from
            # accumulating (current + previous views at most).
            self._live_session = (
                session
                if session is not None
                else QuerySession(
                    max_cached_indexes=3 * live.num_shards + 2,
                    **session_kwargs,
                )
            )
            self._live_executor_kwargs = {"max_workers": max_workers}
            self._live_coordinator_kwargs = {
                "round_budget": round_budget,
                "max_rounds": (
                    max_rounds
                    if max_rounds is not None
                    else DEFAULT_MAX_ROUNDS
                ),
                "degrade": degrade,
            }
            self._refresh_live()
            return

        if sharded is None:
            if index is None:
                raise ValueError(
                    "pass an index to partition or a prebuilt sharded index"
                )
            sharded = partition_index(index, num_shards, strategy=strategy)
        elif not isinstance(sharded, ShardedIndex):
            raise TypeError("sharded must be a ShardedIndex")
        self.sharded = sharded
        #: the unpartitioned corpus, when this session partitioned it
        #: itself — lets threshold prediction run on global statistics
        #: (per-shard estimates systematically undershoot the global
        #: threshold under hash partitioning: a shard's top-k reaches
        #: rank ~k*num_shards globally)
        self.global_index = index
        if backend == "process":
            self.executor = ProcessShardExecutor(
                sharded,
                session=session,
                start_method=start_method,
                spill_dir=spill_dir,
                max_workers=max_workers,
                **session_kwargs,
            )
        else:
            self.executor = ShardExecutor(
                sharded,
                session=session,
                max_workers=max_workers,
                **session_kwargs,
            )
        self.coordinator = MergeCoordinator(
            self.executor,
            round_budget=round_budget,
            max_rounds=(
                max_rounds if max_rounds is not None else DEFAULT_MAX_ROUNDS
            ),
            degrade=degrade,
        )

    @property
    def num_shards(self) -> int:
        if self.live is not None:
            return self.live.num_shards
        return self.sharded.num_shards

    @property
    def session(self) -> QuerySession:
        """The underlying (thread-safe) per-shard query session."""
        if self.live is not None:
            return self._live_session
        return self.executor.session

    def warm(self) -> None:
        """Build every shard's statistics catalog up front."""
        if self.live is not None:
            self._refresh_live()
        self.executor.warm()

    def _check_live_fork(self) -> None:
        """Fresh lock and an unpinned cut after a ``fork()``.

        The parent's pinned snapshots (and the lock possibly held by a
        parent thread) stay with the parent; the child re-pins its own
        cut on the next query.
        """
        if os.getpid() != self._live_pid:
            self._live_lock = threading.Lock()
            self._live_pid = os.getpid()
            self._live_epoch = None
            self._live_snaps = ()
            self.executor = None
            self.coordinator = None

    def _refresh_live(self, pin: bool = False):
        """Rebuild the shard view when the live epoch has advanced.

        Pins one snapshot per shard (a consistent cut — multi-op
        ``apply`` batches are atomic across it), releases the previous
        cut, and evicts session cache entries only for shards whose
        snapshot actually changed.  Fork-safe: a child revalidates the
        lock and re-pins its own cut.

        With ``pin=True``, returns ``(coordinator, acquired_snaps)``
        where each snapshot holds one extra handle for the caller's
        query scope — a later refresh can then retire the cut without
        pulling mmap segments out from under the in-flight query.
        """
        from ..distrib.coordinator import MergeCoordinator
        from ..distrib.partition import ShardedIndex
        from ..distrib.shard import ShardExecutor

        self._check_live_fork()
        with self._live_lock:
            epoch = self.live.epoch
            if self.executor is None or epoch != self._live_epoch:
                previous = self._live_snaps
                snaps = self.live.snapshot_all()
                view = ShardedIndex(
                    shards=tuple(snap.index for snap in snaps),
                    strategy=self.live.strategy,
                    assignment=self.live.assignment,
                )
                self.executor = ShardExecutor(
                    view,
                    session=self._live_session,
                    **self._live_executor_kwargs,
                )
                self.coordinator = MergeCoordinator(
                    self.executor, **self._live_coordinator_kwargs
                )
                self.sharded = view
                self._live_epoch = epoch
                self._live_snaps = snaps
                current_ids = {id(snap) for snap in snaps}
                for old in previous:
                    if id(old) not in current_ids:
                        self._live_session.evict_index(old.index)
                    old.close()
            if pin:
                return (
                    self.coordinator,
                    tuple(snap.acquire() for snap in self._live_snaps),
                )
            return None

    def close(self) -> None:
        """Release backend resources (process-backend workers, spill).

        For live sessions this also releases the pinned snapshot cut
        and stops every shard's background compaction thread (in a
        forked child the maintainers disown the parent's threads
        instead of joining them).
        """
        if self.live is not None:
            self._check_live_fork()
            with self._live_lock:
                for snap in self._live_snaps:
                    snap.close()
                self._live_snaps = ()
                self._live_epoch = None
                self.executor = None
                self.coordinator = None
            self.live.close()
            return
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self,
        terms: Sequence[str],
        k: int,
        algorithm: str = DEFAULT_ALGORITHM,
        weights: Optional[Sequence[float]] = None,
        prune_epsilon: float = 0.0,
        deadline: Optional[QueryDeadline] = None,
        mode: str = "bounded",
    ):
        """Run one sharded top-k query (see :class:`MergeCoordinator`)."""
        pinned = ()
        if self.live is not None:
            coordinator, pinned = self._refresh_live(pin=True)
        else:
            coordinator = self.coordinator
        try:
            prediction = None
            if self.predict_threshold and mode == "bounded":
                prediction = self.predict(terms, k, weights=weights)
            return coordinator.query(
                terms,
                k,
                algorithm=algorithm,
                weights=weights,
                prune_epsilon=prune_epsilon,
                deadline=deadline,
                mode=mode,
                prediction=prediction,
            )
        finally:
            for snap in pinned:
                snap.close()

    def predict(
        self,
        terms: Sequence[str],
        k: int,
        weights: Optional[Sequence[float]] = None,
    ):
        """Global plan-time threshold prediction for a sharded query.

        Estimated on the unpartitioned corpus's statistics when this
        session partitioned the index itself — the estimate then targets
        the true global rank-k threshold directly.  For prebuilt shard
        sets the fallback is the maximum of the per-shard estimates: the
        global top-k threshold dominates every shard-local one (the
        global corpus is a superset of each shard), so that maximum is
        still a valid — if conservative — global estimate.  Each shard
        is estimated over the query terms it actually holds; ignoring
        absent terms only lowers the estimate, which errs on the safe
        side.  Returns ``None`` when no estimate came out positive.
        """
        from ..stats.threshold import predict_threshold

        predictor = self.threshold_predictor or predict_threshold
        if self.global_index is not None:
            if all(term in self.global_index for term in terms):
                return predictor(
                    self.session.stats_for(self.global_index),
                    terms,
                    k,
                    weights=weights,
                )
            return None
        best = None
        for shard in self.sharded.shards:
            present = [
                (term, weight)
                for term, weight in zip(
                    terms, weights or [1.0] * len(terms)
                )
                if term in shard
            ]
            if not present:
                continue
            predicted = predictor(
                self.session.stats_for(shard),
                [term for term, _ in present],
                k,
                weights=[weight for _, weight in present],
            )
            if predicted is not None and (
                best is None or predicted.value > best.value
            ):
                best = predicted
        return best

    def run_many(
        self,
        queries: Sequence[Sequence[str]],
        k: int,
        algorithm: str = DEFAULT_ALGORITHM,
        weights: Optional[Sequence[float]] = None,
        prune_epsilon: float = 0.0,
        deadline: Optional[QueryDeadline] = None,
        mode: str = "bounded",
    ) -> List:
        """Run a batch of sharded queries, amortizing per-shard caches."""
        return [
            self.run(
                terms,
                k,
                algorithm=algorithm,
                weights=weights,
                prune_epsilon=prune_epsilon,
                deadline=deadline,
                mode=mode,
            )
            for terms in queries
        ]


#: Process-wide session backing :func:`repro.core.algorithms.run_query`.
_SHARED_SESSION: Optional[QuerySession] = None

#: Guards creation/reset of the process-wide session across threads.
_SHARED_SESSION_LOCK = threading.Lock()

#: PID that owns the shared session (a forked child must not reuse it).
_SHARED_SESSION_PID = os.getpid()

#: Indexes the shared session keeps alive at most (LRU-evicted beyond).
SHARED_SESSION_MAX_INDEXES = 8


def shared_session() -> QuerySession:
    """The process-wide session used by one-shot conveniences.

    Bounded to :data:`SHARED_SESSION_MAX_INDEXES` indexes (least recently
    used evicted first) so module-level caching cannot grow without
    limit.  Call :func:`reset_shared_session` to drop it entirely.
    Thread-safe: concurrent first calls observe the same session (the
    session's own internal lock then makes its caches safe to share).
    Fork-safe: a forked child gets a fresh session and a fresh guard
    lock (the inherited ones may carry parent-thread state).
    """
    global _SHARED_SESSION, _SHARED_SESSION_LOCK, _SHARED_SESSION_PID
    if os.getpid() != _SHARED_SESSION_PID:
        _SHARED_SESSION_LOCK = threading.Lock()
        _SHARED_SESSION = None
        _SHARED_SESSION_PID = os.getpid()
    with _SHARED_SESSION_LOCK:
        if _SHARED_SESSION is None:
            _SHARED_SESSION = QuerySession(
                max_cached_indexes=SHARED_SESSION_MAX_INDEXES
            )
        return _SHARED_SESSION


def reset_shared_session() -> None:
    """Drop the process-wide session (and its cached statistics)."""
    global _SHARED_SESSION
    with _SHARED_SESSION_LOCK:
        _SHARED_SESSION = None
