"""Synthetic datasets and query workloads (paper-dataset substitutes)."""

from .httplog import LogWorkload
from .imdb import ImdbWorkload, MovieCatalog, dice_coefficient
from .padding import pad_posting_lists
from .relaxation import numeric_similarity, relax_value_lists, relaxed_term
from .synthetic import synthetic_index, uniform_scores, zipf_scores
from .text_corpus import (
    TextWorkload,
    generate_corpus,
    generate_queries,
    generate_workload,
)
from .workloads import Dataset, available_datasets, load_dataset

__all__ = [
    "Dataset",
    "ImdbWorkload",
    "LogWorkload",
    "MovieCatalog",
    "TextWorkload",
    "available_datasets",
    "dice_coefficient",
    "generate_corpus",
    "generate_queries",
    "generate_workload",
    "load_dataset",
    "numeric_similarity",
    "pad_posting_lists",
    "relax_value_lists",
    "relaxed_term",
    "synthetic_index",
    "uniform_scores",
    "zipf_scores",
]
