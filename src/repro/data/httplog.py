"""Synthetic HTTP-server-log dataset (WorldCup-98 substitute).

The paper aggregates the 1998 FIFA WorldCup HTTP log (1.3 billion requests)
into ``Log(interval, userid, bytes)`` — per-user daily traffic — and asks
top-k queries like "the k users with the highest aggregated traffic from
June 1 to June 10".  The defining property is an *extremely skewed* score
distribution: a handful of users download ~750MB/day while the average sits
at 50-100KB (four orders of magnitude).  That skew makes worst/best bounds
converge fast, so CA is near-optimal there (Fig. 10).

This generator reproduces the skew with Pareto-distributed user activity
and log-normal daily variation.  Each day is one index list
(``day:NN -> (user, normalized bytes)``); an interval query simply names
its days, and summing day scores is the paper's aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..storage.block_index import InvertedBlockIndex
from ..storage.index_builder import build_index


@dataclass
class LogWorkload:
    """Index over per-day traffic lists plus interval queries."""

    index: InvertedBlockIndex
    queries: List[List[str]]
    num_users: int
    num_days: int
    name: str = "httplog-like"


def generate_workload(
    num_users: int = 25_000,
    num_days: int = 30,
    num_queries: int = 20,
    interval_days: Tuple[int, int] = (3, 10),
    pareto_shape: float = 1.15,
    daily_sigma: float = 0.6,
    block_size: int = 512,
    seed: int = 23,
) -> LogWorkload:
    """Generate the traffic matrix, the per-day index, and interval queries.

    ``pareto_shape`` close to 1 yields the multi-order-of-magnitude user
    skew of the real log; larger values flatten it.
    """
    if interval_days[0] < 1 or interval_days[1] > num_days:
        raise ValueError("interval_days must fit within num_days")
    rng = np.random.default_rng(seed)

    # Per-user activity level: heavy-tailed Pareto.  A user's chance to be
    # active on a given day grows with activity (heavy users appear daily).
    activity = (1.0 + rng.pareto(pareto_shape, size=num_users)) * 50.0
    active_prob = np.clip(0.08 + 0.12 * np.log1p(activity / 50.0), 0.05, 0.95)

    postings: Dict[str, List[Tuple[int, float]]] = {}
    global_max = 0.0
    daily: List[Tuple[np.ndarray, np.ndarray]] = []
    for day in range(num_days):
        active = np.flatnonzero(rng.random(num_users) < active_prob)
        traffic = activity[active] * rng.lognormal(
            0.0, daily_sigma, size=active.size
        )
        daily.append((active, traffic))
        day_max = float(traffic.max()) if traffic.size else 0.0
        global_max = max(global_max, day_max)

    # Normalize by the global maximum so that scores are comparable across
    # days (summing normalized scores preserves the byte-count ranking).
    for day, (active, traffic) in enumerate(daily):
        scores = traffic / global_max if global_max > 0 else traffic
        postings["day:%02d" % day] = list(
            zip(active.tolist(), scores.tolist())
        )

    queries: List[List[str]] = []
    lo, hi = interval_days
    for _ in range(num_queries):
        span = int(rng.integers(lo, hi + 1))
        start = int(rng.integers(0, num_days - span + 1))
        queries.append(["day:%02d" % d for d in range(start, start + span)])

    index = build_index(postings, num_docs=num_users, block_size=block_size)
    return LogWorkload(
        index=index, queries=queries, num_users=num_users, num_days=num_days
    )


@dataclass(frozen=True)
class TraceRequest:
    """One request of a replayable traffic trace."""

    user: int
    terms: Tuple[str, ...]
    k: int


def generate_trace(
    workload: LogWorkload,
    num_requests: int,
    k_choices: Sequence[int] = (5, 10, 20),
    user_pareto_shape: float = 1.1,
    seed: int = 7,
) -> List[TraceRequest]:
    """A seeded request trace with heavy-tailed per-user volume.

    The WorldCup log's defining property holds for *request traffic*
    too, not just byte counts: a few users issue orders of magnitude
    more requests than the median.  Per-user request weights are drawn
    Pareto (``user_pareto_shape`` close to 1 gives the heavy tail), and
    each request picks one of the workload's interval queries plus a
    ``k``.  Deterministic for a given seed — the load driver's replay
    and the CI gate see the identical trace.
    """
    if num_requests < 1:
        raise ValueError("num_requests must be positive")
    if not workload.queries:
        raise ValueError("workload has no queries to replay")
    rng = np.random.default_rng(seed)
    weights = 1.0 + rng.pareto(user_pareto_shape, size=workload.num_users)
    weights /= weights.sum()
    users = rng.choice(workload.num_users, size=num_requests, p=weights)
    query_ids = rng.integers(0, len(workload.queries), size=num_requests)
    ks = rng.choice(list(k_choices), size=num_requests)
    return [
        TraceRequest(
            user=int(users[i]),
            terms=tuple(workload.queries[int(query_ids[i])]),
            k=int(ks[i]),
        )
        for i in range(num_requests)
    ]
