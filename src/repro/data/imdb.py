"""Synthetic IMDB-like movie catalog (substitute dataset).

The paper imports IMDB into a four-attribute relation
``Movies(Title, Genre, Actors, Description)`` and builds similarity-expanded
index lists: the list for genre ``g`` also contains movies of similar genres
``g'``, weighted by the Dice coefficient of their co-occurrence, and
likewise for actors (restricted to actor pairs that co-starred in enough
movies).  The characteristic result is a mixture of

* *long categorical lists with low skew and many score ties* (genres,
  popular actors after similarity expansion), and
* *short text lists with quickly decreasing scores* (title/description
  keywords),

which is exactly what Fig. 9's cost profile reflects.  This generator
produces a catalog with those properties and query workloads in the paper's
style (``Title="War" Genre=SciFi Actors="Tom Cruise" Description="alien,
earth, destroy"``).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..storage.block_index import InvertedBlockIndex
from ..storage.index_builder import build_index


@dataclass
class MovieCatalog:
    """Generated movies plus derived co-occurrence statistics."""

    num_movies: int
    genres_of: List[Tuple[int, ...]]          # movie -> genre ids
    actors_of: List[Tuple[int, ...]]          # movie -> actor ids
    title_words_of: List[Tuple[int, ...]]     # movie -> title word ids
    desc_words_of: List[Tuple[int, ...]]      # movie -> description word ids
    num_genres: int
    num_actors: int
    title_vocab: int
    desc_vocab: int


@dataclass
class ImdbWorkload:
    """Index plus structured similarity queries."""

    index: InvertedBlockIndex
    queries: List[List[str]]
    catalog: MovieCatalog
    name: str = "imdb-like"


def dice_coefficient(count_x: int, count_y: int, count_both: int) -> float:
    """``2 |X ∩ Y| / (|X| + |Y|)`` — the paper's similarity measure."""
    denominator = count_x + count_y
    if denominator <= 0:
        return 0.0
    return 2.0 * count_both / denominator


def generate_catalog(
    num_movies: int = 25_000,
    num_genres: int = 24,
    num_actors: int = 3_000,
    title_vocab: int = 800,
    desc_vocab: int = 1_500,
    seed: int = 11,
) -> MovieCatalog:
    """Generate movies with correlated genres / actor communities."""
    rng = np.random.default_rng(seed)

    # Genres come in related clusters (e.g. SciFi~Fantasy~Action): a movie's
    # extra genres are drawn from the neighbourhood of its first genre,
    # which produces high Dice similarities within a cluster.
    genre_popularity = _zipf(rng, num_genres, 0.8)
    cluster_of = np.arange(num_genres) // 4
    genres_of: List[Tuple[int, ...]] = []
    for _ in range(num_movies):
        first = _pick(rng, genre_popularity)
        genres = {first}
        extra = int(rng.integers(0, 3))
        for _ in range(extra):
            if rng.random() < 0.7:
                same_cluster = np.flatnonzero(
                    cluster_of == cluster_of[first]
                )
                genres.add(int(rng.choice(same_cluster)))
            else:
                genres.add(_pick(rng, genre_popularity))
        genres_of.append(tuple(sorted(genres)))

    # Actors form communities aligned with genre clusters; a movie casts
    # mostly from its first genre's community, giving frequent co-stardom
    # within communities (the basis of actor Dice similarity).
    num_clusters = int(cluster_of.max()) + 1
    community_of_actor = rng.integers(0, num_clusters, size=num_actors)
    actors_by_community = [
        np.flatnonzero(community_of_actor == c) for c in range(num_clusters)
    ]
    actor_popularity = _zipf(rng, num_actors, 1.0)
    actors_of: List[Tuple[int, ...]] = []
    for genres in genres_of:
        community = actors_by_community[int(cluster_of[genres[0]])]
        cast: Set[int] = set()
        cast_size = int(rng.integers(3, 9))
        weights = actor_popularity[community]
        weights = weights / weights.sum()
        while len(cast) < cast_size:
            if rng.random() < 0.8 and community.size:
                cast.add(int(community[_pick(rng, weights)]))
            else:
                cast.add(_pick(rng, actor_popularity))
        actors_of.append(tuple(sorted(cast)))

    title_pop = _zipf(rng, title_vocab, 1.0)
    desc_pop = _zipf(rng, desc_vocab, 1.0)
    title_words_of = [
        tuple(sorted({_pick(rng, title_pop) for _ in range(int(rng.integers(2, 5)))}))
        for _ in range(num_movies)
    ]
    desc_words_of = [
        tuple(sorted({_pick(rng, desc_pop) for _ in range(int(rng.integers(8, 16)))}))
        for _ in range(num_movies)
    ]
    return MovieCatalog(
        num_movies=num_movies,
        genres_of=genres_of,
        actors_of=actors_of,
        title_words_of=title_words_of,
        desc_words_of=desc_words_of,
        num_genres=num_genres,
        num_actors=num_actors,
        title_vocab=title_vocab,
        desc_vocab=desc_vocab,
    )


def generate_workload(
    num_movies: int = 25_000,
    num_queries: int = 20,
    block_size: int = 512,
    min_costar_movies: int = 3,
    seed: int = 11,
) -> ImdbWorkload:
    """Catalog + similarity-expanded index + structured queries."""
    rng = np.random.default_rng(seed + 1)
    catalog = generate_catalog(num_movies=num_movies, seed=seed)

    genre_count, genre_pair = _pair_counts(catalog.genres_of)
    actor_count, actor_pair = _pair_counts(catalog.actors_of)

    movies_with_genre: Dict[int, List[int]] = defaultdict(list)
    for movie, genres in enumerate(catalog.genres_of):
        for g in genres:
            movies_with_genre[g].append(movie)
    movies_with_actor: Dict[int, List[int]] = defaultdict(list)
    for movie, cast in enumerate(catalog.actors_of):
        for a in cast:
            movies_with_actor[a].append(movie)
    movies_with_title: Dict[int, List[int]] = defaultdict(list)
    for movie, words in enumerate(catalog.title_words_of):
        for w in words:
            movies_with_title[w].append(movie)
    movies_with_desc: Dict[int, List[int]] = defaultdict(list)
    for movie, words in enumerate(catalog.desc_words_of):
        for w in words:
            movies_with_desc[w].append(movie)

    # Queries in the paper's style: Genre=..., Actors=..., one title word,
    # one or two description words.  Values are drawn popularity-biased so
    # the categorical lists are long (the IMDB signature).
    queries: List[List[str]] = []
    query_genres: Set[int] = set()
    query_actors: Set[int] = set()
    popular_actors = sorted(
        movies_with_actor, key=lambda a: -len(movies_with_actor[a])
    )[:200]
    for _ in range(num_queries):
        genre = int(rng.integers(0, catalog.num_genres))
        actor = int(rng.choice(popular_actors))
        seed_movie = int(rng.choice(movies_with_actor[actor]))
        # Pick mid-frequency keywords from the seed movie: the paper's text
        # lists are short ("a few thousand entries, typically scanned
        # through by the first block"), in contrast to the long categorical
        # genre/actor lists.
        title_word = _mid_frequency_word(
            catalog.title_words_of[seed_movie], movies_with_title,
            num_movies // 100,
        )
        desc_pool = sorted(
            catalog.desc_words_of[seed_movie],
            key=lambda w: abs(len(movies_with_desc[w]) - num_movies // 50),
        )
        desc_words = desc_pool[: min(2, len(desc_pool))]
        terms = ["genre:%d" % genre, "actor:%d" % actor,
                 "title:%d" % title_word]
        terms.extend("desc:%d" % w for w in desc_words)
        queries.append(terms)
        query_genres.add(genre)
        query_actors.add(actor)

    postings: Dict[str, List[Tuple[int, float]]] = {}

    # Genre lists: similarity-expanded via Dice over genre co-occurrence.
    for genre in query_genres:
        sims = {
            other: dice_coefficient(
                genre_count[genre], genre_count[other],
                genre_pair.get(_key(genre, other), 0),
            )
            for other in range(catalog.num_genres)
        }
        sims[genre] = 1.0
        best: Dict[int, float] = {}
        for other, sim in sims.items():
            if sim <= 0.02:
                continue
            for movie in movies_with_genre[other]:
                if best.get(movie, 0.0) < sim:
                    best[movie] = sim
        postings["genre:%d" % genre] = list(best.items())

    # Actor lists: expansion restricted to pairs with enough co-starring
    # movies (the paper uses pairs that appeared together in >= 5 movies;
    # scaled down with the catalog).
    for actor in query_actors:
        sims = {actor: 1.0}
        for key, both in actor_pair.items():
            if both < min_costar_movies:
                continue
            a, b = key
            if a == actor:
                sims[b] = max(
                    sims.get(b, 0.0),
                    dice_coefficient(actor_count[a], actor_count[b], both),
                )
            elif b == actor:
                sims[a] = max(
                    sims.get(a, 0.0),
                    dice_coefficient(actor_count[a], actor_count[b], both),
                )
        best = {}
        for other, sim in sims.items():
            if sim <= 0.02:
                continue
            for movie in movies_with_actor[other]:
                if best.get(movie, 0.0) < sim:
                    best[movie] = sim
        postings["actor:%d" % actor] = list(best.items())

    # Title / description lists: short text lists with a quickly decreasing
    # BM25-like score (length-normalized occurrence).
    for query in queries:
        for term in query:
            kind, _, raw = term.partition(":")
            if kind == "title" and term not in postings:
                word = int(raw)
                postings[term] = _text_scores(
                    movies_with_title[word], catalog.title_words_of
                )
            elif kind == "desc" and term not in postings:
                word = int(raw)
                postings[term] = _text_scores(
                    movies_with_desc[word], catalog.desc_words_of
                )

    index = build_index(
        postings, num_docs=catalog.num_movies, block_size=block_size
    )
    return ImdbWorkload(index=index, queries=queries, catalog=catalog)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _zipf(rng: np.random.Generator, size: int, exponent: float) -> np.ndarray:
    ranks = rng.permutation(size).astype(np.float64)
    weights = 1.0 / np.power(ranks + 2.0, exponent)
    return weights / weights.sum()


def _pick(rng: np.random.Generator, weights: np.ndarray) -> int:
    cumulative = np.cumsum(weights)
    return int(np.searchsorted(cumulative / cumulative[-1], rng.random()))


def _key(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a <= b else (b, a)


def _mid_frequency_word(words, movies_with_word, target_df: int) -> int:
    """The word whose document frequency is closest to ``target_df``."""
    return min(words, key=lambda w: abs(len(movies_with_word[w]) - target_df))


def _pair_counts(
    memberships: Sequence[Tuple[int, ...]]
) -> Tuple[Dict[int, int], Dict[Tuple[int, int], int]]:
    """Occurrence and co-occurrence counts over per-movie value tuples."""
    count: Dict[int, int] = defaultdict(int)
    pair: Dict[Tuple[int, int], int] = defaultdict(int)
    for values in memberships:
        for i, a in enumerate(values):
            count[a] += 1
            for b in values[i + 1:]:
                pair[_key(a, b)] += 1
    return count, pair


def _text_scores(
    movies: Sequence[int], words_of: Sequence[Tuple[int, ...]]
) -> List[Tuple[int, float]]:
    """Length-damped text scores: fewer words => stronger match."""
    if not movies:
        return []
    lengths = np.array([len(words_of[m]) for m in movies], dtype=np.float64)
    scores = 1.0 / (0.5 + 0.5 * lengths / lengths.mean())
    scores = scores / scores.max()
    return list(zip([int(m) for m in movies], scores.tolist()))
