"""Statistical background padding for posting lists.

Why this exists — the documented scale substitution (see DESIGN.md): the
paper's index lists hold *millions* of entries, so scanning a list tail is
expensive relative to a random access even at cR/cS = 1,000.  A Python-scale
corpus (10^5 documents) produces lists a thousand times shorter, which
silently inverts the paper's economics: deep sequential scanning becomes
nearly free and no scheduling strategy can beat plain NRA.

Instead of generating a 10^8-token corpus, we model the topically engaged
documents in full detail (the corpus generator) and the huge background
population *statistically*: each list's mid/low score range is stretched
with additional background postings whose scores continue the list's own
decay.  Background documents come from a shared universe, so they collide
across lists and create exactly the mediocre multi-list candidates that
clog a real candidate queue.  They carry genuine (low) scores, are fully
visible to every algorithm and to the brute-force oracle, and can
legitimately enter the top-k for very large k — they are real data, just
generated at posting granularity instead of token granularity.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

Posting = Tuple[int, float]


def pad_posting_lists(
    postings_by_term: Dict[str, List[Posting]],
    num_docs: int,
    factor: float = 6.0,
    base_quantile: float = 0.4,
    decay: float = 1.3,
    universe_factor: float = 3.0,
    seed: int = 97,
) -> Tuple[Dict[str, List[Posting]], int]:
    """Stretch every list's tail with background postings.

    Parameters
    ----------
    postings_by_term:
        Scored postings (normalized scores) per term.
    num_docs:
        Current collection size; background doc ids start above it.
    factor:
        Target list length as a multiple of the original length.
    base_quantile:
        Background scores enter below this quantile of the list's own
        scores, i.e. the padded mass stretches the decline from the mid
        range to the bottom while leaving the discriminative head intact.
    decay:
        Exponent of the background score decay (``score = base * u^decay``
        with ``u ~ U(0, 1]``); larger values push mass toward 0.
    universe_factor:
        Size of the shared background-document universe as a multiple of
        the largest padded list; smaller values mean more cross-list
        collisions (more multi-list background candidates).

    Returns
    -------
    ``(padded postings, new num_docs)``.
    """
    if factor < 1.0:
        raise ValueError("factor must be at least 1")
    if not 0.0 < base_quantile <= 1.0:
        raise ValueError("base_quantile must be in (0, 1]")
    rng = np.random.default_rng(seed)

    lengths = {t: len(p) for t, p in postings_by_term.items()}
    max_padded = max(
        (int(l * (factor - 1.0)) for l in lengths.values()), default=0
    )
    universe = max(int(max_padded * universe_factor), 1)

    padded: Dict[str, List[Posting]] = {}
    for term, postings in postings_by_term.items():
        extra = int(len(postings) * (factor - 1.0))
        if extra <= 0 or not postings:
            padded[term] = list(postings)
            continue
        scores = np.array([s for _, s in postings])
        base = float(np.quantile(scores, base_quantile))
        if base <= 0.0:
            base = float(scores.max()) * 0.25
        extra = min(extra, universe)
        pad_docs = rng.choice(universe, size=extra, replace=False) + num_docs
        pad_scores = base * np.power(1.0 - rng.random(extra), decay)
        padded[term] = list(postings) + list(
            zip(pad_docs.tolist(), pad_scores.tolist())
        )
    return padded, num_docs + universe
