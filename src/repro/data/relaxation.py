"""Attribute-value relaxation: similarity-expanded index lists.

Paper Sec. 2.3: for numerical or categorical conditions that need not match
exactly (``year = 1999``), the query processor conceptually extends the
value's index list with "neighboring" lists (1998, 2000, ...) whose entries
are weighted by their similarity to the queried value, preserving the
global descending-score scan order.

This module materializes that conceptual extension: it merges a family of
per-value posting lists into a single scored list where each item carries
``max over matching values of similarity(target, value) * score``.  The
IMDB dataset builds its genre/actor lists through the same mechanism using
Dice-coefficient similarities; here the similarity function is pluggable,
with the paper's numeric-neighborhood case built in.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Tuple

Posting = Tuple[int, float]
Similarity = Callable[[float, float], float]


def numeric_similarity(decay: float = 0.5) -> Similarity:
    """Similarity for numeric values: ``1 / (1 + decay * |target - v|)``.

    ``decay`` controls how quickly neighboring values lose weight; the
    queried value itself always has similarity 1.
    """
    if decay < 0:
        raise ValueError("decay must be non-negative")

    def similarity(target: float, value: float) -> float:
        return 1.0 / (1.0 + decay * abs(target - value))

    return similarity


def relax_value_lists(
    lists_by_value: Mapping[float, Iterable[Posting]],
    target: float,
    similarity: Similarity,
    min_similarity: float = 0.05,
) -> List[Posting]:
    """Merge per-value posting lists into one similarity-weighted list.

    Every item's score becomes the maximum of
    ``similarity(target, value) * score`` over all values in which it
    appears; values with similarity below ``min_similarity`` are skipped
    entirely (the paper stops relaxing once neighbors contribute too
    little to matter).
    """
    if not 0.0 <= min_similarity <= 1.0:
        raise ValueError("min_similarity must be within [0, 1]")
    best: Dict[int, float] = {}
    for value, postings in lists_by_value.items():
        weight = similarity(target, value)
        if weight < min_similarity:
            continue
        if weight < 0:
            raise ValueError("similarity must be non-negative")
        for doc_id, score in postings:
            weighted = weight * score
            if best.get(doc_id, 0.0) < weighted:
                best[int(doc_id)] = weighted
    return sorted(best.items(), key=lambda item: (-item[1], item[0]))


def relaxed_term(attribute: str, target) -> str:
    """Canonical term name for a relaxed attribute condition."""
    return "%s~%s" % (attribute, target)
