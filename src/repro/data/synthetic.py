"""Synthetic score-list generators (the paper's Uniform / Zipf ablation).

Sec. 6.4 compares the SA schedulers on artificially generated Uniform and
Zipf score distributions: for uniform scores round-robin is already optimal
(and the knapsacks converge to it), while skewed distributions reward the
knapsack schedulers.  These generators build index lists with exactly
controlled per-list score distributions and controlled inter-list overlap.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..storage.block_index import DEFAULT_BLOCK_SIZE, InvertedBlockIndex
from ..storage.index_builder import build_index


def uniform_scores(rng: np.random.Generator, count: int) -> np.ndarray:
    """I.i.d. Uniform(0, 1] scores."""
    return 1.0 - rng.random(count)


def zipf_scores(
    rng: np.random.Generator, count: int, exponent: float = 0.9
) -> np.ndarray:
    """Zipf-shaped scores: the rank-r entry scores ~ (r+1)^-exponent.

    A small multiplicative jitter keeps the scores tie-free without
    changing the distribution's shape.
    """
    ranks = np.arange(count, dtype=np.float64)
    scores = np.power(ranks + 1.0, -exponent)
    jitter = 1.0 + 0.01 * rng.random(count)
    scores = scores * jitter
    return scores / scores.max()


def synthetic_index(
    num_lists: int = 3,
    list_length: int = 10_000,
    num_docs: int = 50_000,
    distribution: str = "uniform",
    zipf_exponent: float = 0.9,
    overlap: float = 0.5,
    block_size: int = DEFAULT_BLOCK_SIZE,
    seed: int = 7,
) -> Tuple[InvertedBlockIndex, List[str]]:
    """Build an index of ``num_lists`` lists with a controlled distribution.

    ``overlap`` in [0, 1] is the fraction of each list's documents drawn
    from a shared pool (rather than the full universe), controlling how
    often lists intersect — i.e. how much score aggregation actually
    happens.  Returns the index plus the generated term names (a synthetic
    "query" touching every list).
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be within [0, 1]")
    if list_length > num_docs:
        raise ValueError("list_length cannot exceed num_docs")
    rng = np.random.default_rng(seed)
    shared_pool_size = max(list_length, int(num_docs * 0.2))
    shared_pool = rng.choice(num_docs, size=shared_pool_size, replace=False)

    postings: Dict[str, list] = {}
    terms = []
    for i in range(num_lists):
        term = "list%02d" % i
        terms.append(term)
        from_shared = int(overlap * list_length)
        shared_docs = rng.choice(
            shared_pool, size=from_shared, replace=False
        )
        rest = rng.choice(
            num_docs, size=list_length - from_shared, replace=False
        )
        docs = np.unique(np.concatenate([shared_docs, rest]))
        if distribution == "uniform":
            scores = uniform_scores(rng, docs.size)
        elif distribution == "zipf":
            scores = zipf_scores(rng, docs.size, exponent=zipf_exponent)
        else:
            raise ValueError("unknown distribution %r" % distribution)
        postings[term] = list(zip(docs.tolist(), scores.tolist()))
    index = build_index(postings, num_docs=num_docs, block_size=block_size)
    return index, terms
