"""Synthetic TREC-Terabyte-like text collection (substitute dataset).

The real TREC Terabyte collection (25M .gov pages, 426GB) is unavailable
offline; this generator reproduces the statistical properties that drive the
paper's scheduling results at laptop scale:

* Zipfian vocabulary — realistic, strongly varying list lengths;
* log-normal document lengths — the spread behind BM25's per-list score
  distribution;
* topic structure — documents draw a fraction of their tokens from a
  topic-specific sub-vocabulary, so terms of the same topic *co-occur* far
  more than independence predicts (the correlations that Sec. 3.4 exploits);
* keyword queries built from mid-frequency terms of a shared topic, like
  the TREC title queries (avg m = 2.9), plus expanded variants drawn from
  the same topic pool, like the TREC description fields (avg m = 8.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..scoring.base import Corpus


@dataclass
class TextWorkload:
    """A synthetic corpus plus its keyword-query workloads."""

    corpus: Corpus
    queries: List[List[str]]
    expanded_queries: List[List[str]]
    name: str = "terabyte-like"


def _zipf_weights(size: int, exponent: float, shift: float = 2.7) -> np.ndarray:
    """Normalized Zipf-Mandelbrot weights over ``size`` items."""
    ranks = np.arange(size, dtype=np.float64)
    weights = 1.0 / np.power(ranks + shift, exponent)
    return weights / weights.sum()


def _sample_from_weights(
    rng: np.random.Generator, weights: np.ndarray, count: int
) -> np.ndarray:
    """Draw ``count`` indices i.i.d. from a categorical distribution."""
    cumulative = np.cumsum(weights)
    cumulative[-1] = 1.0
    return np.searchsorted(cumulative, rng.random(count), side="right")


def _generate(
    num_docs: int,
    vocab_size: int,
    num_topics: int,
    topic_vocab: int,
    topic_mix: float,
    avg_doc_length: float,
    zipf_exponent: float,
    seed: int,
) -> Tuple[Corpus, np.ndarray]:
    # Defaults below (50 topics of ~2,000 docs, 60-term topic vocabularies,
    # ~200-token docs) were calibrated so that a multi-keyword query's true
    # top-k are topically focused docs that head *all* query lists
    # simultaneously — the geometry on which threshold algorithms save work.
    """Build the corpus; also return the topic -> term-pool matrix."""
    rng = np.random.default_rng(seed)

    # Document lengths: log-normal around the requested mean, floor 20.
    # The moderate sigma matters: length normalization spreads the tf = 1
    # bulk of a BM25 list into a decaying tail, but a too-wide spread would
    # flood every list head with uncorrelated short-document noise and
    # destroy the cross-list score correlation of the true top-k.
    sigma = 0.35
    mu = np.log(avg_doc_length) - 0.5 * sigma * sigma
    lengths = np.maximum(
        rng.lognormal(mu, sigma, size=num_docs).astype(np.int64), 20
    )
    doc_topics = rng.integers(0, num_topics, size=num_docs)

    # Topic sub-vocabularies: biased toward mid-frequency terms so that
    # topical terms produce the medium-length lists real queries hit.
    mid_lo, mid_hi = vocab_size // 200, vocab_size // 2
    topic_terms = np.stack(
        [
            rng.choice(
                np.arange(mid_lo, mid_hi), size=topic_vocab, replace=False
            )
            for _ in range(num_topics)
        ]
    )

    # Per-document topical intensity: most documents mention their topic in
    # passing, a heavy lognormal tail is *focused* on it.  The intensity
    # scales the term frequencies of ALL the topic's head terms at once,
    # which correlates a document's scores ACROSS the lists of same-topic
    # query terms — the top-k of a multi-keyword query are documents that
    # score high in every list simultaneously, exactly as in real
    # relevance data, and the continuous tail makes min-k decay smoothly
    # with k.
    quality = rng.lognormal(0.0, 1.1, size=num_docs)
    doc_mix = np.clip(topic_mix * 0.6 * quality, 0.02, 0.95)

    # Token stream (vectorized): per token, a doc, a source (topic vs
    # background), and a term.
    doc_of_token = np.repeat(np.arange(num_docs), lengths)
    total_tokens = int(lengths.sum())
    from_topic = rng.random(total_tokens) < doc_mix[doc_of_token]

    background_weights = _zipf_weights(vocab_size, zipf_exponent)
    terms = _sample_from_weights(rng, background_weights, total_tokens)

    # Concentrated topical distribution: a topical document repeats its
    # topic's head terms several times (tf 2-5), which puts genuinely
    # top-heavy heads on the topical posting lists.
    topical_weights = _zipf_weights(topic_vocab, 1.15)
    topical_slots = _sample_from_weights(
        rng, topical_weights, int(from_topic.sum())
    )
    token_topics = doc_topics[doc_of_token[from_topic]]
    terms[from_topic] = topic_terms[token_topics, topical_slots]

    # Aggregate the token stream into (doc, term, tf) postings.
    keys = doc_of_token * vocab_size + terms
    unique_keys, tfs = np.unique(keys, return_counts=True)
    posting_docs = unique_keys // vocab_size
    posting_terms = unique_keys % vocab_size


    vocabulary = ["term%05d" % v for v in range(vocab_size)]
    corpus = Corpus(posting_docs, posting_terms, tfs, lengths, vocabulary)
    return corpus, topic_terms


def generate_corpus(
    num_docs: int = 100_000,
    vocab_size: int = 20_000,
    num_topics: int = 50,
    topic_vocab: int = 60,
    topic_mix: float = 0.45,
    avg_doc_length: float = 200.0,
    zipf_exponent: float = 1.05,
    seed: int = 7,
) -> Corpus:
    """Generate the topical Zipfian corpus.

    ``topic_mix`` is the fraction of each document's tokens drawn from its
    topic's sub-vocabulary instead of the global Zipf background — it
    controls how correlated same-topic posting lists are.
    """
    corpus, _ = _generate(
        num_docs, vocab_size, num_topics, topic_vocab, topic_mix,
        avg_doc_length, zipf_exponent, seed,
    )
    return corpus


def generate_queries(
    corpus: Corpus,
    num_queries: int = 20,
    mean_terms: float = 2.9,
    max_terms: int = 5,
    df_fraction_band: Tuple[float, float] = (0.03, 0.55),
    topic_pools: Optional[np.ndarray] = None,
    topic_share: float = 0.6,
    seed: int = 17,
) -> List[List[str]]:
    """Keyword queries over mid-frequency, topically-correlated terms.

    Terms are restricted to a document-frequency band (as a fraction of the
    collection) so every list spans multiple index blocks.  When
    ``topic_pools`` is given (topic id -> term-id pool), about
    ``topic_share`` of each query's terms come from one randomly chosen
    topic's pool — reproducing the term correlations of real query logs.
    """
    rng = np.random.default_rng(seed)
    n = max(corpus.num_docs, 1)
    fractions = corpus.doc_freq / n
    lo, hi = df_fraction_band
    eligible = np.flatnonzero((fractions >= lo) & (fractions <= hi))
    if eligible.size < max_terms:
        raise ValueError("df band too narrow for this corpus")
    eligible_set = set(eligible.tolist())
    # Sample terms proportionally to their document frequency: real query
    # terms skew toward frequent words, and long lists are what makes the
    # scheduling problem non-trivial.
    weights = fractions[eligible]
    weights = weights / weights.sum()

    queries: List[List[str]] = []
    for _ in range(num_queries):
        m = int(np.clip(round(rng.normal(mean_terms, 1.0)), 2, max_terms))
        chosen: List[int] = []
        if topic_pools is not None:
            topic = int(rng.integers(0, topic_pools.shape[0]))
            # Keep the pool's slot order: slot 0 is the topic's most
            # characteristic term (highest topical weight).  Queries built
            # from the head slots hit the terms that topical documents
            # actually repeat — that cross-list correlation is what makes
            # the true top-k stand out, as in real relevance queries.
            pool = [t for t in topic_pools[topic] if t in eligible_set]
            wanted = min(int(round(topic_share * m)), len(pool))
            head = pool[: max(wanted * 2, wanted)]
            rng.shuffle(head)
            chosen.extend(head[:wanted])
        while len(chosen) < m:
            term = int(eligible[_pick_weighted(rng, weights)])
            if term not in chosen:
                chosen.append(term)
        queries.append([corpus.vocabulary[t] for t in chosen])
    return queries


def _pick_weighted(rng: np.random.Generator, weights: np.ndarray) -> int:
    cumulative = np.cumsum(weights)
    return int(np.searchsorted(cumulative / cumulative[-1], rng.random()))


def generate_workload(
    num_docs: int = 100_000,
    num_queries: int = 20,
    seed: int = 7,
    vocab_size: int = 20_000,
    num_topics: int = 50,
    topic_vocab: int = 60,
    topic_mix: float = 0.45,
    avg_doc_length: float = 200.0,
    zipf_exponent: float = 1.05,
) -> TextWorkload:
    """Corpus + short (m~3) and expanded (m~8) query workloads."""
    corpus, topic_terms = _generate(
        num_docs, vocab_size, num_topics, topic_vocab, topic_mix,
        avg_doc_length, zipf_exponent, seed,
    )
    queries = generate_queries(
        corpus, num_queries=num_queries, mean_terms=2.9, max_terms=5,
        topic_pools=topic_terms, topic_share=1.0, seed=seed + 10,
    )
    expanded = generate_queries(
        corpus, num_queries=num_queries, mean_terms=8.3, max_terms=15,
        df_fraction_band=(0.02, 0.6), topic_pools=topic_terms,
        topic_share=1.0, seed=seed + 20,
    )
    return TextWorkload(
        corpus=corpus, queries=queries, expanded_queries=expanded
    )
