"""Named dataset bundles used by examples, tests, and benchmarks.

Each bundle pairs an inverted block-index with a query workload, mirroring
the paper's three collections (plus the Sec. 6.4 synthetic distributions):

* ``terabyte-bm25`` / ``terabyte-tfidf`` — synthetic TREC-Terabyte-like
  topical text corpus, scored with BM25 or TF-IDF;
* ``terabyte-expanded`` — same BM25 index, long queries (avg m ~ 8.3);
* ``imdb`` — similarity-expanded movie catalog;
* ``httplog`` — heavy-tailed per-day traffic log with interval queries;
* ``uniform`` / ``zipf`` — controlled artificial score distributions.

Bundles are cached per (name, scale, seed): every benchmark and test that
asks for the same configuration shares one in-memory build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..scoring.bm25 import BM25
from ..scoring.tfidf import TfIdf
from ..storage.block_index import InvertedBlockIndex
from ..storage.index_builder import build_index
from . import httplog, imdb, synthetic, text_corpus
from .padding import pad_posting_lists

#: Block size for the scaled-down collections.  The paper uses 32,768 for
#: lists with millions of entries; 1,024 keeps the same
#: lists-span-many-blocks geometry at our synthetic scale.
DEFAULT_BLOCK = 1024

#: Background padding factor for the text collections (see
#: :mod:`repro.data.padding` for why the tails must be stretched).
PAD_FACTOR = 6.0


@dataclass
class Dataset:
    """An index plus the query workload that runs against it."""

    name: str
    index: InvertedBlockIndex
    queries: List[List[str]]
    description: str = ""

    @property
    def num_docs(self) -> int:
        return self.index.num_docs


_CACHE: Dict[Tuple[str, float, int], Dataset] = {}


def load_dataset(name: str, scale: float = 1.0, seed: int = 7) -> Dataset:
    """Build (or fetch from cache) a named dataset bundle.

    ``scale`` multiplies the collection size; benchmarks use 1.0, tests use
    small fractions for speed.
    """
    key = (name, float(scale), int(seed))
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            "unknown dataset %r; available: %s" % (name, sorted(_BUILDERS))
        )
    dataset = builder(scale, seed)
    _CACHE[key] = dataset
    return dataset


def available_datasets() -> List[str]:
    """All dataset names accepted by :func:`load_dataset`."""
    return sorted(_BUILDERS)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _text_workload(scale: float, seed: int) -> text_corpus.TextWorkload:
    return text_corpus.generate_workload(
        num_docs=max(int(100_000 * scale), 2_000),
        vocab_size=max(int(20_000 * scale), 1_000),
        num_topics=max(int(50 * min(scale, 1.0)), 8),
        seed=seed,
    )


_TEXT_CACHE: Dict[Tuple[float, int], text_corpus.TextWorkload] = {}


def _shared_text_workload(scale: float, seed: int) -> text_corpus.TextWorkload:
    key = (float(scale), int(seed))
    workload = _TEXT_CACHE.get(key)
    if workload is None:
        workload = _text_workload(scale, seed)
        _TEXT_CACHE[key] = workload
    return workload


def _query_terms(*query_sets: List[List[str]]) -> List[str]:
    terms = []
    seen = set()
    for queries in query_sets:
        for query in queries:
            for term in query:
                if term not in seen:
                    seen.add(term)
                    terms.append(term)
    return terms


def _build_terabyte(scale: float, seed: int, model, suffix: str) -> Dataset:
    workload = _shared_text_workload(scale, seed)
    terms = _query_terms(workload.queries, workload.expanded_queries)
    postings = model.scored_postings(workload.corpus, terms=terms)
    # Stretch the list tails with statistically modeled background postings
    # — the documented substitute for the paper's million-entry lists.
    postings, num_docs = pad_posting_lists(
        postings, workload.corpus.num_docs, factor=PAD_FACTOR, seed=seed + 90
    )
    index = build_index(
        postings, num_docs=num_docs, block_size=DEFAULT_BLOCK
    )
    return Dataset(
        name="terabyte-%s" % suffix,
        index=index,
        queries=workload.queries,
        description="synthetic Terabyte-like corpus, %s scores" % suffix,
    )


def _terabyte_bm25(scale: float, seed: int) -> Dataset:
    # k1 = 5 widens BM25's effective tf dynamic range to match the synthetic
    # corpus (whose idf variation is weaker than real web text); the score
    # *shape* per list is what the scheduling experiments depend on.
    return _build_terabyte(scale, seed, BM25(k1=5.0, b=0.75), "bm25")


def _terabyte_tfidf(scale: float, seed: int) -> Dataset:
    return _build_terabyte(scale, seed, TfIdf(), "tfidf")


def _terabyte_expanded(scale: float, seed: int) -> Dataset:
    base = load_dataset("terabyte-bm25", scale=scale, seed=seed)
    workload = _shared_text_workload(scale, seed)
    return Dataset(
        name="terabyte-expanded",
        index=base.index,
        queries=workload.expanded_queries,
        description="Terabyte-like BM25 index, expanded queries (m ~ 8.3)",
    )


def _imdb(scale: float, seed: int) -> Dataset:
    workload = imdb.generate_workload(
        num_movies=max(int(25_000 * scale), 500),
        block_size=DEFAULT_BLOCK,
        seed=seed + 4,
    )
    return Dataset(
        name="imdb",
        index=workload.index,
        queries=workload.queries,
        description="synthetic IMDB-like catalog with Dice-expanded lists",
    )


def _httplog(scale: float, seed: int) -> Dataset:
    workload = httplog.generate_workload(
        num_users=max(int(25_000 * scale), 300),
        block_size=DEFAULT_BLOCK,
        seed=seed + 16,
    )
    return Dataset(
        name="httplog",
        index=workload.index,
        queries=workload.queries,
        description="synthetic WorldCup-like HTTP log, interval queries",
    )


def _synthetic(distribution: str):
    def build(scale: float, seed: int) -> Dataset:
        # Five independent 3-list draws in one index; each query covers one
        # triple, so workload averages are over five instances.
        groups = 5
        per_query = 3
        index, terms = synthetic.synthetic_index(
            num_lists=groups * per_query,
            list_length=max(int(10_000 * scale), 200),
            num_docs=max(int(50_000 * scale), 1000),
            distribution=distribution,
            block_size=DEFAULT_BLOCK,
            seed=seed + 32,
        )
        queries = [
            terms[g * per_query:(g + 1) * per_query] for g in range(groups)
        ]
        return Dataset(
            name=distribution,
            index=index,
            queries=queries,
            description="artificial %s score distribution" % distribution,
        )

    return build


_BUILDERS = {
    "terabyte-bm25": _terabyte_bm25,
    "terabyte-tfidf": _terabyte_tfidf,
    "terabyte-expanded": _terabyte_expanded,
    "imdb": _imdb,
    "httplog": _httplog,
    "uniform": _synthetic("uniform"),
    "zipf": _synthetic("zipf"),
}
