"""Distributed (document-partitioned) top-k execution.

The paper's scheduling framework runs on one node's index lists; this
package scales it across N document-partitioned shards while keeping the
bound algebra — and therefore the results — exact:

* :mod:`repro.distrib.partition` — splits a corpus into shards (hash or
  round-robin document assignment) and builds one
  :class:`~repro.storage.block_index.InvertedBlockIndex` per shard with
  global doc ids preserved,
* :mod:`repro.distrib.shard` — runs the existing
  :class:`~repro.core.executor.QueryExecutor` per shard, concurrently,
  with per-shard COST/#SA/#RA accounting and per-shard deadline budgets,
* :mod:`repro.distrib.process` — the true-parallelism backend: one
  persistent worker *process* per shard, each serving requests over a
  pipe from its own mmap'd on-disk copy of the shard index (byte
  identical to the thread backend; the GIL stops mattering),
* :mod:`repro.distrib.coordinator` — merges shard results in rounds,
  maintaining a global top-k over shard-local worstscores and stopping
  shards early once the global ``min-k`` dominates their bestscore bound
  (with a gather-all baseline retained for parity testing),
* :mod:`repro.distrib.degrade` — maps shard failures to degraded but
  well-formed results with an ``exhausted_shards`` report, mirroring the
  single-node ``exhausted_lists`` contract.

The user-facing entry point is
:class:`repro.core.session.ShardedSession`.
"""

from .coordinator import (
    MergeCoordinator,
    ShardedExecutionError,
    ShardedTopKResult,
)
from .degrade import DegradePolicy, ShardFailure
from .partition import ShardedIndex, partition_index, partition_postings
from .process import ProcessShardExecutor, ShardWorkerDied, ShardWorkerError
from .shard import ShardExecutor, ShardOutcome

__all__ = [
    "DegradePolicy",
    "MergeCoordinator",
    "ProcessShardExecutor",
    "ShardExecutor",
    "ShardFailure",
    "ShardOutcome",
    "ShardWorkerDied",
    "ShardWorkerError",
    "ShardedExecutionError",
    "ShardedIndex",
    "ShardedTopKResult",
    "partition_index",
    "partition_postings",
]
