"""The merge coordinator: threshold-aware top-k aggregation over shards.

Fagin et al.'s middleware model says the worstscore/bestscore bound
algebra survives distribution untouched; "Beyond Quantile Methods"
motivates using per-shard bound estimates to stop draining shards early.
The :class:`MergeCoordinator` implements both on top of the shard
execution layer:

**Round protocol (``mode="bounded"``).**  Each coordinator round runs
every still-active shard under a growing per-shard cost budget (the
anytime :class:`~repro.core.executor.QueryDeadline` machinery — a shard
paused by its budget returns a degraded partial result whose intervals
are still correct).  After each round the coordinator:

1. merges every shard's current top-k candidates into a global view and
   takes the k-th largest **worstscore** as the global ``min-k`` — a
   certified lower bound on the true k-th best score (document
   partitioning makes shard-local scores global),
2. retires shards that finished their own threshold test (*complete*),
3. **prunes** every still-running shard whose *remaining bound* — the
   highest score any of its unreported documents could reach, captured by
   the shard-side bound tap — is strictly below the global ``min-k``:
   nothing that shard still hides can enter the global top-k.

Escalating budgets are re-executions: a shard resumed at a deeper budget
re-runs its (deterministic) execution from scratch.  This simulates
resumable shard cursors, so the merged COST/#SA/#RA charge the *deepest*
run per shard — what a resuming implementation would pay — while the
cumulative engine-round count across all executions is reported
separately (``shard_rounds``) for honest scheduling comparisons.

**Gather-all baseline (``mode="gather"``).**  One round, no coordinator
budgets: every shard runs its own termination test to completion.  Kept
for parity testing — the bounded coordinator must return the identical
top-k — and as the naive-cost yardstick in benchmarks.

**Resolution.**  Before ranking, every merged candidate whose interval is
still open is resolved by random-access lookups on its home shard (one
per query list, charged at the random-access cost ratio).  The final
ranking is therefore by *exact* score (ties broken by ascending doc id),
independent of shard count and of how deep each shard happened to scan —
the property the parity suite pins against single-node golden results.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.executor import QueryDeadline
from ..core.planner import QueryPlan
from ..core.results import (
    DEGRADE_DEAD_LIST,
    DEGRADE_DEAD_SHARD,
    DEGRADE_DEADLINE,
    QueryStats,
    RankedItem,
    TopKResult,
)
from ..core.session import DEFAULT_ALGORITHM
from .degrade import DegradePolicy, ShardFailure
from .shard import ShardExecutor, ShardOutcome

#: Coordinator rounds before active shards are forced to completion.
DEFAULT_MAX_ROUNDS = 8

#: First-round budget as a fraction of a shard's full sorted-scan cost.
DEFAULT_BUDGET_FRACTION = 0.5

#: Interval width below which a candidate counts as already resolved.
RESOLVED_EPSILON = 1e-12


class ShardedExecutionError(RuntimeError):
    """Too many shards failed for the degrade policy to tolerate."""

    def __init__(self, failures: List[ShardFailure]) -> None:
        super().__init__(
            "sharded query aborted: %s"
            % "; ".join(f.describe() for f in failures)
        )
        self.failures = list(failures)


@dataclass
class ShardedTopKResult(TopKResult):
    """A merged top-k answer plus the distribution-level observables.

    Extends the single-node :class:`~repro.core.results.TopKResult`
    contract: ``exhausted_shards`` mirrors ``exhausted_lists`` one level
    up (shards that failed entirely), ``pruned_shards`` names shards
    stopped early by the bound test, ``unfinished_shards`` names shards
    that were still mid-scan when the query's deadline expired (their
    partial evidence is merged; nothing was lost, just not finished),
    and ``shard_rounds`` is the cumulative engine-round count across
    every shard execution (including budget-escalation re-runs) — the
    coordinator's scheduling-efficiency metric.
    """

    exhausted_shards: List[int] = field(default_factory=list)
    unfinished_shards: List[int] = field(default_factory=list)
    pruned_shards: List[int] = field(default_factory=list)
    shard_stats: Dict[int, QueryStats] = field(default_factory=dict)
    coordinator_rounds: int = 0
    shard_rounds: int = 0
    resolution_accesses: int = 0
    mode: str = "bounded"
    #: shards never executed because their histogram-derived upper bound
    #: stayed below the plan-time predicted threshold (certified against
    #: the final global ``min-k`` by the re-admission loop)
    skipped_shards: List[int] = field(default_factory=list)
    #: shards skipped or prediction-pruned whose bound later turned out
    #: not to be certified — re-run unbounded before assembly
    readmitted_shards: List[int] = field(default_factory=list)
    #: the plan-time predicted threshold the coordinator ran with
    predicted_threshold: Optional[float] = None


@dataclass
class _ShardTrack:
    """Coordinator-side bookkeeping for one shard across rounds."""

    latest: Optional[ShardOutcome] = None
    cumulative_rounds: int = 0
    failure: Optional[ShardFailure] = None
    pruned: bool = False
    #: never executed: static upper bound below the predicted threshold
    skipped: bool = False
    #: pruned against the prediction while still above the certified
    #: global ``min-k`` — must be re-admitted unless the final ``min-k``
    #: catches up with its remaining bound
    pruned_by_prediction: bool = False

    @property
    def items(self) -> List[RankedItem]:
        if self.latest is None or self.latest.result is None:
            return []
        return self.latest.result.items


class MergeCoordinator:
    """Combines shard executions into one exact (or honestly degraded)
    top-k answer.

    ``round_budget`` is the first-round per-shard cost budget; following
    rounds double it.  ``None`` derives it per shard as
    ``DEFAULT_BUDGET_FRACTION`` times the shard's full sorted-scan cost —
    deep enough to certify a competitive global ``min-k`` in one round on
    typical score distributions, shallow enough that pruned shards save
    roughly half their drain.  ``max_rounds`` bounds budget escalation;
    the final round runs unbounded so exact queries always terminate.
    """

    def __init__(
        self,
        executor: ShardExecutor,
        round_budget: Optional[float] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        degrade: Optional[DegradePolicy] = None,
    ) -> None:
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        if round_budget is not None and round_budget <= 0:
            raise ValueError("round_budget must be positive")
        self.executor = executor
        self.sharded = executor.sharded
        self.round_budget = round_budget
        self.max_rounds = max_rounds
        self.degrade = degrade if degrade is not None else DegradePolicy()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def query(
        self,
        terms: Sequence[str],
        k: int,
        algorithm: str = DEFAULT_ALGORITHM,
        weights: Optional[Sequence[float]] = None,
        prune_epsilon: float = 0.0,
        deadline: Optional[QueryDeadline] = None,
        mode: str = "bounded",
        prediction: Optional[object] = None,
    ) -> ShardedTopKResult:
        """Run one sharded top-k query; see the module docstring.

        ``prediction`` (a :class:`~repro.stats.threshold.PredictedThreshold`)
        enables plan-time shard skipping and a tighter round-loop prune
        floor in ``bounded`` mode: shards whose histogram-derived upper
        bound cannot reach the predicted threshold are never executed,
        and still-running shards are pruned against
        ``max(min-k, prediction)``.  Both shortcuts are guarded by a
        re-admission loop that re-runs (unbounded) every shard whose
        skip/prune cannot be certified against the *final* global
        ``min-k`` — so the prediction shapes the schedule, never the
        answer.  Ignored in ``gather`` mode.
        """
        from ..core.algorithms import plan as plan_query

        if mode not in ("bounded", "gather"):
            raise ValueError(
                "unknown coordinator mode %r; valid: bounded, gather" % mode
            )
        plan = plan_query(
            terms,
            k,
            algorithm,
            weights=weights,
            prune_epsilon=prune_epsilon,
        )
        started = time.perf_counter()
        tracks = {
            sid: _ShardTrack() for sid in range(self.sharded.num_shards)
        }
        caps = self._cost_caps(deadline)
        wall = deadline.wall_clock_seconds if deadline else None
        tau: Optional[float] = None
        if prediction is not None and mode == "bounded":
            tau = float(prediction.value)
        steps = self._budget_steps(plan, tau)

        rounds = 0
        active = set(tracks)
        deadline_expired = False
        unfinished: set = set()
        skipped_bounds: Dict[int, float] = {}
        if tau is not None:
            # Plan-time shard skipping: a shard whose best conceivable
            # aggregated score (sum of per-list histogram maxima) cannot
            # reach the predicted threshold is not executed at all.  The
            # re-admission loop below certifies every skip against the
            # final global min-k.
            for sid in sorted(active):
                bound = self._shard_upper_bound(sid, plan)
                if bound < tau:
                    tracks[sid].skipped = True
                    skipped_bounds[sid] = bound
                    active.discard(sid)
        while active:
            rounds += 1
            final_round = mode == "gather" or rounds >= self.max_rounds
            shard_deadlines = {
                sid: self._shard_deadline(
                    sid, rounds, steps, caps, wall, started, final_round
                )
                for sid in active
            }
            outcomes = self.executor.execute_round(
                plan, sorted(active), shard_deadlines
            )
            failures = [t.failure for t in tracks.values() if t.failure]
            for outcome in outcomes:
                track = tracks[outcome.shard_id]
                track.cumulative_rounds += outcome.engine_rounds
                failure = self.degrade.classify(outcome, plan.terms, rounds)
                if failure is not None:
                    track.failure = failure
                    failures.append(failure)
                    if not self.degrade.keep_partial_items:
                        track.latest = None
                    active.discard(outcome.shard_id)
                    continue
                track.latest = outcome
                if outcome.complete:
                    active.discard(outcome.shard_id)
            if self.degrade.should_abort(failures, self.sharded.num_shards):
                raise ShardedExecutionError(failures)
            min_k = self._global_min_k(tracks, plan.k)
            prune_floor = min_k if tau is None else max(min_k, tau)
            for sid in list(active):
                track = tracks[sid]
                outcome = track.latest
                if outcome is None:
                    continue
                if outcome.budget_stopped and (
                    outcome.remaining_bound < prune_floor
                ):
                    # Bound-based shard pruning: nothing this shard has
                    # not reported can still reach the global top-k (or,
                    # with a prediction, the predicted threshold — an
                    # uncertified prune the re-admission loop re-checks).
                    track.pruned = True
                    if tau is not None and outcome.remaining_bound >= min_k:
                        track.pruned_by_prediction = True
                    active.discard(sid)
                elif outcome.budget_stopped and self._cap_spent(
                    shard_deadlines.get(sid), caps[sid]
                ):
                    # Per-shard share of the query budget is spent; the
                    # partial result stands (anytime contract).
                    deadline_expired = True
                    unfinished.add(sid)
                    active.discard(sid)
            if wall is not None and (
                time.perf_counter() - started >= wall
            ):
                # The wall clock ran out *between* merge rounds: every
                # shard still active is unfinished — its partial evidence
                # is already merged, but it never passed a termination
                # test.
                deadline_expired = deadline_expired or bool(active)
                unfinished.update(active)
                break

        readmitted: set = set()
        readmissions = 0
        if tau is not None and not deadline_expired:
            # Safety re-admission: every skip or prediction-driven prune
            # must be certified against the *final* global min-k.  Shards
            # that fail certification are re-run unbounded; min-k only
            # rises and each shard re-admits at most once, so this loop
            # terminates after at most num_shards iterations.
            while True:
                if wall is not None and (
                    time.perf_counter() - started >= wall
                ):
                    deadline_expired = True
                    break
                min_k_final = self._global_min_k(tracks, plan.k)
                due = [
                    sid
                    for sid, track in sorted(tracks.items())
                    if track.failure is None
                    and (
                        (
                            track.skipped
                            and skipped_bounds.get(sid, 0.0) >= min_k_final
                        )
                        or (
                            track.pruned_by_prediction
                            and track.latest is not None
                            and track.latest.remaining_bound >= min_k_final
                        )
                    )
                ]
                if not due:
                    break
                rounds += 1
                readmissions += 1
                outcomes = self.executor.execute_round(
                    plan, due, {sid: None for sid in due}
                )
                failures = [
                    t.failure for t in tracks.values() if t.failure
                ]
                for outcome in outcomes:
                    track = tracks[outcome.shard_id]
                    track.skipped = False
                    track.pruned = False
                    track.pruned_by_prediction = False
                    track.cumulative_rounds += outcome.engine_rounds
                    readmitted.add(outcome.shard_id)
                    failure = self.degrade.classify(
                        outcome, plan.terms, rounds
                    )
                    if failure is not None:
                        track.failure = failure
                        failures.append(failure)
                        if not self.degrade.keep_partial_items:
                            track.latest = None
                        continue
                    track.latest = outcome
                if self.degrade.should_abort(
                    failures, self.sharded.num_shards
                ):
                    raise ShardedExecutionError(failures)

        return self._assemble(
            plan, tracks, rounds, deadline_expired, unfinished, started,
            mode, tau=tau, readmitted=readmitted, readmissions=readmissions,
        )

    # ------------------------------------------------------------------
    # Budgets
    # ------------------------------------------------------------------
    def _cost_caps(
        self, deadline: Optional[QueryDeadline]
    ) -> Dict[int, Optional[float]]:
        """Per-shard cost caps: the parent budget split, never summing
        beyond it (see :meth:`QueryDeadline.split`)."""
        n = self.sharded.num_shards
        if deadline is None or deadline.cost_budget is None:
            return {sid: None for sid in range(n)}
        shares = deadline.split(n)
        return {sid: shares[sid].cost_budget for sid in range(n)}

    def _budget_steps(
        self, plan: QueryPlan, tau: Optional[float] = None
    ) -> Dict[int, float]:
        """First-round cost budget per shard (doubles every round).

        With a predicted threshold the first budget is raised (never
        lowered) to the scan depth at which the shard's bound algebra can
        first certify ``tau``: the prefix of each list whose scores stay
        above ``tau / m`` (``m`` = query terms on the shard), read off
        the per-list histograms.  Until the ``high_i`` sum falls below
        ``tau`` no candidate or shard bound can drop below the predicted
        threshold, so shallower rounds are provably wasted ladder steps —
        skipping them is how the prediction cuts coordinator rounds.
        """
        steps = {}
        for sid, shard in enumerate(self.sharded.shards):
            if self.round_budget is not None:
                step = float(self.round_budget)
            else:
                drain = sum(
                    len(shard.list_for(term))
                    for term in plan.terms
                    if term in shard
                )
                step = max(DEFAULT_BUDGET_FRACTION * drain, 1.0)
            if tau is not None and tau > 0.0:
                step = max(step, self._certify_depth(sid, plan, tau))
            steps[sid] = step
        return steps

    def _certify_depth(
        self, sid: int, plan: QueryPlan, tau: float
    ) -> float:
        """Estimated sorted-access cost before a shard's ``high_i`` sum
        can fall below ``tau`` (0.0 when the shard holds no query term)."""
        shard = self.sharded.shards[sid]
        stats = self.executor.session.stats_for(shard)
        weights = plan.weights or (1.0,) * len(plan.terms)
        present = [
            (term, float(weight))
            for term, weight in zip(plan.terms, weights)
            if term in shard
        ]
        if not present:
            return 0.0
        per_list = tau / len(present)
        depth = 0.0
        for term, weight in present:
            hist = stats.histogram(term)
            if weight != 1.0:
                hist = hist.scaled(weight)
            depth += hist.rank_at_score(per_list)
        return depth

    def _shard_deadline(
        self,
        sid: int,
        round_no: int,
        steps: Dict[int, float],
        caps: Dict[int, Optional[float]],
        wall: Optional[float],
        started: float,
        final_round: bool,
    ) -> Optional[QueryDeadline]:
        """The cumulative anytime budget for one shard this round."""
        budget: Optional[float]
        if final_round:
            budget = None  # run the shard's own termination test out
        else:
            budget = steps[sid] * (2.0 ** (round_no - 1))
        if caps[sid] is not None:
            budget = caps[sid] if budget is None else min(budget, caps[sid])
        wall_left = None
        if wall is not None:
            wall_left = max(wall - (time.perf_counter() - started), 1e-6)
        if budget is None and wall_left is None:
            return None
        return QueryDeadline(
            wall_clock_seconds=wall_left, cost_budget=budget
        )

    @staticmethod
    def _cap_spent(
        issued: Optional[QueryDeadline], cap: Optional[float]
    ) -> bool:
        """Whether the budget issued this round already reached the
        shard's share of the parent cost budget."""
        if cap is None or issued is None or issued.cost_budget is None:
            return False
        return issued.cost_budget >= cap

    # ------------------------------------------------------------------
    # Bound algebra
    # ------------------------------------------------------------------
    def _shard_upper_bound(self, sid: int, plan: QueryPlan) -> float:
        """Best conceivable aggregated score of any document on a shard:
        the sum of weighted per-list histogram maxima over the query
        terms the shard holds (terms absent from the shard contribute
        nothing to any of its documents)."""
        shard = self.sharded.shards[sid]
        stats = self.executor.session.stats_for(shard)
        weights = plan.weights or (1.0,) * len(plan.terms)
        bound = 0.0
        for term, weight in zip(plan.terms, weights):
            if term in shard:
                bound += float(weight) * stats.histogram(term).upper
        return bound

    @staticmethod
    def _global_min_k(tracks: Dict[int, _ShardTrack], k: int) -> float:
        """The certified global threshold: k-th largest worstscore over
        every shard's current candidates (0 while fewer than k exist).

        Selection by :func:`numpy.partition` — an exact order statistic
        (comparisons only), identical to sorting and indexing."""
        worstscores = np.fromiter(
            (
                item.worstscore
                for track in tracks.values()
                for item in track.items
            ),
            dtype=np.float64,
        )
        if worstscores.size < k:
            return 0.0
        return float(
            np.partition(worstscores, worstscores.size - k)[
                worstscores.size - k
            ]
        )

    # ------------------------------------------------------------------
    # Merge + resolution
    # ------------------------------------------------------------------
    def _resolve(
        self, sid: int, doc_id: int, plan: QueryPlan
    ) -> Tuple[Optional[float], int]:
        """Exact score of one candidate via lookups on its home shard.

        Returns ``(score, accesses)``; score is None when the shard's
        lists cannot be read (the candidate keeps its interval).
        """
        shard = self.sharded.shards[sid]
        weights = plan.weights or (1.0,) * len(plan.terms)
        total = 0.0
        accesses = 0
        for term, weight in zip(plan.terms, weights):
            try:
                accesses += 1
                score = shard.list_for(term).lookup(doc_id)
            except Exception:
                return None, accesses
            total += weight * (score if score is not None else 0.0)
        return total, accesses

    def _assemble(
        self,
        plan: QueryPlan,
        tracks: Dict[int, _ShardTrack],
        rounds: int,
        deadline_expired: bool,
        unfinished: set,
        started: float,
        mode: str,
        tau: Optional[float] = None,
        readmitted: Optional[set] = None,
        readmissions: int = 0,
    ) -> ShardedTopKResult:
        ratio = self.executor.session.cost_model.ratio
        resolution_accesses = 0
        candidates = [
            (sid, item)
            for sid, track in sorted(tracks.items())
            for item in track.items
        ]
        # Resolution: candidates with a still-open interval are refined to
        # exact scores by home-shard lookups, most-promising first
        # (descending bestscore), stopping once the k-th best exact score
        # dominates every remaining bestscore — any candidate left
        # unresolved then provably cannot enter the top-k, so skipping
        # its (RA-priced) resolution never changes the answer.
        ranked: List[Tuple[float, int, RankedItem]] = []
        exacts: List[float] = []
        pending: List[Tuple[int, RankedItem]] = []
        unresolved = False

        def settle(doc_id: int, exact: float) -> None:
            exacts.append(exact)
            ranked.append(
                (
                    exact,
                    doc_id,
                    RankedItem(
                        doc_id=doc_id, worstscore=exact, bestscore=exact
                    ),
                )
            )

        for sid, item in candidates:
            if item.bestscore - item.worstscore <= RESOLVED_EPSILON:
                settle(item.doc_id, item.worstscore)
            else:
                pending.append((sid, item))
        pending.sort(key=lambda entry: (-entry[1].bestscore, entry[1].doc_id))
        for position, (sid, item) in enumerate(pending):
            if len(exacts) >= plan.k:
                threshold = heapq.nlargest(plan.k, exacts)[-1]
                if item.bestscore < threshold:
                    # Everything from here on is sorted below this
                    # bestscore and therefore below the threshold too.
                    for _, rest in pending[position:]:
                        ranked.append(
                            (rest.worstscore, rest.doc_id, rest)
                        )
                    break
            exact, accesses = self._resolve(sid, item.doc_id, plan)
            resolution_accesses += accesses
            if exact is None:
                unresolved = True
                ranked.append((item.worstscore, item.doc_id, item))
            else:
                settle(item.doc_id, exact)
        ranked.sort(key=lambda entry: (-entry[0], entry[1]))
        items = [entry[2] for entry in ranked[: plan.k]]

        shard_stats: Dict[int, QueryStats] = {}
        exhausted_lists: set = set()
        merged = QueryStats(
            random_accesses=resolution_accesses,
            cost=resolution_accesses * ratio,
        )
        shard_rounds = 0
        for sid, track in sorted(tracks.items()):
            shard_rounds += track.cumulative_rounds
            outcome = track.latest
            if outcome is None or outcome.result is None:
                continue
            stats = outcome.result.stats
            shard_stats[sid] = stats
            exhausted_lists.update(outcome.result.exhausted_lists)
            merged.sorted_accesses += stats.sorted_accesses
            merged.random_accesses += stats.random_accesses
            merged.cost += stats.cost
            merged.retries += stats.retries
            merged.simulated_io_wait_ms += stats.simulated_io_wait_ms
            merged.peak_queue_size = max(
                merged.peak_queue_size, stats.peak_queue_size
            )
            # Like COST, stats.rounds charges the deepest run per shard —
            # what a resumable shard implementation would pay.  The
            # cumulative re-execution count (including budget-escalation
            # re-runs) is reported separately as ``shard_rounds``.
            merged.rounds += outcome.engine_rounds
            merged.prediction_drops += stats.prediction_drops
        merged.wall_time_seconds = time.perf_counter() - started
        # Every re-admission round is a coordinator-level safety fallback:
        # the prediction proved too aggressive for some shard.
        merged.prediction_fallback = readmissions

        exhausted_shards = sorted(
            sid for sid, track in tracks.items() if track.failure
        )
        degraded = (
            deadline_expired
            or unresolved
            or bool(exhausted_shards)
            or bool(exhausted_lists)
        )
        reason = None
        if degraded:
            # Primary-cause priority (mirrors the single-node executor):
            # dead shard > dead list > deadline.  Failed resolution
            # lookups count as a dead list — a list on the candidate's
            # home shard could not be read.
            if exhausted_shards:
                reason = DEGRADE_DEAD_SHARD
            elif exhausted_lists or unresolved:
                reason = DEGRADE_DEAD_LIST
            else:
                reason = DEGRADE_DEADLINE
        return ShardedTopKResult(
            items=items,
            stats=merged,
            algorithm=plan.algorithm,
            degraded=degraded,
            degrade_reason=reason,
            exhausted_lists=sorted(exhausted_lists),
            exhausted_shards=exhausted_shards,
            unfinished_shards=sorted(unfinished),
            pruned_shards=sorted(
                sid for sid, track in tracks.items() if track.pruned
            ),
            shard_stats=shard_stats,
            coordinator_rounds=rounds,
            shard_rounds=shard_rounds,
            resolution_accesses=resolution_accesses,
            mode=mode,
            skipped_shards=sorted(
                sid for sid, track in tracks.items() if track.skipped
            ),
            readmitted_shards=sorted(readmitted or ()),
            predicted_threshold=tau,
        )
