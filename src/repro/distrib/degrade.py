"""Shard-failure resilience: degraded-but-well-formed merged results.

The single-node engine already has a degradation contract: a list whose
retry budget is exhausted is dropped, named in ``result.exhausted_lists``,
and every returned score interval stays correct (the dropped list's
``high_i`` freezes).  This module lifts that contract one level up, to
shards:

* a shard whose execution **raised** produced no result at all,
* a shard whose result lost **every** query list (``exhausted_lists``
  covers all terms) contributed no usable evidence,

— both are *failed shards*.  The :class:`DegradePolicy` decides whether a
failed shard degrades the merged answer (the default: the coordinator
keeps going with the surviving shards and names the losses in
``exhausted_shards``) or aborts the query
(:class:`~repro.distrib.coordinator.ShardedExecutionError`).  A shard
that lost only *some* lists is not failed: its partial evidence flows
into the merge and its dead lists propagate into the merged result's
``exhausted_lists``, exactly mirroring the single-node report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .shard import ShardOutcome


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard: who, when, and why."""

    shard_id: int
    round_no: int
    #: the exception for raised executions; None for all-lists-dead shards
    error: Optional[BaseException]
    #: query lists the shard lost (all of them, for a failed shard)
    exhausted_lists: Sequence[str] = ()

    def describe(self) -> str:
        if self.error is not None:
            return "shard %d raised %s in round %d" % (
                self.shard_id, type(self.error).__name__, self.round_no,
            )
        return "shard %d lost every query list in round %d" % (
            self.shard_id, self.round_no,
        )


@dataclass(frozen=True)
class DegradePolicy:
    """How the coordinator maps shard failures to query outcomes.

    ``max_failed_shards`` is the number of failed shards the query
    tolerates before aborting; ``None`` tolerates all but one shard —
    i.e. the query survives as long as *any* shard still serves data.
    ``fail_fast`` aborts on the first failure regardless.  Aborting
    raises :class:`~repro.distrib.coordinator.ShardedExecutionError`;
    tolerated failures surface as ``degraded=True`` plus the
    ``exhausted_shards`` report on the merged result.

    ``keep_partial_items`` controls whether candidates a failed shard
    reported *before* failing stay in the merge.  Their intervals are
    still correct (the single-node freeze rule), so the default keeps
    them — the merged answer is then the best evidence available, which
    is what an anytime contract promises.
    """

    max_failed_shards: Optional[int] = None
    fail_fast: bool = False
    keep_partial_items: bool = True

    def __post_init__(self) -> None:
        if (
            self.max_failed_shards is not None
            and self.max_failed_shards < 0
        ):
            raise ValueError("max_failed_shards must be non-negative")

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(
        self,
        outcome: ShardOutcome,
        query_terms: Sequence[str],
        round_no: int,
    ) -> Optional[ShardFailure]:
        """The failure this outcome represents, or None if it is usable."""
        if outcome.error is not None:
            return ShardFailure(
                shard_id=outcome.shard_id,
                round_no=round_no,
                error=outcome.error,
                exhausted_lists=tuple(query_terms),
            )
        result = outcome.result
        if result is not None and set(query_terms) <= set(
            result.exhausted_lists
        ):
            return ShardFailure(
                shard_id=outcome.shard_id,
                round_no=round_no,
                error=None,
                exhausted_lists=tuple(result.exhausted_lists),
            )
        return None

    def should_abort(
        self, failures: List[ShardFailure], num_shards: int
    ) -> bool:
        """Whether the accumulated failures exceed what the query tolerates."""
        if not failures:
            return False
        if self.fail_fast:
            return True
        limit = (
            num_shards - 1
            if self.max_failed_shards is None
            else self.max_failed_shards
        )
        return len(failures) > limit
