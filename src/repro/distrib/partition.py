"""Document partitioning: one corpus, N shard-local block indexes.

Document partitioning (each document's postings live wholly inside one
shard) is what makes Fagin-style middleware aggregation exact across
shards: a document's aggregated score computed inside its home shard *is*
its global score, so shard-local ``[worstscore, bestscore]`` intervals
remain valid bounds on global scores and the coordinator can reuse the
single-node bound algebra unchanged.

Two assignment strategies:

* ``"hash"`` — a stateless integer mix (splitmix64 finalizer) of the doc
  id; balanced in expectation, reproducible across processes, and
  computable for any doc id without a lookup table,
* ``"round-robin"`` — the i-th distinct doc id (ascending) goes to shard
  ``i % num_shards``; exactly balanced (shard sizes differ by at most
  one), at the price of a stored assignment table.

Index construction itself is the storage layer's job:
:func:`repro.storage.index_builder.build_index_shards` materializes the
per-shard indexes from an assignment computed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..storage.block_index import DEFAULT_BLOCK_SIZE, InvertedBlockIndex
from ..storage.index_builder import Posting, build_index_shards

#: Valid strategy names, in documentation order.
STRATEGIES = ("hash", "round-robin")


def hash_shard(doc_id: int, num_shards: int) -> int:
    """Stateless shard assignment: splitmix64 finalizer mix, then mod.

    The multiply-xorshift finalizer scrambles low-entropy doc-id patterns
    (sequential ids, strided ids) into a uniform 64-bit value, so the mod
    stays balanced no matter how ids were allocated.
    """
    z = (int(doc_id) + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) % num_shards


@dataclass(frozen=True)
class ShardedIndex:
    """N document-partitioned shard indexes plus their assignment.

    ``shards`` are ordinary :class:`InvertedBlockIndex` objects — every
    single-node component (statistics, executors, fault injection) works
    on them unchanged.  ``assignment`` maps the doc ids seen at partition
    time to their home shard; :meth:`shard_of` answers for arbitrary ids
    under the ``"hash"`` strategy as well.
    """

    shards: Tuple[InvertedBlockIndex, ...]
    strategy: str
    assignment: Mapping[int, int]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def terms(self) -> List[str]:
        """The global term vocabulary (identical across shards)."""
        return self.shards[0].terms if self.shards else []

    @property
    def num_docs(self) -> int:
        """Total collection size across shards."""
        return sum(shard.num_docs for shard in self.shards)

    def shard_of(self, doc_id: int) -> int:
        """Home shard of ``doc_id``."""
        known = self.assignment.get(int(doc_id))
        if known is not None:
            return known
        if self.strategy == "hash":
            return hash_shard(doc_id, self.num_shards)
        raise KeyError(
            "doc id %r was not part of the partitioned corpus" % (doc_id,)
        )

    def __iter__(self):
        return iter(self.shards)

    def __len__(self) -> int:
        return self.num_shards


def assign_documents(
    doc_ids: Iterable[int], num_shards: int, strategy: str = "hash"
) -> Dict[int, int]:
    """Deterministic shard assignment for a set of doc ids.

    Round-robin iterates doc ids in ascending order so the assignment is
    independent of input iteration order.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if strategy not in STRATEGIES:
        raise ValueError(
            "unknown partition strategy %r; valid: %s"
            % (strategy, list(STRATEGIES))
        )
    distinct = sorted({int(d) for d in doc_ids})
    if strategy == "hash":
        return {d: hash_shard(d, num_shards) for d in distinct}
    return {d: i % num_shards for i, d in enumerate(distinct)}


def partition_postings(
    postings_by_term: Mapping[str, Iterable[Posting]],
    num_shards: int,
    strategy: str = "hash",
    num_docs: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> ShardedIndex:
    """Partition a corpus of scored postings into N shard indexes.

    ``num_docs`` is the global collection size (defaults to the number of
    distinct doc ids seen); it is distributed across shards so per-shard
    selectivity estimates stay calibrated.  Global doc ids are preserved.
    """
    materialized = {
        term: [(int(d), float(s)) for d, s in postings]
        for term, postings in postings_by_term.items()
    }
    seen: set = set()
    for postings in materialized.values():
        seen.update(d for d, _ in postings)
    assignment = assign_documents(seen, num_shards, strategy)
    shards = build_index_shards(
        materialized,
        assignment,
        num_shards,
        num_docs=num_docs,
        block_size=block_size,
    )
    return ShardedIndex(
        shards=shards, strategy=strategy, assignment=assignment
    )


def partition_index(
    index: InvertedBlockIndex,
    num_shards: int,
    strategy: str = "hash",
    block_size: Optional[int] = None,
) -> ShardedIndex:
    """Re-partition an existing single-node index into N shards.

    Postings are read back from the lists' rank views (an offline rebuild,
    not charged query I/O).  ``block_size`` defaults to the block size of
    the source index's lists.
    """
    postings: Dict[str, List[Posting]] = {}
    sizes = set()
    for term in index.terms:
        lst = index.list_for(term)
        sizes.add(lst.block_size)
        postings[term] = list(
            zip(
                lst.doc_ids_by_rank.tolist(),
                lst.scores_by_rank.tolist(),
            )
        )
    if block_size is None:
        block_size = min(sizes) if sizes else DEFAULT_BLOCK_SIZE
    return partition_postings(
        postings,
        num_shards,
        strategy=strategy,
        num_docs=index.num_docs,
        block_size=block_size,
    )
