"""Process-parallel shard execution over mmap'd on-disk shard indexes.

The thread-based :class:`~repro.distrib.shard.ShardExecutor` shares one
in-memory index between worker threads — simple, but the GIL serializes
the python side of every shard execution, so the scaling curve flattens
around 4 shards.  This module is the true-parallelism backend:

* every shard is **persisted** once in the v3 mmap layout
  (:mod:`repro.storage.serialization`) and each worker *process* opens
  its shard's file read-only via ``np.memmap`` — zero-copy, and the OS
  page cache shares the bytes between workers on the same machine,
* workers are **persistent**: spawned once (lazily, on first use), they
  keep their mmap'd index, statistics catalog, and reusable
  :class:`~repro.core.executor.QueryExecutor` warm across queries —
  exactly the amortization the session layer does in-process,
* the parent talks to each worker over a private duplex pipe with a
  strict request/reply protocol; each coordinator round ships the plan
  plus the per-round :class:`~repro.core.executor.QueryDeadline` budget
  down and the full per-round accounting (COST/#SA/#RA, engine rounds,
  degraded flags) **and the bound tap** (the shard's remaining bestscore
  bound at termination) back up, so the
  :class:`~repro.distrib.coordinator.MergeCoordinator` sees outcomes
  that are indistinguishable from the thread backend's,
* a worker that **dies** (crash, OOM-kill, SIGKILL chaos) is detected at
  the pipe and reported as a captured :class:`ShardWorkerDied` error on
  the outcome — the same shape a raising thread execution produces — so
  the :class:`~repro.distrib.degrade.DegradePolicy` applies unchanged:
  degraded-but-well-formed results naming the shard in
  ``exhausted_shards`` (``degrade_reason == "dead_shard"``), or
  :class:`~repro.distrib.coordinator.ShardedExecutionError` under
  ``fail_fast``.  Dead workers are respawned on the next query by
  default, so one crash degrades one query, not the executor.

Determinism is the load-bearing property: a worker re-plans the query
from the same primitive fields, runs the same executor code over the
same bytes, and pickle round-trips floats exactly — so the process
backend is **byte-identical** to the thread backend and to single-node
execution (pinned by ``tests/test_process_parity.py`` for all 24
algorithm triples under both ``fork`` and ``spawn`` start methods).

Fork safety: the executor records its owner PID; when a forked child
touches it, inherited worker handles (which belong to the parent) are
discarded unkilled and fresh workers are spawned for the child.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import pathlib
import shutil
import signal
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.executor import QueryDeadline
from ..core.planner import QueryPlan
from ..core.results import QueryStats, RankedItem, TopKResult
from ..core.session import QuerySession
from .partition import ShardedIndex
from .shard import BoundTapListener, ShardAccounting, ShardOutcome

#: How often the parent re-checks a silent worker's liveness while
#: waiting for a reply (seconds).  Death is detected within one period.
_POLL_INTERVAL = 0.05

#: Grace given to a worker between the shutdown message and SIGTERM.
_SHUTDOWN_GRACE = 2.0

#: File name of one shard's persisted index inside the spill directory.
_SHARD_FILE = "shard_%04d.idx"


class ShardWorkerDied(RuntimeError):
    """A shard worker process died (or its pipe broke) mid-request."""


class ShardWorkerError(RuntimeError):
    """A shard worker reported an execution error (worker survived)."""


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
#
# Requests are tuples ``(op, payload)``; replies are ``("ok", payload)``
# or ``("error", (type_name, message))``.  Ops:
#
#   "execute"  -> run a plan; payload is `_plan_payload`, reply is
#                 `_outcome_payload` (result + stats + bound tap)
#   "warm"     -> build the worker's statistics catalog + executor
#   "ping"     -> liveness probe, replies ("ok", pid)
#   "sleep"    -> chaos hook: block the worker for payload seconds;
#                 sends NO reply (keeps the parent's recv stream aligned)
#   "shutdown" -> exit the worker loop; no reply


def _plan_payload(plan: QueryPlan) -> Dict:
    """Primitive fields a worker needs to rebuild ``plan`` exactly.

    The plan is re-planned worker-side through the same registry
    (:func:`repro.core.algorithms.plan`) rather than pickled: policy
    factories may be closures, and deterministic re-resolution from the
    canonical algorithm name is guaranteed to produce the same policies.
    """
    deadline = plan.deadline
    prediction = plan.predicted_threshold
    cost_model = plan.cost_model
    return {
        "algorithm": plan.algorithm,
        "terms": tuple(plan.terms),
        "k": int(plan.k),
        "weights": tuple(plan.weights) if plan.weights else None,
        "prune_epsilon": float(plan.prune_epsilon),
        "batch_blocks": plan.batch_blocks,
        "cost_model": (
            (cost_model.sorted_access_cost, cost_model.random_access_cost)
            if cost_model is not None
            else None
        ),
        "deadline": (
            (deadline.wall_clock_seconds, deadline.cost_budget)
            if deadline is not None
            else None
        ),
        "prediction": (
            (prediction.value, prediction.method, prediction.raw,
             prediction.safety)
            if prediction is not None
            else None
        ),
    }


def _rebuild_plan(payload: Dict) -> QueryPlan:
    from ..core.algorithms import plan as plan_query
    from ..stats.threshold import PredictedThreshold
    from ..storage.diskmodel import CostModel

    plan = plan_query(
        payload["terms"],
        payload["k"],
        payload["algorithm"],
        weights=payload["weights"],
        prune_epsilon=payload["prune_epsilon"],
    )
    changes: Dict = {}
    if payload["deadline"] is not None:
        wall, cost = payload["deadline"]
        changes["deadline"] = QueryDeadline(
            wall_clock_seconds=wall, cost_budget=cost
        )
    if payload["prediction"] is not None:
        value, method, raw, safety = payload["prediction"]
        changes["predicted_threshold"] = PredictedThreshold(
            value=value, method=method, raw=raw, safety=safety
        )
    if payload["cost_model"] is not None:
        sorted_cost, random_cost = payload["cost_model"]
        changes["cost_model"] = CostModel(
            sorted_access_cost=sorted_cost, random_access_cost=random_cost
        )
    if payload["batch_blocks"] is not None:
        changes["batch_blocks"] = payload["batch_blocks"]
    return plan.replace(**changes) if changes else plan


def _outcome_payload(result: TopKResult, tap: BoundTapListener) -> Dict:
    """One execution's result, accounting, and bound tap, as primitives."""
    stats = result.stats
    return {
        "items": [
            (item.doc_id, item.worstscore, item.bestscore)
            for item in result.items
        ],
        "stats": {
            "sorted_accesses": stats.sorted_accesses,
            "random_accesses": stats.random_accesses,
            "cost": stats.cost,
            "rounds": stats.rounds,
            "peak_queue_size": stats.peak_queue_size,
            "wall_time_seconds": stats.wall_time_seconds,
            "retries": stats.retries,
            "simulated_io_wait_ms": stats.simulated_io_wait_ms,
            "prediction_drops": stats.prediction_drops,
            "prediction_fallback": stats.prediction_fallback,
        },
        "algorithm": result.algorithm,
        "degraded": result.degraded,
        "degrade_reason": result.degrade_reason,
        "exhausted_lists": list(result.exhausted_lists),
        "remaining_bound": tap.remaining_bound,
        "engine_rounds": tap.rounds,
        "reason": tap.reason,
    }


def _rebuild_result(payload: Dict) -> TopKResult:
    return TopKResult(
        items=[
            RankedItem(doc_id=doc, worstscore=worst, bestscore=best)
            for doc, worst, best in payload["items"]
        ],
        stats=QueryStats(**payload["stats"]),
        algorithm=payload["algorithm"],
        degraded=payload["degraded"],
        exhausted_lists=list(payload["exhausted_lists"]),
        degrade_reason=payload["degrade_reason"],
    )


def _shard_worker_main(
    conn: multiprocessing.connection.Connection,
    path: str,
    shard_id: int,
    session_kwargs: Dict,
) -> None:
    """Entry point of one shard worker process.

    Opens the shard's v3 index file read-only (zero-copy mmap), builds a
    private :class:`QuerySession` over it, and serves protocol requests
    until shutdown.  Module-level so it is importable under the
    ``spawn`` start method.
    """
    # The parent owns lifecycle; a Ctrl-C storm in an interactive parent
    # must not take workers down mid-reply (shutdown is via the pipe).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    from ..storage.serialization import load_index

    index = load_index(path)
    session = QuerySession(index, **session_kwargs)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        op, payload = message
        if op == "shutdown":
            break
        if op == "ping":
            conn.send(("ok", os.getpid()))
        elif op == "warm":
            session.stats_for()
            session.executor_for()
            conn.send(("ok", None))
        elif op == "sleep":  # chaos hook: no reply, by design
            time.sleep(float(payload))
        elif op == "execute":
            try:
                plan = _rebuild_plan(payload)
                tap = BoundTapListener()
                result = session.executor_for().execute(
                    plan, listeners=(tap,)
                )
                conn.send(("ok", _outcome_payload(result, tap)))
            except Exception as exc:  # reported, worker survives
                conn.send(("error", (type(exc).__name__, str(exc))))
        else:
            conn.send(("error", ("ProtocolError", "unknown op %r" % (op,))))
    conn.close()


class _WorkerHandle:
    """Parent-side state of one live worker."""

    __slots__ = ("process", "conn", "shard_id")

    def __init__(self, process, conn, shard_id: int) -> None:
        self.process = process
        self.conn = conn
        self.shard_id = shard_id


class ProcessShardExecutor:
    """Drop-in :class:`~repro.distrib.shard.ShardExecutor` replacement
    that runs each shard in its own persistent worker process.

    ``sharded`` stays resident in the parent (the coordinator resolves
    candidates and derives budgets/bounds from it); the workers execute
    over the **persisted** copies.  ``spill_dir`` is where shard files
    live: pass a directory to reuse existing files (saved only when
    missing, keyed by shard count), or leave ``None`` for a private
    temporary directory removed on :meth:`close`.

    ``session`` / ``session_kwargs`` mirror the thread executor;
    ``session_kwargs`` must be picklable — they are shipped to every
    worker, whose private session is built from them (``listeners``
    cannot cross a process boundary and are rejected).  The parent-side
    session serves statistics to the coordinator (threshold prediction,
    budget sizing) exactly as in the thread backend.

    ``start_method`` is ``"fork"``/``"spawn"``/``"forkserver"`` or
    ``None`` for the platform default.  ``restart_dead_workers`` (default
    True) respawns a dead worker on the next query touching its shard,
    so a crash degrades one query, not the executor.
    """

    def __init__(
        self,
        sharded: ShardedIndex,
        session: Optional[QuerySession] = None,
        start_method: Optional[str] = None,
        spill_dir: Optional[str] = None,
        restart_dead_workers: bool = True,
        max_workers: Optional[int] = None,  # interface parity; unused
        **session_kwargs,
    ) -> None:
        if sharded.num_shards < 1:
            raise ValueError("a sharded index needs at least one shard")
        if "listeners" in session_kwargs:
            raise ValueError(
                "listeners cannot cross the process boundary; attach "
                "them to a thread-backend executor instead"
            )
        self.sharded = sharded
        self.session = (
            session if session is not None else QuerySession(**session_kwargs)
        )
        self._session_kwargs = dict(session_kwargs)
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = self._ctx.get_start_method()
        self.restart_dead_workers = bool(restart_dead_workers)
        self._owns_spill = spill_dir is None
        self._spill_dir = pathlib.Path(
            spill_dir
            if spill_dir is not None
            else tempfile.mkdtemp(prefix="repro-shards-")
        )
        self._spill_dir.mkdir(parents=True, exist_ok=True)
        self._workers: Dict[int, Optional[_WorkerHandle]] = {
            sid: None for sid in range(sharded.num_shards)
        }
        self._owner_pid = os.getpid()
        self._closed = False
        self.accounting: Dict[int, ShardAccounting] = {
            sid: ShardAccounting() for sid in range(sharded.num_shards)
        }
        self._persist_shards()

    # ------------------------------------------------------------------
    # Spill files
    # ------------------------------------------------------------------
    def shard_path(self, shard_id: int) -> pathlib.Path:
        """On-disk v3 index file of one shard."""
        return self._spill_dir / (_SHARD_FILE % shard_id)

    def _persist_shards(self) -> None:
        from ..storage.serialization import save_index

        for sid, shard in enumerate(self.sharded.shards):
            path = self.shard_path(sid)
            if not path.exists():
                save_index(shard, path, layout="mmap")

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _check_fork(self) -> None:
        """Drop worker handles inherited through fork() — they belong to
        the parent process and must be neither used nor killed here."""
        if os.getpid() != self._owner_pid:
            self._workers = {
                sid: None for sid in range(self.sharded.num_shards)
            }
            self._owner_pid = os.getpid()
            self._closed = False
            # The spill directory belongs to the original process; a
            # forked child closing its copy must not delete it.
            self._owns_spill = False

    def _ensure_worker(self, shard_id: int) -> _WorkerHandle:
        self._check_fork()
        if self._closed:
            raise RuntimeError("executor is closed")
        handle = self._workers.get(shard_id)
        if handle is not None and handle.process.is_alive():
            return handle
        if handle is not None and not self.restart_dead_workers:
            raise ShardWorkerDied(
                "worker of shard %d is dead (restarts disabled)" % shard_id
            )
        return self._spawn(shard_id)

    def _spawn(self, shard_id: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                str(self.shard_path(shard_id)),
                shard_id,
                self._session_kwargs,
            ),
            name="repro-shard-%d" % shard_id,
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(process, parent_conn, shard_id)
        self._workers[shard_id] = handle
        return handle

    def _discard(self, handle: _WorkerHandle) -> None:
        """Forget a dead worker: close the pipe, reap the process."""
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        handle.process.join(timeout=0.5)
        if self._workers.get(handle.shard_id) is handle:
            self._workers[handle.shard_id] = None

    def _recv(self, handle: _WorkerHandle) -> Tuple[str, object]:
        """One reply from a worker, detecting death while waiting."""
        while True:
            try:
                if handle.conn.poll(_POLL_INTERVAL):
                    return handle.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                raise ShardWorkerDied(
                    "worker of shard %d died mid-request (%s)"
                    % (handle.shard_id, type(exc).__name__)
                ) from exc
            if not handle.process.is_alive():
                # Drain anything flushed before death, then report it.
                try:
                    if handle.conn.poll(0):
                        return handle.conn.recv()
                except (EOFError, OSError):
                    pass
                raise ShardWorkerDied(
                    "worker of shard %d (pid %s) died mid-request"
                    % (handle.shard_id, handle.process.pid)
                )

    def _send(self, handle: _WorkerHandle, message: Tuple) -> None:
        try:
            handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerDied(
                "worker of shard %d is gone (%s)"
                % (handle.shard_id, type(exc).__name__)
            ) from exc

    def _request(self, handle: _WorkerHandle, message: Tuple) -> object:
        self._send(handle, message)
        reply, payload = self._recv(handle)
        if reply == "error":
            type_name, text = payload
            raise ShardWorkerError(
                "shard %d worker: %s: %s"
                % (handle.shard_id, type_name, text)
            )
        return payload

    # ------------------------------------------------------------------
    # Warm-up
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Spawn every worker and build its statistics catalog.

        Broadcast first, then collect, so catalogs build in parallel
        across worker processes.
        """
        handles = [
            self._ensure_worker(sid)
            for sid in range(self.sharded.num_shards)
        ]
        for handle in handles:
            self._send(handle, ("warm", None))
        for handle in handles:
            reply, payload = self._recv(handle)
            if reply == "error":
                raise ShardWorkerError(
                    "shard %d warm-up failed: %s" % (handle.shard_id, payload)
                )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute_one(
        self,
        shard_id: int,
        plan: QueryPlan,
        deadline: Optional[QueryDeadline] = None,
    ) -> ShardOutcome:
        """Run ``plan`` on one shard worker; never raises for worker
        errors or death (captured on the outcome for the degrade policy)."""
        outcomes = self.execute_round(plan, [shard_id], {shard_id: deadline})
        return outcomes[0]

    def execute_round(
        self,
        plan: QueryPlan,
        shard_ids: Sequence[int],
        deadlines: Optional[Dict[int, Optional[QueryDeadline]]] = None,
    ) -> List[ShardOutcome]:
        """Run one coordinator round across shard workers, in parallel.

        All requests are shipped before any reply is awaited, so the
        workers — separate processes — genuinely overlap.  Outcomes come
        back ordered by shard id; a dead or erroring worker is reported
        through :attr:`ShardOutcome.error`, never by raising.
        """
        deadlines = deadlines or {}
        ordered = sorted(shard_ids)
        pending: List[Tuple[int, Optional[_WorkerHandle], float,
                            Optional[BaseException]]] = []
        for sid in ordered:
            shard_plan = plan.replace(deadline=deadlines.get(sid))
            started = time.perf_counter()
            try:
                handle = self._ensure_worker(sid)
                self._send(
                    handle, ("execute", _plan_payload(shard_plan))
                )
            except (ShardWorkerDied, OSError) as exc:
                pending.append((sid, None, started, exc))
            else:
                pending.append((sid, handle, started, None))
        outcomes = []
        for sid, handle, started, send_error in pending:
            outcome = ShardOutcome(shard_id=sid)
            account = self.accounting[sid]
            error: Optional[BaseException] = send_error
            payload = None
            if handle is not None:
                try:
                    reply, body = self._recv(handle)
                except ShardWorkerDied as exc:
                    error = exc
                    self._discard(handle)
                else:
                    if reply == "error":
                        type_name, text = body
                        error = ShardWorkerError(
                            "shard %d worker: %s: %s"
                            % (sid, type_name, text)
                        )
                    else:
                        payload = body
            if error is not None:
                outcome.error = error
                account.failures += 1
            else:
                result = _rebuild_result(payload)
                outcome.result = result
                outcome.remaining_bound = payload["remaining_bound"]
                outcome.engine_rounds = payload["engine_rounds"]
                outcome.reason = payload["reason"]
                account.executions += 1
                account.sorted_accesses += result.stats.sorted_accesses
                account.random_accesses += result.stats.random_accesses
                account.cost += result.stats.cost
                account.engine_rounds += payload["engine_rounds"]
            outcome.wall_seconds = time.perf_counter() - started
            outcomes.append(outcome)
        return outcomes

    # ------------------------------------------------------------------
    # Chaos hooks (used by the process-death chaos suite)
    # ------------------------------------------------------------------
    def worker_pid(self, shard_id: int) -> Optional[int]:
        """PID of the shard's live worker (spawning it if needed)."""
        return self._ensure_worker(shard_id).process.pid

    def inject_sleep(self, shard_id: int, seconds: float) -> None:
        """Chaos hook: make the worker block before its next request.

        Fire-and-forget (the sleep op sends no reply), so the very next
        ``execute`` shipped to this worker queues behind the sleep —
        the deterministic way to catch a worker "mid-query" for kill
        tests without racing timers.
        """
        self._send(self._ensure_worker(shard_id), ("sleep", float(seconds)))

    def kill_worker(self, shard_id: int) -> int:
        """SIGKILL the shard's worker; returns the killed PID."""
        handle = self._ensure_worker(shard_id)
        pid = handle.process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def live_workers(self) -> List[int]:
        """Shard ids with a currently live worker process."""
        self._check_fork()
        return sorted(
            sid
            for sid, handle in self._workers.items()
            if handle is not None and handle.process.is_alive()
        )

    def close(self) -> None:
        """Shut workers down and remove an owned spill directory."""
        self._check_fork()
        if self._closed:
            return
        self._closed = True
        handles = [h for h in self._workers.values() if h is not None]
        for handle in handles:
            if handle.process.is_alive():
                try:
                    handle.conn.send(("shutdown", None))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE
        for handle in handles:
            handle.process.join(
                timeout=max(deadline - time.monotonic(), 0.1)
            )
            if handle.process.is_alive():  # pragma: no cover - stuck
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers = {
            sid: None for sid in range(self.sharded.num_shards)
        }
        if self._owns_spill:
            shutil.rmtree(self._spill_dir, ignore_errors=True)

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best effort
        try:
            if os.getpid() == self._owner_pid:
                self.close()
        except Exception:
            pass
