"""The shard execution layer: one `QueryExecutor` per shard, in parallel.

Each shard of a :class:`~repro.distrib.partition.ShardedIndex` is an
ordinary single-node index, so the whole existing stack — statistics
catalogs, any of the 24 ``(SA, RA, ordering)`` triples, fault injection,
anytime deadlines — runs per shard unchanged.  The
:class:`ShardExecutor` adds what distribution needs on top:

* **concurrency** — one query round fans out over a thread pool, one
  worker per active shard (NumPy releases the GIL on the bulk array
  operations, and correctness never depends on parallelism: shard
  executions share no mutable state, so results are identical to a
  sequential run),
* **per-shard accounting** — every execution's COST/#SA/#RA, engine
  rounds, and failures are recorded per shard (lifetime totals in
  :attr:`ShardExecutor.accounting`, per-call snapshots in the returned
  :class:`ShardOutcome`),
* **per-shard deadline budgets** — the coordinator derives per-shard
  :class:`~repro.core.executor.QueryDeadline` objects (via
  :meth:`QueryDeadline.split`) and passes them through here, so a shard
  can be stopped *anytime* with a degraded-but-correct partial result,
* **the bound tap** — a listener that captures, at termination, the
  shard's *remaining bestscore bound*: the highest score any document the
  shard has **not** reported could still achieve.  This is the quantity
  the merge coordinator's early-termination test consumes.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.executor import (
    TERMINATED_DEADLINE,
    ExecutionListener,
    QueryDeadline,
)
from ..core.planner import QueryPlan
from ..core.results import TopKResult
from ..core.session import QuerySession
from .partition import ShardedIndex

#: Upper bound on concurrent shard workers (beyond this, threads only add
#: scheduler churn on typical machines).
MAX_WORKERS = 16


class BoundTapListener(ExecutionListener):
    """Captures the shard-side inputs of the coordinator's bound algebra.

    At termination the listener records the **remaining bound**:
    ``max(unseen_bestscore, bestscore of every queued candidate)`` — an
    upper bound on the score of any document the shard did *not* return
    among its top-k items.  The queue maximum comes straight from the
    pool's vectorized reduction (``max_queue_bestscore``), not from a
    per-candidate walk.  Document partitioning makes shard-local scores
    global, so the coordinator can compare this bound directly against
    the global ``min-k`` threshold.

    Also records the termination reason and the engine round count, which
    feed shard accounting and the coordinator's round bookkeeping.
    """

    def __init__(self) -> None:
        self.reason: Optional[str] = None
        self.remaining_bound: float = float("inf")
        self.rounds: int = 0

    def on_query_start(self, plan, state) -> None:
        self.reason = None
        self.remaining_bound = float("inf")
        self.rounds = 0

    def on_round_end(self, state, trace) -> None:
        self.rounds += 1

    def on_termination(self, state, result, reason) -> None:
        self.reason = reason
        pool = state.pool
        bound = pool.unseen_bestscore
        queue_bound = pool.max_queue_bestscore()
        if queue_bound > bound:
            bound = queue_bound
        self.remaining_bound = bound


@dataclass
class ShardOutcome:
    """One shard execution as seen by the coordinator.

    ``remaining_bound`` bounds every document the shard did not report;
    ``complete`` means the shard terminated by its own threshold test (or
    exhausted its lists) without losing any list — its reported items are
    final and everything else is provably below its local ``min-k``.
    ``error`` carries the exception of an execution that did not produce
    a result at all (the degrade policy decides what that means).
    """

    shard_id: int
    result: Optional[TopKResult] = None
    remaining_bound: float = float("inf")
    engine_rounds: int = 0
    reason: Optional[str] = None
    error: Optional[BaseException] = None
    wall_seconds: float = 0.0

    @property
    def complete(self) -> bool:
        """Shard finished its own termination test with all lists alive."""
        return (
            self.error is None
            and self.result is not None
            and not self.result.degraded
            and self.reason != TERMINATED_DEADLINE
        )

    @property
    def budget_stopped(self) -> bool:
        """Shard was paused by its per-shard deadline budget."""
        return self.error is None and self.reason == TERMINATED_DEADLINE


@dataclass
class ShardAccounting:
    """Lifetime per-shard counters (across queries and rounds)."""

    executions: int = 0
    sorted_accesses: int = 0
    random_accesses: int = 0
    cost: float = 0.0
    engine_rounds: int = 0
    failures: int = 0


class ShardExecutor:
    """Runs one query plan across the shards of a :class:`ShardedIndex`.

    ``session`` supplies the per-shard statistics/executor caches; it is
    shared across worker threads, which is exactly the access pattern the
    session's internal lock exists for.  Extra ``session`` keyword
    arguments (cost model, retry policy, predictor, ...) apply to every
    shard uniformly.
    """

    def __init__(
        self,
        sharded: ShardedIndex,
        session: Optional[QuerySession] = None,
        max_workers: Optional[int] = None,
        **session_kwargs,
    ) -> None:
        if sharded.num_shards < 1:
            raise ValueError("a sharded index needs at least one shard")
        self.sharded = sharded
        self.session = (
            session if session is not None else QuerySession(**session_kwargs)
        )
        self.max_workers = min(
            max_workers if max_workers else sharded.num_shards,
            MAX_WORKERS,
        )
        self.accounting: Dict[int, ShardAccounting] = {
            shard_id: ShardAccounting()
            for shard_id in range(sharded.num_shards)
        }

    # ------------------------------------------------------------------
    # Warm-up
    # ------------------------------------------------------------------
    def warm(self) -> None:
        """Build every shard's statistics catalog up front (optional)."""
        for shard in self.sharded.shards:
            self.session.stats_for(shard)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute_one(
        self,
        shard_id: int,
        plan: QueryPlan,
        deadline: Optional[QueryDeadline] = None,
    ) -> ShardOutcome:
        """Run ``plan`` on one shard; never raises (errors are captured)."""
        tap = BoundTapListener()
        shard_plan = plan.replace(deadline=deadline)
        started = time.perf_counter()
        outcome = ShardOutcome(shard_id=shard_id)
        account = self.accounting[shard_id]
        try:
            executor = self.session.executor_for(
                self.sharded.shards[shard_id]
            )
            result = executor.execute(shard_plan, listeners=(tap,))
        except Exception as exc:  # captured: the degrade policy decides
            outcome.error = exc
            account.failures += 1
        else:
            outcome.result = result
            outcome.remaining_bound = tap.remaining_bound
            outcome.engine_rounds = tap.rounds
            outcome.reason = tap.reason
            account.executions += 1
            account.sorted_accesses += result.stats.sorted_accesses
            account.random_accesses += result.stats.random_accesses
            account.cost += result.stats.cost
            account.engine_rounds += tap.rounds
        outcome.wall_seconds = time.perf_counter() - started
        return outcome

    def execute_round(
        self,
        plan: QueryPlan,
        shard_ids: Sequence[int],
        deadlines: Optional[Dict[int, Optional[QueryDeadline]]] = None,
    ) -> List[ShardOutcome]:
        """Run one coordinator round over the given shards, concurrently.

        ``deadlines`` maps a shard id to its per-shard deadline budget for
        this round (``None`` entries and missing keys mean unbounded).
        Outcomes come back ordered by shard id; a shard whose execution
        raised is reported through :attr:`ShardOutcome.error` rather than
        propagating, so one failing shard never tears down the round.
        """
        deadlines = deadlines or {}
        ordered = sorted(shard_ids)
        if len(ordered) <= 1 or self.max_workers <= 1:
            return [
                self.execute_one(sid, plan, deadlines.get(sid))
                for sid in ordered
            ]
        with ThreadPoolExecutor(
            max_workers=min(self.max_workers, len(ordered)),
            thread_name_prefix="repro-shard",
        ) as pool:
            futures = [
                pool.submit(self.execute_one, sid, plan, deadlines.get(sid))
                for sid in ordered
            ]
            return [future.result() for future in futures]
