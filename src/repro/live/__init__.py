"""Live index subsystem: streaming updates over the immutable block index.

The paper's engine (and everything built on it through PR 9) queries a
*static* :class:`~repro.storage.block_index.InvertedBlockIndex`.  This
package layers a log-structured write path on top of it without touching
the read path at all:

* :mod:`repro.live.memtable` — the in-memory delta absorbing
  document-level upserts and deletes,
* :mod:`repro.live.snapshot` — immutable, epoch-tagged, refcounted
  :class:`LiveSnapshot` handles whose :attr:`~LiveSnapshot.index`
  exposes the exact :class:`~repro.storage.block_index.IndexList`
  sorted/random-access API, so executors, statistics, and bookkeeping
  pools run unchanged and access-identical,
* :mod:`repro.live.compaction` — the size-tiered merge that folds
  frozen segments (and their tombstones) together,
* :mod:`repro.live.maintenance` — threshold- or demand-driven seal and
  compaction, optionally on a background thread,
* :mod:`repro.live.index` — :class:`LiveIndex` (single node) and
  :class:`ShardedLiveIndex` (updates routed through
  :mod:`repro.distrib.partition`), the mutable handles tying it together,
* :mod:`repro.live.binding` — :class:`LiveBinding`, the
  session-facing adapter returned by
  :meth:`repro.core.session.QuerySession.open_live`.

The headline invariant (pinned by ``tests/test_live_differential.py``):
every snapshot's top-k results — doc ids, worstscore/bestscore
intervals, #SA/#RA/COST — are byte-identical to a from-scratch
``build_index`` of the equivalent document set at the same epoch.  See
``docs/LIVE.md`` for the design and the safety argument.
"""

from .binding import LiveBinding
from .compaction import SizeTieredPolicy, merge_layers
from .index import LiveIndex, ShardedLiveIndex
from .maintenance import LiveMaintainer, MaintenanceConfig
from .memtable import Memtable
from .snapshot import LiveSnapshot, Segment, SnapshotIndex

__all__ = [
    "LiveBinding",
    "LiveIndex",
    "LiveMaintainer",
    "LiveSnapshot",
    "MaintenanceConfig",
    "Memtable",
    "Segment",
    "ShardedLiveIndex",
    "SizeTieredPolicy",
    "SnapshotIndex",
    "merge_layers",
]
