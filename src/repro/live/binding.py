"""Session-facing live query handle.

:class:`LiveBinding` is what :meth:`QuerySession.open_live
<repro.core.session.QuerySession.open_live>` returns: a session-shaped
object (``run`` / ``run_many`` with the :class:`QuerySession` signature
minus ``index=``) that pins one
:class:`~repro.live.snapshot.LiveSnapshot` for each query's entire
execution.  Writers, seals, and compactions proceed concurrently; the
executor only ever reads the immutable snapshot.

Statistics lifecycle per epoch: an unchanged epoch returns the *same*
snapshot object, so the session's ``id()``-keyed caches (StatsCatalog,
executor, and therefore PR 8 threshold predictions) hit.  A new epoch
yields a new snapshot index, the session builds fresh statistics for
it, and the binding evicts the previous epoch's cache entry so an
unbounded session does not grow by one entry per write.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

from ..core.results import TopKResult
from ..core.session import DEFAULT_ALGORITHM


class LiveBinding:
    """See the module docstring.

    The service layer duck-types this like a :class:`QuerySession`
    (``run``, ``bookkeeping``, ``default_index``) and detects update
    support through the ``live`` attribute.
    """

    def __init__(self, session, live) -> None:
        self.session = session
        self.live = live
        self._lock = threading.Lock()
        self._last_index = None

    # ------------------------------------------------------------------
    # Session duck-typing
    # ------------------------------------------------------------------
    @property
    def bookkeeping(self) -> Optional[str]:
        return self.session.bookkeeping

    @property
    def default_index(self):
        """The current epoch's snapshot index (for cost estimation)."""
        with self.live.snapshot() as snap:
            return snap.index

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run(
        self,
        terms: Optional[Sequence[str]] = None,
        k: Optional[int] = None,
        algorithm: str = DEFAULT_ALGORITHM,
        weights: Optional[Sequence[float]] = None,
        trace: bool = False,
        prune_epsilon: float = 0.0,
        deadline=None,
        listeners: Sequence = (),
    ) -> TopKResult:
        """Run one query against a snapshot pinned for its whole run."""
        with self.live.snapshot() as snap:
            index = snap.index
            self._note_epoch(index)
            return self.session.run(
                terms,
                k,
                algorithm=algorithm,
                index=index,
                weights=weights,
                trace=trace,
                prune_epsilon=prune_epsilon,
                deadline=deadline,
                listeners=listeners,
            )

    def run_many(
        self,
        queries: Sequence[Sequence[str]],
        k: int,
        algorithm: str = DEFAULT_ALGORITHM,
        weights: Optional[Sequence[float]] = None,
        prune_epsilon: float = 0.0,
        deadline=None,
        listeners: Sequence = (),
    ) -> List[TopKResult]:
        """Run a batch against ONE pinned snapshot (a consistent cut)."""
        with self.live.snapshot() as snap:
            index = snap.index
            self._note_epoch(index)
            return [
                self.session.run(
                    terms,
                    k,
                    algorithm=algorithm,
                    index=index,
                    weights=weights,
                    prune_epsilon=prune_epsilon,
                    deadline=deadline,
                    listeners=listeners,
                )
                for terms in queries
            ]

    def _note_epoch(self, index) -> None:
        """Evict the previous epoch's session cache entry on change."""
        with self._lock:
            previous = self._last_index
            if previous is index:
                return
            self._last_index = index
        if previous is not None:
            self.session.evict_index(previous)

    def close(self) -> None:
        """Release the live index's background resources."""
        self.live.close()

    def __enter__(self) -> "LiveBinding":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
