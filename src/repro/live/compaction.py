"""Segment merging: size-tiered selection and tombstone folding.

Compaction rewrites a run of **adjacent** sealed segments (adjacency is
required: the shadowing relation between layers is positional) into one
segment holding their combined effective state:

* within the merged run, the newest defining layer of each document
  wins (full version or tombstone), exactly as snapshot
  materialization resolves it;
* a tombstone is **folded away** iff the document has no alive version
  in any layer *below* the run (older segments, then the base index) —
  dropping it then changes nothing, keeping it would shadow nothing.
  This is the invariant the reclamation tests pin: postings of
  insert-then-delete documents physically disappear at compaction.

Selection is classic size-tiered: merge the oldest adjacent window of
at least ``min_merge`` segments whose sizes are within ``tier_ratio``
of each other, extending the window while the next segment still fits
the tier.  Maintenance can also force a full-run merge when the
segment count exceeds its bound regardless of tiering.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .snapshot import Segment, in_sorted


class SizeTieredPolicy:
    """Pick an adjacent ``[lo, hi)`` run of segments to merge, or None."""

    def __init__(self, min_merge: int = 3, tier_ratio: float = 2.0) -> None:
        if min_merge < 2:
            raise ValueError("min_merge must be at least 2")
        if tier_ratio < 1.0:
            raise ValueError("tier_ratio must be at least 1.0")
        self.min_merge = int(min_merge)
        self.tier_ratio = float(tier_ratio)

    def select(self, sizes: Sequence[int]) -> Optional[Tuple[int, int]]:
        count = len(sizes)
        if count < self.min_merge:
            return None
        for lo in range(count - self.min_merge + 1):
            hi = lo + self.min_merge
            window = sizes[lo:hi]
            smallest = max(min(window), 1)
            if max(window) > smallest * self.tier_ratio:
                continue
            # Greedily extend while the next segment stays in the tier.
            while hi < count and sizes[hi] <= smallest * self.tier_ratio:
                hi += 1
            return lo, hi
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SizeTieredPolicy(min_merge=%d, tier_ratio=%g)" % (
            self.min_merge,
            self.tier_ratio,
        )


def merge_layers(
    layers: Sequence[Segment],
    alive_below: Callable[[int], bool],
    block_size: int,
) -> Tuple[Dict[str, List[Tuple[int, float]]], np.ndarray]:
    """Fold adjacent segments (oldest first) into one layer's content.

    Returns ``(postings_by_term, defined_docs)`` for the merged
    segment: per-term alive postings after newest-wins resolution, and
    the sorted defined-doc set after tombstone folding.  ``alive_below``
    answers whether a doc id has an alive version anywhere strictly
    below ``layers[0]`` — when False, the merged tombstone shadows
    nothing and is dropped.

    Pure function of immutable segments: safe to run outside the live
    index's lock (the caller swaps the result in under the lock).
    """
    if not layers:
        raise ValueError("nothing to merge")

    # Shadow-from-above *within* the merged run, same cumulative-union
    # construction snapshot materialization uses across the full stack.
    shadows: List[np.ndarray] = []
    cumulative = np.empty(0, dtype=np.int64)
    for segment in reversed(layers):
        shadows.append(cumulative)
        cumulative = np.union1d(cumulative, segment.defined_docs)
    shadows.reverse()

    postings: Dict[str, List[Tuple[int, float]]] = {}
    for segment, shadow in zip(layers, shadows):
        for lst in segment.index:
            if not len(lst):
                continue
            keep = ~in_sorted(lst.doc_ids_by_rank, shadow)
            if not keep.any():
                continue
            bucket = postings.setdefault(lst.term, [])
            bucket.extend(
                zip(
                    lst.doc_ids_by_rank[keep].tolist(),
                    lst.scores_by_rank[keep].tolist(),
                )
            )

    # Newest-wins liveness of every defined doc within the run.
    decided: Dict[int, bool] = {}
    for segment in reversed(layers):
        alive = segment.alive_docs
        for doc in segment.defined_docs.tolist():
            if doc not in decided:
                decided[doc] = doc in alive
    defined = sorted(
        doc
        for doc, is_alive in decided.items()
        if is_alive or alive_below(doc)
    )
    return postings, np.array(defined, dtype=np.int64)


def make_alive_below(
    below: Sequence[Segment], base_doc_ids: np.ndarray
) -> Callable[[int], bool]:
    """Liveness oracle for everything under a merge run.

    Walks the older segments newest-first — the first layer that
    *defines* the doc decides (an old tombstone means dead, not
    fall-through) — and falls back to membership in the base index.
    """

    def alive_below(doc_id: int) -> bool:
        for segment in reversed(list(below)):
            if segment.defines(doc_id):
                return doc_id in segment.alive_docs
        if base_doc_ids.size == 0:
            return False
        pos = int(np.searchsorted(base_doc_ids, int(doc_id)))
        return pos < base_doc_ids.size and int(base_doc_ids[pos]) == int(doc_id)

    return alive_below
