"""The mutable live-index handles: :class:`LiveIndex` and
:class:`ShardedLiveIndex`.

A :class:`LiveIndex` wraps an (optional) immutable base
:class:`~repro.storage.block_index.InvertedBlockIndex` and absorbs
document-level writes through a :class:`~repro.live.memtable.Memtable`.
Its layer stack — base, sealed segments, unsealed delta — is only ever
observed through :meth:`snapshot`, which returns an immutable,
refcounted, epoch-tagged :class:`~repro.live.snapshot.LiveSnapshot`.
Every write bumps the epoch; the cached snapshot is invalidated so the
next query sees a *new object* and the session layer naturally rebuilds
statistics (and PR 8 threshold predictions) for the new epoch, while an
unchanged epoch keeps returning the same object and therefore keeps
hitting the session's ``id()``-keyed caches.

Thread model: one reentrant lock serializes writers, seals, snapshot
creation/release, and segment-list swaps.  The expensive part of
compaction (merging postings) runs *outside* that lock — compactions
are serialized among themselves by a dedicated non-blocking lock, and
the merged result is swapped in only after re-validating that the
captured run is still in place.  Fork safety follows the session-layer
idiom: every public entry point revalidates the owner PID and a forked
child gets fresh locks and — critically — **disowns** any background
maintenance thread, which only ever exists in the parent.
"""

from __future__ import annotations

import os
import pathlib
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..storage.block_index import DEFAULT_BLOCK_SIZE, InvertedBlockIndex
from ..storage.index_builder import build_index
from .compaction import SizeTieredPolicy, make_alive_below, merge_layers
from .memtable import Memtable, validate_update
from .snapshot import LiveSnapshot, Segment

#: Normalized update operation: ("upsert", doc_id, {term: score}) or
#: ("delete", doc_id, None).  ``apply`` also accepts dict-shaped ops
#: (the service's JSON form): {"op": "upsert", "doc_id": 1, "terms": {...}}.
UpdateOp = Tuple[str, int, Optional[Mapping[str, float]]]


def normalize_op(op: Union[UpdateOp, Mapping]) -> UpdateOp:
    """Normalize one update op from tuple or dict form; raises ValueError."""
    if isinstance(op, Mapping):
        kind = op.get("op")
        doc_id = op.get("doc_id")
        terms = op.get("terms")
    else:
        if len(op) == 2:
            kind, doc_id = op
            terms = None
        else:
            kind, doc_id, terms = op
    if kind not in ("upsert", "delete"):
        raise ValueError("op must be 'upsert' or 'delete', got %r" % (kind,))
    if not isinstance(doc_id, int) or isinstance(doc_id, bool):
        raise ValueError("doc_id must be an integer, got %r" % (doc_id,))
    if kind == "upsert":
        if not isinstance(terms, Mapping) or not terms:
            raise ValueError(
                "upsert of doc %r needs a non-empty terms mapping" % (doc_id,)
            )
    elif terms:
        raise ValueError("delete of doc %r takes no terms" % (doc_id,))
    return kind, int(doc_id), terms


class LiveIndex:
    """A block index that accepts writes.  See the module docstring.

    Parameters
    ----------
    base:
        The immutable index to layer writes over (optional — a live
        index can also grow from empty).
    block_size:
        Block size for every materialized/sealed list; defaults to the
        base's (smallest) list block size, else the library default.
        Must match the block size a differential rebuild would use.
    collection_size:
        Acts as a floor for every snapshot's ``num_docs``, mirroring
        the explicit ``num_docs`` argument of ``build_index`` for
        corpora where some documents match no indexed term.  Default
        ``None`` tracks distinct alive documents, exactly like
        ``build_index``'s default.
    spill_dir:
        When set, sealed/merged segments with postings are written
        through the v3 mmap format and read back zero-copy; retired
        segment files are unlinked once no snapshot pins them.
    policy:
        The :class:`~repro.live.compaction.SizeTieredPolicy` driving
        :meth:`compact`.
    """

    def __init__(
        self,
        base: Optional[InvertedBlockIndex] = None,
        block_size: Optional[int] = None,
        collection_size: Optional[int] = None,
        spill_dir: Optional[Union[str, pathlib.Path]] = None,
        policy: Optional[SizeTieredPolicy] = None,
    ) -> None:
        self._base = base
        if block_size is None:
            sizes = (
                {base.list_for(term).block_size for term in base.terms}
                if base is not None and len(base)
                else set()
            )
            block_size = min(sizes) if sizes else DEFAULT_BLOCK_SIZE
        self.block_size = int(block_size)
        self.collection_size = collection_size
        self.spill_dir = pathlib.Path(spill_dir) if spill_dir is not None else None
        self.policy = policy if policy is not None else SizeTieredPolicy()

        self._memtable = Memtable()
        self._segments: List[Segment] = []
        self._epoch = 0
        self._segment_counter = 0
        self._current: Optional[LiveSnapshot] = None
        self._base_docs: Optional[np.ndarray] = None
        self._maintainer = None

        self._lock = threading.RLock()
        self._compaction_lock = threading.Lock()
        self._owner_pid = os.getpid()

        #: lifecycle counters (surfaced by :meth:`stats` and /metrics)
        self.updates_applied = 0
        self.seals = 0
        self.compactions = 0
        self.reclaimed_postings = 0
        self.reclaimed_tombstones = 0

    # ------------------------------------------------------------------
    # Fork safety
    # ------------------------------------------------------------------
    def _check_fork(self) -> None:
        """Reset process-local state after a ``fork()``.

        The inherited locks may be held by parent threads that do not
        exist here, and the background maintainer (if any) runs only in
        the parent — the child must neither join nor double-run it, so
        the maintainer disowns its thread handle via its own PID check.
        """
        if os.getpid() != self._owner_pid:
            self._lock = threading.RLock()
            self._compaction_lock = threading.Lock()
            self._owner_pid = os.getpid()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def base(self) -> Optional[InvertedBlockIndex]:
        return self._base

    @property
    def epoch(self) -> int:
        """Monotonic write counter; bumps once per applied op."""
        return self._epoch

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    @property
    def memtable_ops(self) -> int:
        """Writes buffered in the unsealed memtable (seal signal)."""
        return self._memtable.num_ops

    @property
    def maintainer(self):
        return self._maintainer

    def stats(self) -> dict:
        """Counters for metrics endpoints and tests."""
        with self._lock:
            return {
                "epoch": self._epoch,
                "segments": len(self._segments),
                "segment_postings": sum(s.num_postings for s in self._segments),
                "memtable_ops": self._memtable.num_ops,
                "memtable_docs": len(self._memtable),
                "updates_applied": self.updates_applied,
                "seals": self.seals,
                "compactions": self.compactions,
                "reclaimed_postings": self.reclaimed_postings,
                "reclaimed_tombstones": self.reclaimed_tombstones,
            }

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def upsert(self, doc_id: int, terms: Mapping[str, float]) -> None:
        """Install a complete new version of ``doc_id``."""
        self._check_fork()
        with self._lock:
            self._memtable.upsert(doc_id, terms)
            self._bump_locked()

    def delete(self, doc_id: int) -> None:
        """Tombstone ``doc_id`` everywhere (idempotent for unknown docs)."""
        self._check_fork()
        with self._lock:
            self._memtable.delete(doc_id)
            self._bump_locked()

    def apply(self, ops: Iterable[Union[UpdateOp, Mapping]]) -> int:
        """Apply a batch of update ops atomically w.r.t. snapshots.

        The whole batch lands under one lock hold, so no snapshot can
        observe a prefix of it.  Returns the number of ops applied.
        Validation errors raise before any op is applied.
        """
        self._check_fork()
        normalized = [normalize_op(op) for op in ops]
        # Pre-validate payloads so the batch is all-or-nothing: a bad
        # score in op 7 must not leave ops 0..6 applied.
        for kind, doc_id, terms in normalized:
            if kind == "upsert":
                validate_update(doc_id, terms)
        with self._lock:
            for kind, doc_id, terms in normalized:
                if kind == "upsert":
                    self._memtable.upsert(doc_id, terms)
                else:
                    self._memtable.delete(doc_id)
                self._epoch += 1
                self.updates_applied += 1
            if normalized:
                self._drop_current_locked()
        return len(normalized)

    def _bump_locked(self) -> None:
        self._epoch += 1
        self.updates_applied += 1
        self._drop_current_locked()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> LiveSnapshot:
        """Acquire a handle on the current epoch's snapshot.

        The same object is returned while the epoch (and layer
        structure) is unchanged — that stable identity is what keeps
        the session's statistics cache warm.  Balance every call with
        :meth:`LiveSnapshot.close`.
        """
        self._check_fork()
        with self._lock:
            if self._current is None:
                self._current = self._build_snapshot_locked()
            self._current._refs += 1
            return self._current

    def _build_snapshot_locked(self) -> LiveSnapshot:
        snap = LiveSnapshot(
            owner=self,
            epoch=self._epoch,
            base=self._base,
            segments=tuple(self._segments),
            delta=self._memtable.freeze(),
            block_size=self.block_size,
            collection_size=self.collection_size,
            base_doc_ids=self._base_doc_ids_locked(),
        )
        for segment in snap.segments:
            segment.refs += 1
        snap._refs = 1  # the live cache's own handle
        return snap

    def _acquire_snapshot(self, snap: LiveSnapshot) -> LiveSnapshot:
        self._check_fork()
        with self._lock:
            if snap._refs <= 0:
                raise RuntimeError("cannot acquire a fully released snapshot")
            snap._refs += 1
            return snap

    def _release_snapshot(self, snap: LiveSnapshot) -> None:
        self._check_fork()
        with self._lock:
            if snap._refs <= 0:
                raise RuntimeError("snapshot released more times than acquired")
            snap._refs -= 1
            if snap._refs == 0:
                for segment in snap.segments:
                    self._unref_segment_locked(segment)

    def _drop_current_locked(self) -> None:
        current = self._current
        self._current = None
        if current is not None:
            if current._refs <= 0:  # pragma: no cover - internal invariant
                raise RuntimeError("live snapshot cache lost its reference")
            current._refs -= 1
            if current._refs == 0:
                for segment in current.segments:
                    self._unref_segment_locked(segment)

    def _unref_segment_locked(self, segment: Segment) -> None:
        segment.refs -= 1
        if segment.refs == 0 and segment.retired and segment.path is not None:
            try:
                os.unlink(segment.path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            segment.path = None

    def _base_doc_ids_locked(self) -> np.ndarray:
        if self._base_docs is None:
            if self._base is None or not len(self._base):
                self._base_docs = np.empty(0, dtype=np.int64)
            else:
                self._base_docs = np.unique(
                    np.concatenate(
                        [lst.doc_ids_by_rank for lst in self._base]
                    )
                )
        return self._base_docs

    # ------------------------------------------------------------------
    # Seal and compaction
    # ------------------------------------------------------------------
    def seal(self) -> bool:
        """Freeze the memtable into an immutable segment.

        A no-op (returns False) when the memtable defines nothing.
        Sealing changes the layer structure but not the logical
        content: a snapshot taken before the seal stays valid and
        byte-identical to one taken after.
        """
        self._check_fork()
        with self._lock:
            memtable = self._memtable
            if not len(memtable):
                return False
            postings = memtable.alive_postings()
            index = build_index(postings, block_size=self.block_size)
            segment = Segment(
                index, memtable.touched_docs(), epoch=self._epoch
            )
            self._spill_segment(segment)
            self._segments.append(segment)
            self._memtable = Memtable()
            self._drop_current_locked()
            self.seals += 1
            return True

    def _spill_segment(self, segment: Segment) -> None:
        """Persist a segment's postings via the v3 mmap writer."""
        if self.spill_dir is None or not segment.num_postings:
            return
        from ..storage.serialization import load_index, save_index

        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self._segment_counter += 1
        path = self.spill_dir / ("segment-%08d.v3" % self._segment_counter)
        save_index(segment.index, path, layout="mmap")
        segment.index = load_index(path)
        segment.path = path

    def compact(self, force: bool = False) -> bool:
        """Run one size-tiered compaction step; True when a merge landed.

        ``force=True`` merges the whole segment run even when the
        tiering policy finds no window (used by maintenance when the
        segment count exceeds its bound).  The posting merge runs
        outside the live lock; concurrent writers, seals, and snapshots
        proceed.  Returns False when another compaction is in flight.
        """
        self._check_fork()
        if not self._compaction_lock.acquire(blocking=False):
            return False
        try:
            with self._lock:
                segments = list(self._segments)
                span = self.policy.select([s.size for s in segments])
                if span is None and force and len(segments) >= 2:
                    span = (0, len(segments))
                if span is None:
                    return False
                lo, hi = span
                captured = segments[lo:hi]
                below = tuple(segments[:lo])
                base_docs = self._base_doc_ids_locked()

            # Heavy part, lock-free: captured layers are immutable and
            # `below`/base cannot change while we hold _compaction_lock
            # (seal only appends above, compactions are serialized).
            postings, defined = merge_layers(
                captured, make_alive_below(below, base_docs), self.block_size
            )
            merged: Optional[Segment] = None
            if postings or defined.size:
                merged = Segment(
                    build_index(postings, block_size=self.block_size),
                    defined,
                    epoch=captured[-1].epoch,
                )
                self._spill_segment(merged)

            with self._lock:
                in_place = self._segments[lo:hi]
                if len(in_place) != len(captured) or any(
                    a is not b for a, b in zip(in_place, captured)
                ):  # pragma: no cover - compactions are serialized
                    return False
                self._segments[lo:hi] = [merged] if merged is not None else []
                before_postings = sum(s.num_postings for s in captured)
                before_tombstones = sum(s.num_tombstones for s in captured)
                after_postings = merged.num_postings if merged is not None else 0
                after_tombstones = merged.num_tombstones if merged is not None else 0
                self.reclaimed_postings += before_postings - after_postings
                self.reclaimed_tombstones += max(
                    before_tombstones - after_tombstones, 0
                )
                for segment in captured:
                    segment.retired = True
                    self._unref_segment_locked(segment)
                self._drop_current_locked()
                self.compactions += 1
                return True
        finally:
            self._compaction_lock.release()

    # ------------------------------------------------------------------
    # Maintenance and lifecycle
    # ------------------------------------------------------------------
    def start_maintenance(self, config=None):
        """Start (or return) the background seal/compact maintainer."""
        self._check_fork()
        from .maintenance import LiveMaintainer

        if self._maintainer is None:
            self._maintainer = LiveMaintainer(self, config)
        self._maintainer.start()
        return self._maintainer

    def close(self) -> None:
        """Stop background maintenance and release cached resources.

        Idempotent; the index stays usable for reads and writes.  In a
        forked child this never joins the parent's maintenance thread —
        the maintainer's own PID check disowns it first.
        """
        self._check_fork()
        maintainer = self._maintainer
        if maintainer is not None:
            maintainer.stop()
        with self._lock:
            self._drop_current_locked()

    def __enter__(self) -> "LiveIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedLiveIndex:
    """Per-shard live indexes with partition-routed updates.

    Wraps one :class:`LiveIndex` per shard and routes every write
    through the same assignment logic queries use
    (:mod:`repro.distrib.partition`): known documents go to their home
    shard, new documents are hashed (``strategy="hash"``) or appended
    round-robin (``strategy="round_robin"``, recorded in the shared
    assignment table so later random accesses resolve).  Deletes of
    never-seen documents under round-robin are no-ops.

    A :class:`~repro.core.session.ShardedSession` constructed with
    ``live=`` snapshots every shard per epoch and rebuilds its shard
    executor view; see :meth:`snapshot_all`.
    """

    def __init__(
        self,
        base: Optional[object] = None,
        num_shards: int = 4,
        strategy: str = "hash",
        block_size: Optional[int] = None,
        collection_size: Optional[int] = None,
        spill_dir: Optional[Union[str, pathlib.Path]] = None,
        policy: Optional[SizeTieredPolicy] = None,
    ) -> None:
        from ..distrib.partition import STRATEGIES, ShardedIndex, partition_index

        if strategy not in STRATEGIES:
            raise ValueError(
                "unknown partition strategy %r; valid: %s"
                % (strategy, list(STRATEGIES))
            )
        if isinstance(base, ShardedIndex):
            sharded = base
        elif isinstance(base, InvertedBlockIndex):
            sharded = partition_index(base, num_shards, strategy=strategy)
        elif base is None:
            sharded = None
        else:
            raise TypeError(
                "base must be an InvertedBlockIndex, a ShardedIndex, or None"
            )
        if sharded is not None:
            num_shards = sharded.num_shards
            strategy = sharded.strategy
            self.assignment: Dict[int, int] = dict(sharded.assignment)
            shard_bases: Sequence[Optional[InvertedBlockIndex]] = sharded.shards
        else:
            if num_shards < 1:
                raise ValueError("num_shards must be at least 1")
            self.assignment = {}
            shard_bases = [None] * num_shards
        self.strategy = strategy
        spill_root = pathlib.Path(spill_dir) if spill_dir is not None else None
        self.shards: Tuple[LiveIndex, ...] = tuple(
            LiveIndex(
                shard_base,
                block_size=block_size,
                collection_size=collection_size,
                spill_dir=(
                    spill_root / ("shard-%02d" % shard_id)
                    if spill_root is not None
                    else None
                ),
                policy=policy,
            )
            for shard_id, shard_base in enumerate(shard_bases)
        )
        self._lock = threading.RLock()
        self._owner_pid = os.getpid()
        self._epoch = 0
        self._next_rr = len(self.assignment) % num_shards

    def _check_fork(self) -> None:
        if os.getpid() != self._owner_pid:
            self._lock = threading.RLock()
            self._owner_pid = os.getpid()

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def epoch(self) -> int:
        """Global write counter across all shards."""
        return self._epoch

    def shard_of(self, doc_id: int, create: bool = False) -> Optional[int]:
        """Home shard of ``doc_id``; assigns one when ``create`` and new."""
        from ..distrib.partition import hash_shard

        doc = int(doc_id)
        known = self.assignment.get(doc)
        if known is not None:
            return known
        if self.strategy == "hash":
            return hash_shard(doc, self.num_shards)
        if not create:
            return None
        shard = self._next_rr
        self._next_rr = (shard + 1) % self.num_shards
        self.assignment[doc] = shard
        return shard

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def upsert(self, doc_id: int, terms: Mapping[str, float]) -> None:
        self._check_fork()
        with self._lock:
            shard = self.shard_of(doc_id, create=True)
            self.shards[shard].upsert(doc_id, terms)
            self._epoch += 1

    def delete(self, doc_id: int) -> bool:
        """Tombstone ``doc_id`` on its home shard; False when unroutable."""
        self._check_fork()
        with self._lock:
            shard = self.shard_of(doc_id, create=False)
            if shard is None:
                return False
            self.shards[shard].delete(doc_id)
            self._epoch += 1
            return True

    def apply(self, ops: Iterable[Union[UpdateOp, Mapping]]) -> int:
        """Route a batch of ops; atomic w.r.t. :meth:`snapshot_all`."""
        self._check_fork()
        normalized = [normalize_op(op) for op in ops]
        for kind, doc_id, terms in normalized:
            if kind == "upsert":
                validate_update(doc_id, terms)
        applied = 0
        with self._lock:
            for kind, doc_id, terms in normalized:
                if kind == "upsert":
                    shard = self.shard_of(doc_id, create=True)
                    self.shards[shard].upsert(doc_id, terms)
                else:
                    shard = self.shard_of(doc_id, create=False)
                    if shard is None:
                        continue
                    self.shards[shard].delete(doc_id)
                self._epoch += 1
                applied += 1
        return applied

    # ------------------------------------------------------------------
    # Snapshots and lifecycle
    # ------------------------------------------------------------------
    def snapshot_all(self) -> Tuple[LiveSnapshot, ...]:
        """One consistent cut: a pinned snapshot of every shard.

        Taken under the routing lock, so a multi-op :meth:`apply` batch
        is either fully visible or fully invisible.  Close every handle.
        """
        self._check_fork()
        with self._lock:
            return tuple(shard.snapshot() for shard in self.shards)

    def stats(self) -> dict:
        per_shard = [shard.stats() for shard in self.shards]
        return {
            "epoch": self._epoch,
            "num_shards": self.num_shards,
            "segments": sum(s["segments"] for s in per_shard),
            "memtable_ops": sum(s["memtable_ops"] for s in per_shard),
            "updates_applied": sum(s["updates_applied"] for s in per_shard),
            "seals": sum(s["seals"] for s in per_shard),
            "compactions": sum(s["compactions"] for s in per_shard),
            "reclaimed_postings": sum(s["reclaimed_postings"] for s in per_shard),
        }

    def start_maintenance(self, config=None) -> None:
        for shard in self.shards:
            shard.start_maintenance(config)

    def close(self) -> None:
        """Stop every shard's background maintenance (fork-safe)."""
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedLiveIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
