"""Threshold- and demand-driven seal/compaction for a live index.

:class:`LiveMaintainer` watches one :class:`~repro.live.index.LiveIndex`
and keeps its layer stack bounded: when the unsealed memtable exceeds
``seal_ops`` buffered writes it is sealed into a segment, and the
segment run is compacted — by the size-tiered policy normally, or
force-merged when the run exceeds ``max_segments``.  :meth:`run_once`
performs one deterministic pass (what tests drive); :meth:`start` runs
the same pass on a polling daemon thread.

Fork safety: the background thread exists only in the process that
started it.  Every public entry point revalidates the owner PID and a
forked child **disowns** the inherited thread handle — it neither joins
the parent's compactor (the thread object is not running here and
joining it could hang) nor double-runs it (``running`` reports False,
``stop`` is a no-op until the child starts its own).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class MaintenanceConfig:
    """Thresholds and cadence for background maintenance."""

    #: seal the memtable once it buffers this many write ops
    seal_ops: int = 4096
    #: force-compact the whole run above this many segments
    max_segments: int = 6
    #: polling interval of the background thread, seconds
    interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.seal_ops < 1:
            raise ValueError("seal_ops must be at least 1")
        if self.max_segments < 1:
            raise ValueError("max_segments must be at least 1")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


class LiveMaintainer:
    """See the module docstring."""

    def __init__(self, live, config: Optional[MaintenanceConfig] = None) -> None:
        self.live = live
        self.config = config if config is not None else MaintenanceConfig()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._owner_pid = os.getpid()
        #: passes/actions performed (test and metrics instrumentation)
        self.passes = 0
        self.seals = 0
        self.compactions = 0
        self.errors = 0
        self.last_error: Optional[BaseException] = None

    def _check_fork(self) -> None:
        """Disown the parent's thread after a ``fork()``.

        The inherited ``Thread`` object describes a thread that only
        exists in the parent; the child must treat it as not running
        and never join it.
        """
        if os.getpid() != self._owner_pid:
            self._thread = None
            self._stop = threading.Event()
            self._owner_pid = os.getpid()

    @property
    def running(self) -> bool:
        self._check_fork()
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # One deterministic pass
    # ------------------------------------------------------------------
    def run_once(self) -> dict:
        """Seal/compact according to thresholds; returns what happened."""
        self._check_fork()
        actions = {"sealed": False, "compacted": False}
        self.passes += 1
        if self.live.memtable_ops >= self.config.seal_ops:
            if self.live.seal():
                actions["sealed"] = True
                self.seals += 1
        force = self.live.num_segments > self.config.max_segments
        if self.live.compact(force=force):
            actions["compacted"] = True
            self.compactions += 1
        return actions

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the polling daemon thread (idempotent)."""
        self._check_fork()
        if self.running:
            return
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-maintenance", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop and join the background thread (no-op if not running).

        In a forked child this is always a no-op for the parent's
        thread: :meth:`_check_fork` dropped the handle first.
        """
        self._check_fork()
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self._thread = None

    def _loop(self) -> None:
        stop = self._stop
        while not stop.wait(self.config.interval_s):
            try:
                self.run_once()
            except Exception as exc:  # keep maintaining; surface via counters
                self.errors += 1
                self.last_error = exc
