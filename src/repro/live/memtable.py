"""In-memory write delta: the mutable tip of a live index.

A :class:`Memtable` absorbs document-level writes — whole-document
upserts and deletes — until it is sealed into an immutable segment
(:meth:`repro.live.index.LiveIndex.seal`).  It keeps two synchronized
views:

* the **forward view** ``doc_id -> version``, where a version is either
  the document's complete ``{term: score}`` map or ``None`` (a
  tombstone that shadows every older occurrence of the doc id in
  deeper layers), and
* an **inverted view** ``term -> {doc_id: score}`` over the *alive*
  versions only, staged on demand into sorted numpy columns
  (:meth:`Memtable.postings_for`) so sealing and snapshot
  materialization work on columnar data, consistent with the PR 7
  hot path.

Updates are **document-granular**: an upsert replaces the previous
version of the document wholesale (there is no per-term patch), which
is what keeps "the equivalent document set at this epoch" well defined
for the differential rebuild check.

The memtable itself takes no locks: the owning
:class:`~repro.live.index.LiveIndex` serializes writers, seals, and
snapshot creation under its own lock.  Version dicts stored in the
forward view are never mutated after insertion — an upsert installs a
fresh dict — which is what makes the shallow copy returned by
:meth:`freeze` a correct point-in-time snapshot.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

#: A document version: its complete term->score map, or None (tombstone).
Version = Optional[Dict[str, float]]


def validate_update(doc_id: int, terms: Mapping[str, float]) -> Tuple[int, Dict[str, float]]:
    """Validate and normalize one upsert's payload.

    Mirrors the invariants :class:`~repro.storage.block_index.IndexList`
    enforces at build time (non-negative finite scores, string terms),
    so a bad write fails at the memtable instead of poisoning a later
    seal or snapshot materialization.
    """
    doc = int(doc_id)
    if not terms:
        # an alive doc with zero postings has no rebuild equivalent
        # (build_index only counts posting-bearing docs), so it would
        # silently break snapshot/rebuild num_docs parity
        raise ValueError("upsert of doc %d needs a non-empty terms mapping" % doc)
    version: Dict[str, float] = {}
    for term, score in terms.items():
        if not isinstance(term, str) or not term:
            raise ValueError("terms must be non-empty strings, got %r" % (term,))
        value = float(score)
        if not math.isfinite(value) or value < 0.0:
            raise ValueError(
                "score for term %r of doc %d must be finite and non-negative, got %r"
                % (term, doc, score)
            )
        version[term] = value
    return doc, version


class Memtable:
    """See the module docstring.  One instance per unsealed delta."""

    def __init__(self) -> None:
        #: forward view: every doc id this delta defines (tombstones too)
        self._doc_state: Dict[int, Version] = {}
        #: inverted view over alive versions only
        self._term_postings: Dict[str, Dict[int, float]] = {}
        #: per-term staged columns (sorted by doc id); invalidated on write
        self._staged: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        #: writes absorbed since construction (seal-threshold signal)
        self.num_ops = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def upsert(self, doc_id: int, terms: Mapping[str, float]) -> None:
        """Install a new complete version of ``doc_id``."""
        doc, version = validate_update(doc_id, terms)
        self._unlink(doc)
        self._doc_state[doc] = version
        for term, score in version.items():
            self._term_postings.setdefault(term, {})[doc] = score
            self._staged.pop(term, None)
        self.num_ops += 1

    def delete(self, doc_id: int) -> None:
        """Tombstone ``doc_id`` (shadowing any version in deeper layers)."""
        doc = int(doc_id)
        self._unlink(doc)
        self._doc_state[doc] = None
        self.num_ops += 1

    def _unlink(self, doc: int) -> None:
        """Remove ``doc`` from the inverted view of its previous version."""
        previous = self._doc_state.get(doc)
        if not previous:
            return
        for term in previous:
            postings = self._term_postings.get(term)
            if postings is not None:
                postings.pop(doc, None)
                if not postings:
                    del self._term_postings[term]
            self._staged.pop(term, None)

    # ------------------------------------------------------------------
    # Reads (used by seal and snapshot materialization)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of distinct documents this delta defines."""
        return len(self._doc_state)

    @property
    def num_postings(self) -> int:
        """Alive postings currently buffered (sizing signal)."""
        return sum(len(p) for p in self._term_postings.values())

    @property
    def terms(self) -> List[str]:
        """Terms with at least one alive posting in this delta."""
        return list(self._term_postings)

    def version_of(self, doc_id: int) -> Version:
        """The buffered version of ``doc_id`` (KeyError when untouched)."""
        return self._doc_state[int(doc_id)]

    def __contains__(self, doc_id: int) -> bool:
        return int(doc_id) in self._doc_state

    def postings_for(self, term: str) -> Tuple[np.ndarray, np.ndarray]:
        """Alive postings of ``term`` as doc-id-sorted numpy columns.

        Staged once per term and reused until a write touches the term
        again — seal and snapshot paths both consume this columnar form.
        """
        staged = self._staged.get(term)
        if staged is None:
            postings = self._term_postings.get(term, {})
            docs = np.fromiter(postings.keys(), dtype=np.int64, count=len(postings))
            scores = np.fromiter(postings.values(), dtype=np.float64, count=len(postings))
            order = np.argsort(docs)
            staged = (docs[order], scores[order])
            self._staged[term] = staged
        return staged

    def touched_docs(self) -> np.ndarray:
        """Sorted array of every doc id this delta defines (incl. tombstones)."""
        return np.array(sorted(self._doc_state), dtype=np.int64)

    def alive_postings(self) -> Dict[str, List[Tuple[int, float]]]:
        """Per-term alive postings in builder form (for sealing)."""
        return {
            term: list(postings.items())
            for term, postings in self._term_postings.items()
        }

    def freeze(self) -> Dict[int, Version]:
        """Point-in-time copy of the forward view for a snapshot.

        Shallow by design: versions are immutable after insertion, so
        sharing them between the live memtable and frozen snapshots is
        safe.
        """
        return dict(self._doc_state)
