"""Immutable, epoch-tagged snapshots of a live index.

A :class:`LiveSnapshot` is a consistent point-in-time view over the
layer stack of a :class:`~repro.live.index.LiveIndex`:

    base index   (oldest — the immutable block index the live index wraps)
    segment 0..N (sealed memtables, oldest first)
    delta        (a frozen copy of the unsealed memtable's forward view)

Newer layers **shadow** older ones at document granularity: a doc id
defined by layer ``i`` (as a full version or a tombstone) erases every
occurrence of that doc in layers ``< i``.  The effective posting set of
a term is therefore the base list minus shadowed docs, plus each
segment's list minus docs shadowed above it, plus the delta's alive
postings.

**Why results are byte-identical to a rebuild.**  The effective posting
set per term is a plain multiset of ``(doc_id, score)`` pairs, and
:class:`~repro.storage.block_index.IndexList`'s constructor is a pure
function of that multiset (canonical sort: score descending, doc id
ascending on ties; deterministic blocked layout; binary-search lookup
columns).  :meth:`LiveSnapshot.index` materializes every *touched* term
through that same constructor with the same block size, and reproduces
``build_index``'s ``num_docs`` default (distinct alive documents), so
the resulting :class:`SnapshotIndex` is indistinguishable — layout,
statistics, access schedule, costs — from ``build_index`` over the
equivalent document set.  Untouched terms reuse the frozen base
:class:`IndexList` objects zero-copy.

Snapshots are refcounted by their owning live index: every
``live.snapshot()`` call must be balanced by :meth:`LiveSnapshot.close`
(or use the snapshot as a context manager).  While any snapshot pins a
segment, compaction may retire the segment but will not unlink its
spilled file.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..storage.block_index import IndexList, InvertedBlockIndex
from .memtable import Version


def in_sorted(values: np.ndarray, sorted_arr: np.ndarray) -> np.ndarray:
    """Boolean membership mask of ``values`` in a sorted int64 array."""
    if sorted_arr.size == 0:
        return np.zeros(values.shape, dtype=bool)
    pos = np.searchsorted(sorted_arr, values)
    pos = np.minimum(pos, sorted_arr.size - 1)
    return sorted_arr[pos] == values


class Segment:
    """One sealed, immutable layer: a block index plus its defined-doc set.

    ``index`` holds the layer's own alive postings (built through the
    canonical constructor at seal/merge time, possibly mmap-backed);
    ``defined_docs`` is the sorted set of every doc id the layer
    defines — alive versions *and* tombstones — which is what shadows
    deeper layers.  ``refs`` counts the owning live index's structure
    plus every snapshot pinning the segment; a segment ``retired`` by
    compaction has its spilled file unlinked once the count drains.
    """

    __slots__ = ("index", "defined_docs", "epoch", "path", "refs", "retired", "_alive")

    def __init__(
        self,
        index: InvertedBlockIndex,
        defined_docs: np.ndarray,
        epoch: int,
        path=None,
    ) -> None:
        self.index = index
        self.defined_docs = np.asarray(defined_docs, dtype=np.int64)
        self.epoch = int(epoch)
        self.path = path
        self.refs = 1  # the owning LiveIndex's structural reference
        self.retired = False
        self._alive: Optional[frozenset] = None

    @property
    def alive_docs(self) -> frozenset:
        """Doc ids with at least one posting in this segment (cached)."""
        if self._alive is None:
            docs: set = set()
            for lst in self.index:
                docs.update(lst.doc_ids_by_rank.tolist())
            self._alive = frozenset(docs)
        return self._alive

    def defines(self, doc_id: int) -> bool:
        """Does this layer define ``doc_id`` (version or tombstone)?"""
        arr = self.defined_docs
        pos = int(np.searchsorted(arr, int(doc_id)))
        return pos < arr.size and int(arr[pos]) == int(doc_id)

    @property
    def num_postings(self) -> int:
        return sum(len(lst) for lst in self.index)

    @property
    def num_tombstones(self) -> int:
        """Defined docs with no postings here (pure shadows)."""
        return int(self.defined_docs.size) - len(self.alive_docs)

    @property
    def size(self) -> int:
        """Size signal for the tiering policy: postings + defined docs."""
        return self.num_postings + int(self.defined_docs.size)


class SnapshotIndex(InvertedBlockIndex):
    """A lazily materialized index view over one :class:`LiveSnapshot`.

    Subclasses :class:`InvertedBlockIndex` so every consumer — the
    executor, :class:`~repro.stats.catalog.StatsCatalog`, serialization,
    sharding — works unchanged.  Term lists materialize on first access
    (untouched terms come back as the base's own ``IndexList`` objects,
    zero-copy) and are cached for the snapshot's lifetime; the cache is
    what gives one snapshot a stable ``id()``-keyed statistics entry in
    :class:`~repro.core.session.QuerySession`.
    """

    def __init__(self, snapshot: "LiveSnapshot", num_docs: int, term_order: Tuple[str, ...]) -> None:
        super().__init__({}, num_docs=num_docs)
        self._snapshot = snapshot
        self._term_order = term_order
        self._term_set = frozenset(term_order)

    @property
    def epoch(self) -> int:
        return self._snapshot.epoch

    @property
    def terms(self) -> List[str]:
        return list(self._term_order)

    def __contains__(self, term: str) -> bool:
        return term in self._term_set

    def __len__(self) -> int:
        return len(self._term_order)

    def list_for(self, term: str) -> IndexList:
        lst = self._lists.get(term)
        if lst is None:
            if term not in self._term_set:
                raise KeyError("no index list for term %r" % term)
            with self._snapshot._lock:
                lst = self._lists.get(term)
                if lst is None:
                    lst = self._snapshot._materialize_list(term)
                    self._lists[term] = lst
        return lst

    def __iter__(self):
        return iter(self.list_for(term) for term in self._term_order)


class LiveSnapshot:
    """One immutable epoch of a live index.  See the module docstring.

    Create through :meth:`repro.live.index.LiveIndex.snapshot` only;
    every handle must be closed exactly once (context-manager friendly).
    The same object is returned to every caller while the epoch is
    unchanged, so per-index session caches (statistics, executors) hit
    across queries against the same epoch.
    """

    def __init__(
        self,
        owner,
        epoch: int,
        base: Optional[InvertedBlockIndex],
        segments: Tuple[Segment, ...],
        delta: Dict[int, Version],
        block_size: int,
        collection_size: Optional[int],
        base_doc_ids: np.ndarray,
    ) -> None:
        self._owner = owner
        self.epoch = int(epoch)
        self.base = base
        self.segments = tuple(segments)
        self._delta = delta
        self.block_size = int(block_size)
        self._collection_size = collection_size
        self._base_doc_ids = base_doc_ids

        # Shadow sets: for each layer, the sorted union of doc ids
        # defined by every layer *above* it.  Computed top-down once;
        # every per-term materialization masks against them.
        delta_defined = np.array(sorted(delta), dtype=np.int64)
        shadows: List[np.ndarray] = []
        cumulative = delta_defined
        for segment in reversed(self.segments):
            shadows.append(cumulative)
            cumulative = np.union1d(cumulative, segment.defined_docs)
        shadows.reverse()
        self._segment_shadows = shadows
        #: every doc id defined above the base (segments + delta)
        self._base_shadow = cumulative

        self._delta_by_term: Optional[Dict[str, Tuple[np.ndarray, np.ndarray]]] = None
        self._index: Optional[SnapshotIndex] = None
        self._lock = threading.Lock()
        #: handle count, managed by the owner under the owner's lock
        self._refs = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def acquire(self) -> "LiveSnapshot":
        """Take one more handle on this snapshot (pair with close).

        Used by holders of an existing handle to extend the pin to
        another scope (e.g. one per in-flight query); acquiring a fully
        released snapshot raises.
        """
        return self._owner._acquire_snapshot(self)

    def close(self) -> None:
        """Release this handle (each ``snapshot()`` call needs one close)."""
        self._owner._release_snapshot(self)

    def __enter__(self) -> "LiveSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The index view
    # ------------------------------------------------------------------
    @property
    def index(self) -> SnapshotIndex:
        """The queryable index view (built lazily, cached per snapshot)."""
        view = self._index
        if view is None:
            with self._lock:
                view = self._index
                if view is None:
                    view = SnapshotIndex(
                        self, self._compute_num_docs(), self._compute_term_order()
                    )
                    self._index = view
        return view

    def _compute_term_order(self) -> Tuple[str, ...]:
        """Base vocabulary in base order, then new terms sorted.

        A term whose postings are all deleted stays in the vocabulary
        with an empty list — mirroring sharded execution, where a term
        may legitimately have zero postings in one partition.
        """
        order: List[str] = list(self.base.terms) if self.base is not None else []
        known = set(order)
        extra: set = set()
        for segment in self.segments:
            for term in segment.index.terms:
                if term not in known:
                    extra.add(term)
        for version in self._delta.values():
            if version:
                for term in version:
                    if term not in known:
                        extra.add(term)
        order.extend(sorted(extra))
        return tuple(order)

    def _compute_num_docs(self) -> int:
        """Distinct alive documents (matching ``build_index``'s default).

        A document is alive when its newest defining layer gives it at
        least one posting; base docs count unless shadowed.  When the
        live index was given an explicit ``collection_size`` (documents
        matching no indexed term), it acts as a floor, mirroring the
        explicit ``num_docs`` argument of ``build_index``.
        """
        base_alive = 0
        if self._base_doc_ids.size:
            shadowed = in_sorted(self._base_doc_ids, self._base_shadow)
            base_alive = int(self._base_doc_ids.size - np.count_nonzero(shadowed))
        decided: Dict[int, bool] = {}
        for doc, version in self._delta.items():
            decided[doc] = bool(version)
        for segment in reversed(self.segments):
            alive = segment.alive_docs
            for doc in segment.defined_docs.tolist():
                if doc not in decided:
                    decided[doc] = doc in alive
        alive_count = base_alive + sum(1 for alive in decided.values() if alive)
        floor = self._collection_size if self._collection_size is not None else 1
        return max(alive_count, floor, 1)

    # ------------------------------------------------------------------
    # Per-term materialization
    # ------------------------------------------------------------------
    def _delta_postings(self) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
        """The delta's alive postings per term, as sorted columns.

        Built once per snapshot (callers hold ``self._lock``), touching
        only the documents the delta defines.
        """
        staged = self._delta_by_term
        if staged is None:
            per_term: Dict[str, Dict[int, float]] = {}
            for doc, version in self._delta.items():
                if version:
                    for term, score in version.items():
                        per_term.setdefault(term, {})[doc] = score
            staged = {}
            for term, postings in per_term.items():
                docs = np.fromiter(postings.keys(), dtype=np.int64, count=len(postings))
                scores = np.fromiter(postings.values(), dtype=np.float64, count=len(postings))
                order = np.argsort(docs)
                staged[term] = (docs[order], scores[order])
            self._delta_by_term = staged
        return staged

    def _materialize_list(self, term: str) -> IndexList:
        """Effective list of ``term``: canonical rebuild or zero-copy reuse.

        Callers hold ``self._lock`` (see :meth:`SnapshotIndex.list_for`).
        """
        base_list: Optional[IndexList] = None
        if self.base is not None and term in self.base:
            base_list = self.base.list_for(term)
        delta = self._delta_postings().get(term)
        segment_hits = [
            (segment, shadow)
            for segment, shadow in zip(self.segments, self._segment_shadows)
            if term in segment.index and len(segment.index.list_for(term))
        ]

        if delta is None and not segment_hits and base_list is not None:
            # Untouched fast path: no layer adds postings for the term and
            # no base posting is shadowed — the frozen list is the answer.
            touched = in_sorted(base_list.doc_ids_by_rank, self._base_shadow)
            if not touched.any():
                return base_list

        docs_parts: List[np.ndarray] = []
        score_parts: List[np.ndarray] = []
        if base_list is not None and len(base_list):
            keep = ~in_sorted(base_list.doc_ids_by_rank, self._base_shadow)
            docs_parts.append(base_list.doc_ids_by_rank[keep])
            score_parts.append(base_list.scores_by_rank[keep])
        for segment, shadow in segment_hits:
            lst = segment.index.list_for(term)
            keep = ~in_sorted(lst.doc_ids_by_rank, shadow)
            docs_parts.append(lst.doc_ids_by_rank[keep])
            score_parts.append(lst.scores_by_rank[keep])
        if delta is not None:
            docs_parts.append(delta[0])
            score_parts.append(delta[1])

        docs = (
            np.concatenate(docs_parts) if docs_parts else np.empty(0, dtype=np.int64)
        )
        scores = (
            np.concatenate(score_parts) if score_parts else np.empty(0, dtype=np.float64)
        )
        # The canonical constructor makes layout, lookup columns, and
        # hence every downstream statistic a pure function of the
        # posting multiset — the whole byte-identity argument.
        return IndexList(term, docs, scores, block_size=self.block_size)
