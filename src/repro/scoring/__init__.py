"""Scoring models: BM25, TF-IDF, and Dirichlet LM over a columnar corpus."""

from .base import Corpus, ScoringModel
from .bm25 import BM25
from .language_model import DirichletLM
from .tfidf import TfIdf

__all__ = ["BM25", "Corpus", "DirichletLM", "ScoringModel", "TfIdf"]
