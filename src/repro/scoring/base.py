"""Corpus representation and the scoring-model interface.

A :class:`Corpus` is a columnar bag-of-words collection: parallel posting
arrays ``(doc, term, tf)`` plus per-document lengths and per-term document
frequencies.  Scoring models turn a corpus into scored posting lists and,
via :meth:`ScoringModel.build_index`, into the inverted block-index the
query engine operates on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..storage.block_index import DEFAULT_BLOCK_SIZE, InvertedBlockIndex
from ..storage.index_builder import build_index


class Corpus:
    """Columnar term-frequency corpus.

    Parameters
    ----------
    posting_docs, posting_terms, posting_tfs:
        Parallel arrays: one entry per distinct (document, term) pair.
    doc_lengths:
        Token count per document (indexed by doc id, 0-based and dense).
    vocabulary:
        Term id -> term string.
    """

    def __init__(
        self,
        posting_docs: np.ndarray,
        posting_terms: np.ndarray,
        posting_tfs: np.ndarray,
        doc_lengths: np.ndarray,
        vocabulary: Sequence[str],
    ) -> None:
        posting_docs = np.asarray(posting_docs, dtype=np.int64)
        posting_terms = np.asarray(posting_terms, dtype=np.int64)
        posting_tfs = np.asarray(posting_tfs, dtype=np.int64)
        if not (
            posting_docs.shape == posting_terms.shape == posting_tfs.shape
        ):
            raise ValueError("posting arrays must be parallel")
        self.doc_lengths = np.asarray(doc_lengths, dtype=np.int64)
        self.vocabulary = list(vocabulary)
        self.term_ids: Dict[str, int] = {
            term: idx for idx, term in enumerate(self.vocabulary)
        }
        self.num_docs = int(self.doc_lengths.size)
        self.num_terms = len(self.vocabulary)
        if posting_terms.size and int(posting_terms.max()) >= self.num_terms:
            raise ValueError("posting term id outside the vocabulary")
        if posting_docs.size and int(posting_docs.max()) >= self.num_docs:
            raise ValueError("posting doc id outside doc_lengths")

        # CSR layout by term for fast per-term posting access.
        order = np.argsort(posting_terms, kind="stable")
        self._docs = posting_docs[order]
        self._tfs = posting_tfs[order]
        sorted_terms = posting_terms[order]
        self._offsets = np.searchsorted(
            sorted_terms, np.arange(self.num_terms + 1)
        )
        self.doc_freq = np.diff(self._offsets)
        total_tokens = float(self.doc_lengths.sum())
        self.avg_doc_length = (
            total_tokens / self.num_docs if self.num_docs else 0.0
        )

    @classmethod
    def from_documents(
        cls, documents: Sequence[Mapping[str, int]]
    ) -> "Corpus":
        """Build a corpus from per-document ``{term: tf}`` mappings."""
        vocabulary: List[str] = []
        term_ids: Dict[str, int] = {}
        docs: List[int] = []
        terms: List[int] = []
        tfs: List[int] = []
        lengths: List[int] = []
        for doc_id, doc in enumerate(documents):
            length = 0
            for term, tf in doc.items():
                term_id = term_ids.get(term)
                if term_id is None:
                    term_id = len(vocabulary)
                    term_ids[term] = term_id
                    vocabulary.append(term)
                docs.append(doc_id)
                terms.append(term_id)
                tfs.append(int(tf))
                length += int(tf)
            lengths.append(length)
        return cls(
            np.array(docs, dtype=np.int64),
            np.array(terms, dtype=np.int64),
            np.array(tfs, dtype=np.int64),
            np.array(lengths, dtype=np.int64),
            vocabulary,
        )

    def postings_for(self, term: str) -> Tuple[np.ndarray, np.ndarray]:
        """``(doc_ids, tfs)`` of one term; empty arrays for unknown terms."""
        term_id = self.term_ids.get(term)
        if term_id is None:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        start, stop = self._offsets[term_id], self._offsets[term_id + 1]
        return self._docs[start:stop], self._tfs[start:stop]

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        term_id = self.term_ids.get(term)
        return int(self.doc_freq[term_id]) if term_id is not None else 0


class ScoringModel:
    """Base class for per-term relevance scoring models."""

    name = "scoring"

    def score_postings(
        self, corpus: Corpus, term: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(doc_ids, scores)`` for one term's posting list."""
        raise NotImplementedError

    def normalize(self, scores: np.ndarray) -> np.ndarray:
        """Normalize one list's scores into (0, 1] (paper Sec. 2.1)."""
        if scores.size == 0:
            return scores
        top = float(scores.max())
        return scores / top if top > 0 else scores

    def scored_postings(
        self,
        corpus: Corpus,
        terms: Optional[Iterable[str]] = None,
    ) -> dict:
        """Normalized scored posting lists per term.

        ``terms`` restricts the result to the given terms (e.g. the union
        of a query workload); by default every vocabulary term is scored.
        """
        if terms is None:
            terms = corpus.vocabulary
        postings = {}
        for term in terms:
            doc_ids, scores = self.score_postings(corpus, term)
            if doc_ids.size == 0:
                continue
            postings[term] = list(
                zip(doc_ids.tolist(), self.normalize(scores).tolist())
            )
        return postings

    def build_index(
        self,
        corpus: Corpus,
        terms: Optional[Iterable[str]] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> InvertedBlockIndex:
        """Score the corpus and build the inverted block-index."""
        postings = self.scored_postings(corpus, terms)
        return build_index(
            postings, num_docs=corpus.num_docs, block_size=block_size
        )
