"""Okapi BM25 scoring (the paper's primary Terabyte scoring model).

BM25 produces comparatively *flat* per-list score distributions: for the
bulk of a posting list the term frequency saturates (most postings have
small tf) and the spread comes from document-length normalization.  The
paper's experiments (Sec. 6.2.1, 6.4) show that this flatness makes
round-robin SA scheduling near-optimal, whereas skewed models (TF-IDF,
Zipf) reward the knapsack schedulers — our synthetic collections reproduce
that contrast through these scoring models.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Corpus, ScoringModel


class BM25(ScoringModel):
    """Okapi BM25 with the standard (k1, b) parametrization.

    ``score(t, d) = idf(t) * tf * (k1 + 1) / (tf + k1 * (1 - b + b * |d|/avg))``
    with the "plus one" idf variant that keeps scores non-negative:
    ``idf(t) = ln(1 + (N - df + 0.5) / (df + 0.5))``.
    """

    name = "bm25"

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise ValueError("b must be within [0, 1]")
        self.k1 = k1
        self.b = b

    def idf(self, corpus: Corpus, term: str) -> float:
        """Inverse document frequency of ``term`` in ``corpus``."""
        df = corpus.document_frequency(term)
        n = corpus.num_docs
        return float(np.log(1.0 + (n - df + 0.5) / (df + 0.5)))

    def score_postings(
        self, corpus: Corpus, term: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        doc_ids, tfs = corpus.postings_for(term)
        if doc_ids.size == 0:
            return doc_ids, np.empty(0, dtype=np.float64)
        tfs = tfs.astype(np.float64)
        lengths = corpus.doc_lengths[doc_ids].astype(np.float64)
        avg = corpus.avg_doc_length if corpus.avg_doc_length > 0 else 1.0
        denom = tfs + self.k1 * (1.0 - self.b + self.b * lengths / avg)
        scores = self.idf(corpus, term) * tfs * (self.k1 + 1.0) / denom
        return doc_ids, scores
