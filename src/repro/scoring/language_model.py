"""Dirichlet-smoothed query-likelihood scoring (language-model IR).

A third scoring model alongside BM25 and TF-IDF, completing the usual IR
trio.  Scores are the (shifted) log-likelihood of generating the term from
the document's smoothed language model:

    score(t, d) = ln( 1 + (tf / (mu * P(t|C))) ) + ln( mu / (|d| + mu) )

shifted per list so the minimum posting score is positive (TA-family
processing needs non-negative, descending scores; monotone shifts do not
change the per-list ranking, and the final per-list normalization maps the
scores into (0, 1] like the other models).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Corpus, ScoringModel


class DirichletLM(ScoringModel):
    """Query likelihood with Dirichlet prior smoothing (mu ~ 2000)."""

    name = "dirichlet-lm"

    def __init__(self, mu: float = 2000.0) -> None:
        if mu <= 0:
            raise ValueError("mu must be positive")
        self.mu = mu

    def collection_probability(self, corpus: Corpus, term: str) -> float:
        """``P(t|C)``: the term's relative frequency in the collection."""
        term_id = corpus.term_ids.get(term)
        if term_id is None:
            return 0.0
        start, stop = (
            corpus._offsets[term_id], corpus._offsets[term_id + 1]
        )
        term_tokens = float(corpus._tfs[start:stop].sum())
        total_tokens = float(corpus.doc_lengths.sum())
        return term_tokens / total_tokens if total_tokens else 0.0

    def score_postings(
        self, corpus: Corpus, term: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        doc_ids, tfs = corpus.postings_for(term)
        if doc_ids.size == 0:
            return doc_ids, np.empty(0, dtype=np.float64)
        p_collection = self.collection_probability(corpus, term)
        if p_collection <= 0.0:
            return doc_ids, np.zeros(doc_ids.size)
        lengths = corpus.doc_lengths[doc_ids].astype(np.float64)
        scores = (
            np.log1p(tfs.astype(np.float64) / (self.mu * p_collection))
            + np.log(self.mu / (lengths + self.mu))
        )
        # Shift the list into positive territory (monotone, rank-safe).
        low = float(scores.min())
        if low <= 0.0:
            scores = scores - low + 1e-6
        return doc_ids, scores
