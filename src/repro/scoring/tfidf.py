"""Length-normalized TF-IDF scoring (the paper's second Terabyte model).

TF-IDF lacks BM25's term-frequency saturation, so a list's scores fall off
much more steeply from the top — the "more skewed" distribution for which
the paper reports up to 15% additional gains from knapsack SA scheduling
(Fig. 5, right).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Corpus, ScoringModel


class TfIdf(ScoringModel):
    """``score(t, d) = (tf / |d|) * ln(N / df)`` — raw tf, length-damped.

    Dividing by the document length spreads the many tf = 1 postings into a
    continuum (mirroring cosine-style normalization) while keeping the
    linear-in-tf head that makes the distribution skewed.
    """

    name = "tfidf"

    def idf(self, corpus: Corpus, term: str) -> float:
        """Inverse document frequency of ``term`` in ``corpus``."""
        df = corpus.document_frequency(term)
        if df == 0:
            return 0.0
        return float(np.log(max(corpus.num_docs, 1) / df))

    def score_postings(
        self, corpus: Corpus, term: str
    ) -> Tuple[np.ndarray, np.ndarray]:
        doc_ids, tfs = corpus.postings_for(term)
        if doc_ids.size == 0:
            return doc_ids, np.empty(0, dtype=np.float64)
        lengths = np.maximum(
            corpus.doc_lengths[doc_ids].astype(np.float64), 1.0
        )
        scores = (tfs.astype(np.float64) / lengths) * self.idf(corpus, term)
        return doc_ids, scores
