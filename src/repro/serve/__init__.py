"""Online query serving: admission control, load shedding, degradation.

The engine below this package is batch-shaped: a
:class:`~repro.core.session.QuerySession` (or
:class:`~repro.core.session.ShardedSession`) answers one query at a time
and the anytime :class:`~repro.core.executor.QueryDeadline` machinery
turns overload into *degraded-but-well-formed* partial results.  This
package puts that contract behind a service boundary, where concurrent
demand, failures, and deadlines are first-class, observable behavior:

* :mod:`repro.serve.http` — a minimal HTTP/1.1 layer over asyncio
  streams (stdlib only; the repo adds no serving dependency),
* :mod:`repro.serve.admission` — the admission controller: a bounded
  wait queue, a concurrency limit, and a backlog estimate that rejects
  work the service provably cannot finish in time (HTTP 429 with a
  computed ``Retry-After``),
* :mod:`repro.serve.shedding` — the load-shedding policy: a hysteresis
  state machine that first *tightens deadline budgets* (queries complete
  as partial results, HTTP 206) and only then rejects outright,
* :mod:`repro.serve.errors` — structured error mapping: validation
  failures, dead shards, and storage faults become typed 4xx/5xx JSON
  responses instead of tracebacks,
* :mod:`repro.serve.service` — :class:`QueryService`, the long-lived
  asyncio server tying the pieces together,
* :mod:`repro.serve.loadgen` — the traffic-replay load driver built on
  :mod:`repro.data.httplog`'s heavy-tailed per-user traffic; records
  p50/p99 latency, shed-rate, and degraded-rate curves
  (``BENCH_pr6.json``, gated in CI).

See ``docs/SERVING.md`` for the policy and status-code contract.
"""

from .admission import AdmissionController, AdmissionDecision
from .errors import ServiceError, map_exception
from .service import QueryService, ServiceConfig, ServiceMetrics
from .shedding import (
    LEVEL_DEGRADE,
    LEVEL_NORMAL,
    LEVEL_REJECT,
    HysteresisShedder,
    ShedConfig,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "HysteresisShedder",
    "LEVEL_DEGRADE",
    "LEVEL_NORMAL",
    "LEVEL_REJECT",
    "QueryService",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ShedConfig",
    "map_exception",
]
