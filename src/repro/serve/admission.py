"""The admission controller: bounded queue, concurrency, backlog budget.

Admission answers one question per arriving query: *can this request
wait its turn and still be served within the service's latency
contract?*  Three signals feed the decision:

* **queue depth** — at most ``max_queue`` requests may wait for an
  execution slot; beyond that the queue itself is the outage,
* **backlog estimate** — ``(waiting + in_flight) * EWMA(service time) /
  max_concurrency`` approximates how long a new arrival would wait;
  once it exceeds ``backlog_budget_ms`` the request would blow its
  latency budget even though the queue has room,
* **cost class** — queries whose estimated engine cost (sum of the
  query lists' lengths) reaches ``heavy_cost_threshold`` are ``heavy``;
  the shedding policy tightens their budgets harder under pressure.

A rejection carries a computed ``Retry-After``: the time the current
backlog needs to drain below budget — an honest hint, not a constant.

The controller is pure bookkeeping (no asyncio primitives) so it is
unit-testable without a running server; :class:`QueryService` owns the
semaphore and reports enqueue/start/finish events here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: Cost classes assigned at admission time.
CLASS_LIGHT = "light"
CLASS_HEAVY = "heavy"


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict for one arriving request."""

    admitted: bool
    reason: str = "ok"  # ok | queue_full | backlog | shed_reject
    retry_after_s: Optional[float] = None
    cost_class: str = CLASS_LIGHT


class AdmissionController:
    """Tracks load and decides admission; see the module docstring.

    ``ewma_alpha`` weights the newest completed request's service time
    in the exponential moving average; ``initial_service_ms`` seeds the
    average before the first completion (a pessimistic seed sheds too
    eagerly, an optimistic one too late — it converges either way).
    """

    def __init__(
        self,
        max_queue: int,
        max_concurrency: int,
        backlog_budget_ms: float,
        heavy_cost_threshold: float = float("inf"),
        ewma_alpha: float = 0.2,
        initial_service_ms: float = 10.0,
    ) -> None:
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        if backlog_budget_ms <= 0:
            raise ValueError("backlog_budget_ms must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.max_queue = max_queue
        self.max_concurrency = max_concurrency
        self.backlog_budget_ms = backlog_budget_ms
        self.heavy_cost_threshold = heavy_cost_threshold
        self.ewma_alpha = ewma_alpha
        self.ewma_service_ms = initial_service_ms
        self.waiting = 0
        self.in_flight = 0
        self.completed = 0
        self.rejected_queue_full = 0
        self.rejected_backlog = 0

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def classify(self, cost_estimate: float) -> str:
        """The cost class for a query with this estimated engine cost."""
        if cost_estimate >= self.heavy_cost_threshold:
            return CLASS_HEAVY
        return CLASS_LIGHT

    def backlog_ms(self, extra: int = 1) -> float:
        """Estimated wait for the ``extra``-th new arrival, in ms."""
        pending = self.waiting + self.in_flight + extra - 1
        slots_ahead = max(pending - self.max_concurrency + 1, 0)
        return slots_ahead * self.ewma_service_ms / self.max_concurrency

    def pressure(self) -> float:
        """The dimensionless overload signal fed to the shedder.

        The max of queue occupancy and backlog occupancy: either budget
        running out alone is pressure 1.0.
        """
        queue_part = (
            self.waiting / self.max_queue if self.max_queue > 0 else 0.0
        )
        backlog_part = self.backlog_ms(extra=0) / self.backlog_budget_ms
        return max(queue_part, backlog_part)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def admit(self, cost_estimate: float = 0.0) -> AdmissionDecision:
        """Decide admission for one arriving query (pure; no side effect).

        The caller applies the decision: on admit it must bracket the
        request with :meth:`note_enqueued` / :meth:`note_started` /
        :meth:`note_finished`.
        """
        cost_class = self.classify(cost_estimate)
        if self.waiting >= self.max_queue:
            self.rejected_queue_full += 1
            return AdmissionDecision(
                admitted=False,
                reason="queue_full",
                retry_after_s=self._retry_after(),
                cost_class=cost_class,
            )
        backlog = self.backlog_ms()
        if backlog > self.backlog_budget_ms:
            self.rejected_backlog += 1
            return AdmissionDecision(
                admitted=False,
                reason="backlog",
                retry_after_s=self._retry_after(backlog),
                cost_class=cost_class,
            )
        return AdmissionDecision(admitted=True, cost_class=cost_class)

    def retry_after_hint(self) -> float:
        """Public retry hint for rejections decided outside ``admit``
        (the shedder's reject level)."""
        return self._retry_after()

    def _retry_after(self, backlog: Optional[float] = None) -> float:
        """Seconds until the present backlog should drain below budget."""
        if backlog is None:
            backlog = self.backlog_ms()
        excess_ms = max(backlog - self.backlog_budget_ms, 0.0)
        # At least one service time: retrying sooner meets the same wall.
        wait_ms = max(excess_ms, self.ewma_service_ms)
        return math.ceil(wait_ms / 100.0) / 10.0  # round up to 0.1 s

    # ------------------------------------------------------------------
    # Lifecycle events (reported by the service)
    # ------------------------------------------------------------------
    def note_enqueued(self) -> None:
        self.waiting += 1

    def note_started(self) -> None:
        self.waiting -= 1
        self.in_flight += 1

    def note_finished(self, service_ms: float) -> None:
        self.in_flight -= 1
        self.completed += 1
        self.ewma_service_ms += self.ewma_alpha * (
            service_ms - self.ewma_service_ms
        )

    def note_abandoned(self) -> None:
        """An enqueued request left the queue without starting."""
        self.waiting -= 1

    def snapshot(self) -> dict:
        """Gauges and counters for /healthz and /metrics."""
        return {
            "waiting": self.waiting,
            "in_flight": self.in_flight,
            "completed": self.completed,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_backlog": self.rejected_backlog,
            "ewma_service_ms": round(self.ewma_service_ms, 3),
            "backlog_ms": round(self.backlog_ms(extra=0), 3),
            "pressure": round(self.pressure(), 4),
        }
