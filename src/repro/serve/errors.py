"""Structured error mapping: exceptions become typed JSON responses.

Every failure mode the engine can produce has a stable ``(status,
code)`` pair, so clients and the load driver can assert on behavior
instead of parsing tracebacks:

============================  ======  =====================
exception                     status  code
============================  ======  =====================
invalid query (ValueError)    400     ``invalid_query``
malformed JSON body           400     ``invalid_json``
unsupported HTTP framing      4xx     ``bad_request``
overload rejection            429     ``overloaded``
too many shards failed        503     ``shards_failed``
list retries exhausted        503     ``list_unavailable``
raw storage fault             503     ``storage_fault``
anything else                 500     ``internal``
============================  ======  =====================

The 5xx split is deliberate: 503s are *injected-fault or capacity*
paths a retrying client may recover from, 500 is a bug.  Overload never
maps to 5xx — the admission controller answers 429 before the engine is
even involved, which is what "the service stays up" means.
"""

from __future__ import annotations

from typing import Dict, Optional


class ServiceError(Exception):
    """A failure with a stable HTTP status and machine-readable code."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_s: Optional[float] = None,
        details: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s
        self.details = dict(details) if details else {}

    def body(self) -> Dict[str, object]:
        """The JSON error envelope every non-2xx response carries."""
        error: Dict[str, object] = {
            "code": self.code,
            "message": self.message,
        }
        if self.retry_after_s is not None:
            error["retry_after_s"] = round(self.retry_after_s, 3)
        if self.details:
            error["details"] = self.details
        return {"error": error}


def map_exception(exc: BaseException) -> ServiceError:
    """Map any exception from the query path to a :class:`ServiceError`."""
    from ..distrib.coordinator import ShardedExecutionError
    from ..storage.accessors import ListUnavailableError
    from ..storage.faults import IndexCorruptionError, TransientIOError

    if isinstance(exc, ServiceError):
        return exc
    if isinstance(exc, ShardedExecutionError):
        return ServiceError(
            503,
            "shards_failed",
            "too many shards failed for the degrade policy",
            details={
                "failures": [f.describe() for f in exc.failures],
            },
        )
    if isinstance(exc, ListUnavailableError):
        return ServiceError(
            503,
            "list_unavailable",
            str(exc),
            details={"term": exc.term, "kind": exc.kind},
        )
    if isinstance(exc, (TransientIOError, IndexCorruptionError)):
        return ServiceError(503, "storage_fault", str(exc))
    if isinstance(exc, (ValueError, KeyError, TypeError)):
        # Plan/validation failures: the request was well-formed HTTP+JSON
        # but names an impossible query (bad k, unknown algorithm, ...).
        return ServiceError(400, "invalid_query", str(exc))
    return ServiceError(
        500, "internal", "%s: %s" % (type(exc).__name__, exc)
    )
