"""Minimal HTTP/1.1 over asyncio streams — just enough for the service.

The repo deliberately adds no serving dependency: the service speaks a
small, strict subset of HTTP/1.1 (``Content-Length`` bodies, keep-alive,
no chunked transfer, no continuations), which is all the load driver and
any curl-style client need.  Anything outside the subset is answered
with a typed 4xx/5xx by the caller — malformed framing raises
:class:`HttpProtocolError` carrying the status to answer with.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Reason phrases for every status the service emits.
STATUS_REASONS = {
    200: "OK",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Cap on the request line + headers block, independent of the body cap.
MAX_HEADER_BYTES = 16 * 1024


class HttpProtocolError(Exception):
    """Malformed or unsupported HTTP framing; answer with ``status``."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """HTTP/1.1 default keep-alive unless the client closed it."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int = 64 * 1024,
) -> Optional[HttpRequest]:
    """Read one request off the stream.

    Returns ``None`` on a clean EOF before any byte of a new request
    (the client closed a keep-alive connection).  Raises
    :class:`HttpProtocolError` for framing the service does not speak:
    over-long headers (431→400), missing/invalid ``Content-Length``
    (400), chunked transfer (501), and bodies beyond the cap (413).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpProtocolError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpProtocolError(400, "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpProtocolError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpProtocolError(400, "malformed request line")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpProtocolError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpProtocolError(501, "chunked transfer not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpProtocolError(400, "invalid Content-Length")
        if length < 0:
            raise HttpProtocolError(400, "invalid Content-Length")
        if length > max_body_bytes:
            raise HttpProtocolError(413, "request body too large")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpProtocolError(400, "truncated request body")
    path = target.split("?", 1)[0]
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Serialize one response (status line, headers, body) to bytes."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        "HTTP/1.1 %d %s" % (status, reason),
        "Content-Type: %s" % content_type,
        "Content-Length: %d" % len(body),
        "Connection: %s" % ("keep-alive" if keep_alive else "close"),
    ]
    for name, value in extra_headers:
        lines.append("%s: %s" % (name, value))
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
