"""Traffic-replay load driver: overload as a measured scenario.

Replays a seeded, heavy-tailed request trace (built from
:mod:`repro.data.httplog` — the paper's "millions of users" workload)
against a :class:`~repro.serve.service.QueryService` and records what
overload actually does to the service:

* **open loop** — arrivals are a Poisson process at a fixed rate,
  independent of completions (the honest overload model: real users do
  not politely wait for each other),
* **closed loop** — a fixed number of virtual users issue requests
  back-to-back over keep-alive connections (the saturation model).

Every response is checked for *well-formedness* (valid JSON, the
status-code contract, score intervals on every item); the summary
records p50/p95/p99 latency of admitted queries, the shed rate, the
degraded rate, and the full status histogram.  The CLI boots an
in-process server, auto-calibrates a sustainable throughput, replays
the trace at configurable multiples of it, and writes the curves to
``BENCH_pr6.json`` — with ``--gate`` it fails loudly when overload
produces malformed responses, overload-attributable 500s, missing
shedding, or unbounded admitted-latency tails (the CI contract).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.session import QuerySession
from ..data.httplog import TraceRequest, generate_trace, generate_workload
from .service import QueryService, ServiceConfig
from .shedding import ShedConfig


@dataclass
class RequestOutcome:
    """One replayed request, as observed by the client."""

    user: int
    status: int
    latency_ms: float
    degraded: bool = False
    degrade_reason: Optional[str] = None
    shed: bool = False
    malformed: Optional[str] = None  # None = well-formed; else the reason


# ----------------------------------------------------------------------
# Minimal async HTTP client (mirrors serve.http's server-side subset)
# ----------------------------------------------------------------------
async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers.get("content-length", "0")))
    return status, headers, body


class ReplayClient:
    """One keep-alive connection issuing query requests."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def request(self, req: TraceRequest) -> RequestOutcome:
        payload = json.dumps(
            {"terms": list(req.terms), "k": req.k},
            separators=(",", ":"),
        ).encode()
        message = (
            b"POST /query HTTP/1.1\r\n"
            b"Host: repro\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
            b"\r\n" + payload
        )
        started = time.perf_counter()
        try:
            if self._writer is None:
                await self._connect()
            assert self._writer is not None and self._reader is not None
            self._writer.write(message)
            await self._writer.drain()
            status, headers, body = await _read_response(self._reader)
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
            await self.close()
            return RequestOutcome(
                user=req.user,
                status=0,
                latency_ms=(time.perf_counter() - started) * 1000.0,
                malformed="transport: %s" % type(exc).__name__,
            )
        latency_ms = (time.perf_counter() - started) * 1000.0
        return _check_response(req, status, headers, body, latency_ms)


def _check_response(
    req: TraceRequest,
    status: int,
    headers: Dict[str, str],
    body: bytes,
    latency_ms: float,
) -> RequestOutcome:
    """Validate the status-code contract; see docs/SERVING.md."""
    outcome = RequestOutcome(
        user=req.user, status=status, latency_ms=latency_ms
    )
    try:
        data = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        outcome.malformed = "body is not JSON"
        return outcome
    if status in (200, 206):
        items = data.get("items")
        if not isinstance(items, list):
            outcome.malformed = "missing items"
        elif any(
            not isinstance(item, dict)
            or not isinstance(item.get("doc_id"), int)
            or not isinstance(item.get("worstscore"), (int, float))
            or not isinstance(item.get("bestscore"), (int, float))
            or item["worstscore"] > item["bestscore"] + 1e-9
            for item in items
        ):
            outcome.malformed = "malformed result item"
        elif len(items) > req.k:
            outcome.malformed = "more than k items"
        elif data.get("degraded") != (status == 206):
            outcome.malformed = "degraded flag does not match status"
        elif status == 206 and not data.get("degrade_reason"):
            outcome.malformed = "206 without degrade_reason"
        outcome.degraded = status == 206
        outcome.degrade_reason = data.get("degrade_reason")
    elif status == 429:
        outcome.shed = True
        if not isinstance(data.get("error"), dict):
            outcome.malformed = "429 without error envelope"
        elif "retry-after" not in headers:
            outcome.malformed = "429 without Retry-After"
    elif status >= 400:
        if not isinstance(data.get("error"), dict):
            outcome.malformed = "error status without error envelope"
    else:
        outcome.malformed = "unexpected status %d" % status
    return outcome


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
async def replay_open(
    host: str,
    port: int,
    trace: Sequence[TraceRequest],
    rate_qps: float,
    seed: int = 11,
) -> List[RequestOutcome]:
    """Open-loop replay: seeded Poisson arrivals at ``rate_qps``."""
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_qps, size=len(trace))
    arrivals = np.cumsum(gaps)
    started = time.perf_counter()

    async def one(req: TraceRequest, at: float) -> RequestOutcome:
        delay = at - (time.perf_counter() - started)
        if delay > 0:
            await asyncio.sleep(delay)
        client = ReplayClient(host, port)
        try:
            return await client.request(req)
        finally:
            await client.close()

    return list(
        await asyncio.gather(
            *(one(req, at) for req, at in zip(trace, arrivals))
        )
    )


async def replay_closed(
    host: str,
    port: int,
    trace: Sequence[TraceRequest],
    num_clients: int = 8,
) -> List[RequestOutcome]:
    """Closed-loop replay: ``num_clients`` users, back-to-back requests."""
    if num_clients < 1:
        raise ValueError("num_clients must be positive")

    async def worker(requests: Sequence[TraceRequest]) -> List[RequestOutcome]:
        client = ReplayClient(host, port)
        outcomes = []
        try:
            for req in requests:
                outcomes.append(await client.request(req))
        finally:
            await client.close()
        return outcomes

    chunks = [
        list(trace[i::num_clients]) for i in range(num_clients)
    ]
    nested = await asyncio.gather(*(worker(c) for c in chunks if c))
    return [outcome for chunk in nested for outcome in chunk]


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (nearest-rank); 0.0 for empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(math.ceil(q / 100.0 * len(ordered))) - 1, 0)
    return ordered[rank]


def summarize(
    outcomes: Sequence[RequestOutcome], label: str, **extra
) -> dict:
    """Aggregate one scenario's outcomes into the benchmark record."""
    statuses: Dict[str, int] = {}
    for outcome in outcomes:
        key = str(outcome.status)
        statuses[key] = statuses.get(key, 0) + 1
    admitted = [o for o in outcomes if o.status in (200, 206)]
    latencies = [o.latency_ms for o in admitted]
    total = len(outcomes)
    malformed = [o for o in outcomes if o.malformed]
    reasons: Dict[str, int] = {}
    for outcome in admitted:
        if outcome.degrade_reason:
            reasons[outcome.degrade_reason] = (
                reasons.get(outcome.degrade_reason, 0) + 1
            )
    return {
        "label": label,
        "requests": total,
        "statuses": statuses,
        "admitted": len(admitted),
        "shed": sum(1 for o in outcomes if o.shed),
        "shed_rate": (
            sum(1 for o in outcomes if o.shed) / total if total else 0.0
        ),
        "degraded": sum(1 for o in admitted if o.degraded),
        "degraded_rate": (
            sum(1 for o in admitted if o.degraded) / len(admitted)
            if admitted
            else 0.0
        ),
        "degrade_reasons": reasons,
        "server_errors": sum(1 for o in outcomes if o.status >= 500),
        "malformed": len(malformed),
        "malformed_reasons": sorted({o.malformed for o in malformed}),
        "latency_ms": {
            "p50": round(percentile(latencies, 50), 3),
            "p95": round(percentile(latencies, 95), 3),
            "p99": round(percentile(latencies, 99), 3),
            "max": round(max(latencies), 3) if latencies else 0.0,
        },
        **extra,
    }


# ----------------------------------------------------------------------
# Calibration and the CLI scenario runner
# ----------------------------------------------------------------------
def calibrate(
    session: QuerySession,
    trace: Sequence[TraceRequest],
    samples: int = 24,
) -> Tuple[float, float]:
    """Measure direct (no-service) execution: mean ms and p95 COST.

    The mean service time sets the sustainable throughput the scenario
    rates are multiples of; the p95 COST becomes the service's default
    cost budget, so under *normal* load nearly every query finishes
    exactly while a shed-tightened budget reliably truncates.
    """
    costs = []
    wall = []
    for req in list(trace)[:samples]:
        started = time.perf_counter()
        result = session.run(list(req.terms), req.k)
        wall.append((time.perf_counter() - started) * 1000.0)
        costs.append(result.stats.cost)
    return float(np.mean(wall)), float(np.percentile(costs, 95))


def run_scenarios(
    requests: int = 200,
    multipliers: Sequence[float] = (0.5, 1.5, 2.5),
    num_users: int = 6000,
    num_days: int = 12,
    seed: int = 23,
    max_concurrency: int = 2,
    max_queue: int = 16,
    backlog_budget_ms: float = 500.0,
    deadline_ms: float = 250.0,
    closed_clients: int = 0,
) -> dict:
    """Build the workload, boot the service, replay at every multiplier."""
    # Small blocks make queries span many engine rounds, which is what
    # gives the anytime deadline its granularity: budgets are checked
    # *between* rounds, so a one-round workload cannot degrade.
    workload = generate_workload(
        num_users=num_users,
        num_days=num_days,
        num_queries=24,
        block_size=64,
        seed=seed,
    )
    trace = generate_trace(workload, requests, seed=seed + 1)
    session = QuerySession(workload.index)
    session.stats_for(workload.index)  # build statistics before timing
    mean_ms, p95_cost = calibrate(session, trace)
    # Engine executions are GIL-bound python, so worker threads barely
    # multiply throughput: the sustainable rate is the single-thread
    # rate, not concurrency times it.
    sustainable_qps = 1000.0 / max(mean_ms, 1e-3)
    config = ServiceConfig(
        max_concurrency=max_concurrency,
        max_queue=max_queue,
        backlog_budget_ms=backlog_budget_ms,
        default_deadline_ms=deadline_ms,
        default_cost_budget=max(p95_cost, 1.0),
        heavy_cost_threshold=p95_cost,  # top ~5% of queries are "heavy"
        # Harsher-than-default tightening: a shed budget must reliably
        # truncate even the cheap interval queries, or "degrade before
        # reject" never shows up in the measured curves.
        shed=ShedConfig(tighten_factor=0.1, heavy_tighten_factor=0.03),
    )

    async def run_all() -> List[dict]:
        scenarios = []
        for multiplier in multipliers:
            rate = multiplier * sustainable_qps
            # A fresh service per scenario: each rate's metrics, shed
            # level, and EWMA start clean (the session's caches persist).
            async with QueryService(session, config) as service:
                assert service.port is not None
                outcomes = await replay_open(
                    config.host, service.port, trace, rate, seed=seed + 2
                )
                scenarios.append(
                    summarize(
                        outcomes,
                        label="open-%.1fx" % multiplier,
                        mode="open",
                        rate_qps=round(rate, 2),
                        rate_multiplier=multiplier,
                        server_metrics=service.metrics.snapshot(),
                    )
                )
        if closed_clients > 0:
            async with QueryService(session, config) as service:
                assert service.port is not None
                outcomes = await replay_closed(
                    config.host, service.port, trace, closed_clients
                )
                scenarios.append(
                    summarize(
                        outcomes,
                        label="closed-%d" % closed_clients,
                        mode="closed",
                        num_clients=closed_clients,
                        server_metrics=service.metrics.snapshot(),
                    )
                )
        return scenarios

    scenarios = asyncio.run(run_all())
    return {
        "bench": "pr6_serving",
        "workload": {
            "kind": "httplog",
            "num_users": num_users,
            "num_days": num_days,
            "requests": requests,
            "seed": seed,
        },
        "service": {
            "max_concurrency": max_concurrency,
            "max_queue": max_queue,
            "backlog_budget_ms": backlog_budget_ms,
            "default_deadline_ms": deadline_ms,
            "default_cost_budget": round(max(p95_cost, 1.0), 1),
        },
        "calibration": {
            "mean_service_ms": round(mean_ms, 3),
            "p95_cost": round(p95_cost, 1),
            "sustainable_qps": round(sustainable_qps, 2),
        },
        "scenarios": scenarios,
    }


def gate(report: dict, p99_slack_ms: float = 1000.0) -> List[str]:
    """The CI assertions; returns the list of violations (empty = pass).

    * every response in every scenario is well-formed,
    * zero 5xx anywhere (no fault injection runs here, so any 5xx is
      overload leaking through as an error — the bug this layer exists
      to prevent),
    * every overload scenario (rate >= 2x sustainable) sheds *and*
      degrades — the service used both pressure valves,
    * p99 latency of admitted queries stays bounded by queue budget +
      deadline + slack in every scenario.
    """
    violations = []
    svc = report["service"]
    p99_budget = (
        svc["backlog_budget_ms"] + svc["default_deadline_ms"] + p99_slack_ms
    )
    for scenario in report["scenarios"]:
        label = scenario["label"]
        if scenario["malformed"]:
            violations.append(
                "%s: %d malformed responses (%s)"
                % (label, scenario["malformed"],
                   "; ".join(scenario["malformed_reasons"]))
            )
        if scenario["server_errors"]:
            violations.append(
                "%s: %d server errors (5xx)"
                % (label, scenario["server_errors"])
            )
        if scenario["latency_ms"]["p99"] > p99_budget:
            violations.append(
                "%s: p99 %.1fms exceeds budget %.1fms"
                % (label, scenario["latency_ms"]["p99"], p99_budget)
            )
        if scenario.get("rate_multiplier", 0) >= 2.0:
            if scenario["shed"] == 0:
                violations.append("%s: overload did not shed" % label)
            if scenario["degraded"] == 0:
                violations.append("%s: overload did not degrade" % label)
            if scenario["admitted"] == 0:
                violations.append("%s: overload admitted nothing" % label)
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Replay httplog traffic against the query service."
    )
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument(
        "--load",
        default="0.5,1.5,2.5",
        help="comma-separated multiples of the sustainable rate",
    )
    parser.add_argument("--users", type=int, default=6000)
    parser.add_argument("--days", type=int, default=12)
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--concurrency", type=int, default=2)
    parser.add_argument("--queue", type=int, default=16)
    parser.add_argument("--backlog-ms", type=float, default=500.0)
    parser.add_argument("--deadline-ms", type=float, default=250.0)
    parser.add_argument(
        "--closed-clients",
        type=int,
        default=8,
        help="also run one closed-loop scenario (0 disables)",
    )
    parser.add_argument("--output", default="BENCH_pr6.json")
    parser.add_argument(
        "--gate",
        action="store_true",
        help="fail on malformed responses, 5xx, or missing shed/degrade",
    )
    parser.add_argument("--p99-slack-ms", type=float, default=1000.0)
    args = parser.parse_args(argv)

    multipliers = [float(m) for m in args.load.split(",") if m]
    report = run_scenarios(
        requests=args.requests,
        multipliers=multipliers,
        num_users=args.users,
        num_days=args.days,
        seed=args.seed,
        max_concurrency=args.concurrency,
        max_queue=args.queue,
        backlog_budget_ms=args.backlog_ms,
        deadline_ms=args.deadline_ms,
        closed_clients=args.closed_clients,
    )
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for scenario in report["scenarios"]:
        print(
            "%-12s requests=%d admitted=%d shed=%.0f%% degraded=%.0f%% "
            "p50=%.1fms p99=%.1fms malformed=%d 5xx=%d"
            % (
                scenario["label"],
                scenario["requests"],
                scenario["admitted"],
                100.0 * scenario["shed_rate"],
                100.0 * scenario["degraded_rate"],
                scenario["latency_ms"]["p50"],
                scenario["latency_ms"]["p99"],
                scenario["malformed"],
                scenario["server_errors"],
            )
        )
    print("wrote %s" % args.output)
    if args.gate:
        violations = gate(report, args.p99_slack_ms)
        if violations:
            for violation in violations:
                print("GATE FAIL: %s" % violation, file=sys.stderr)
            return 1
        print("gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
