"""The long-lived asyncio query service over a (sharded) session.

:class:`QueryService` binds a TCP port and serves a small HTTP/JSON API
over any session-shaped engine (:class:`~repro.core.session.QuerySession`
or :class:`~repro.core.session.ShardedSession` — anything with a
``run(terms, k, ...)`` returning a
:class:`~repro.core.results.TopKResult`):

* ``POST /query`` — body ``{"terms": [...], "k": 10, "algorithm": ...,
  "deadline_ms": ..., "cost_budget": ..., "weights": [...], "mode":
  ...}``; answers 200 (exact), 206 (degraded partial result, with
  ``degrade_reason`` / ``exhausted_lists`` / ``exhausted_shards`` /
  ``unfinished_shards`` in the body), 400 (typed validation error),
  429 (admission rejection, with ``Retry-After``), 503 (dead shards /
  storage faults), 500 (bugs only),
* ``POST /update`` — body ``{"ops": [{"op": "upsert", "doc_id": ...,
  "terms": {...}}, {"op": "delete", "doc_id": ...}, ...]}``; applies
  the batch atomically to the session's live index (sessions opened
  over a :class:`~repro.live.index.LiveIndex` or
  :class:`~repro.live.index.ShardedLiveIndex`) and answers with the
  new epoch.  Writes go through the same admission control as queries
  — they are classed by estimated cost and shed under pressure
  (heavy write batches are rejected at the *degrade* level, where
  queries would merely be tightened).  501 when the engine has no
  live index,
* ``GET /healthz`` — liveness plus the pressure gauges; answers even
  while queries are being rejected (shedding is not an outage),
* ``GET /metrics`` — counters from the service, the admission
  controller, and the shedder.

Engine executions are synchronous CPU-bound work, so they run on a
bounded thread pool (the session layer is thread-safe since PR 5); the
asyncio side only parses, decides admission, and waits.  The
concurrency semaphore and the admission controller's wait queue bound
how much work can pile up in front of that pool.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Optional, Tuple

from ..core.bookkeeping import resolve_bookkeeping_mode
from ..core.executor import QueryDeadline
from ..core.results import DEGRADE_DEADLINE, DEGRADE_SHED, TopKResult
from ..core.session import DEFAULT_ALGORITHM
from .admission import CLASS_HEAVY, AdmissionController
from .errors import ServiceError, map_exception
from .http import (
    HttpProtocolError,
    HttpRequest,
    read_request,
    render_response,
)
from .shedding import LEVEL_DEGRADE, LEVEL_REJECT, HysteresisShedder, ShedConfig


@dataclass(frozen=True)
class ServiceConfig:
    """Every serving-policy knob in one place.

    ``default_cost_budget`` / ``default_deadline_ms`` apply to queries
    that do not bring their own limits — they are what load shedding
    tightens, so a service without defaults can only shed by rejecting.
    ``max_k`` / ``max_terms`` bound per-query work at validation time
    (queries beyond them are a 400, not a capacity question).
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read QueryService.port after start()
    max_concurrency: int = 4
    max_queue: int = 32
    backlog_budget_ms: float = 2000.0
    default_k: int = 10
    max_k: int = 1000
    max_terms: int = 16
    max_body_bytes: int = 64 * 1024
    default_cost_budget: Optional[float] = 500_000.0
    default_deadline_ms: Optional[float] = 2000.0
    heavy_cost_threshold: float = 50_000.0
    algorithm: str = DEFAULT_ALGORITHM
    shed: ShedConfig = field(default_factory=ShedConfig)
    #: admission cost units charged per written posting (one op counts
    #: ``1 + len(terms)`` postings); tuned so a large batch classes heavy
    update_cost_weight: float = 8.0
    #: hard cap on ops per /update request (beyond it is a 400)
    max_update_ops: int = 1024

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be at least 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        if self.default_k < 1 or self.default_k > self.max_k:
            raise ValueError("default_k must be within [1, max_k]")
        if self.max_update_ops < 1:
            raise ValueError("max_update_ops must be at least 1")
        if self.update_cost_weight < 0:
            raise ValueError("update_cost_weight must be non-negative")


@dataclass
class ServiceMetrics:
    """Service-level counters (admission gauges live on the controller)."""

    requests: int = 0
    admitted: int = 0
    completed_exact: int = 0
    completed_degraded: int = 0
    shed_tightened: int = 0
    shed_rejected: int = 0
    updates: int = 0
    update_ops_applied: int = 0
    responses_by_status: Dict[int, int] = field(default_factory=dict)

    def count_status(self, status: int) -> None:
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "admitted": self.admitted,
            "completed_exact": self.completed_exact,
            "completed_degraded": self.completed_degraded,
            "shed_tightened": self.shed_tightened,
            "shed_rejected": self.shed_rejected,
            "updates": self.updates,
            "update_ops_applied": self.update_ops_applied,
            "responses_by_status": {
                str(k): v
                for k, v in sorted(self.responses_by_status.items())
            },
        }


class QueryService:
    """See the module docstring.  Construct, ``await start()``, serve."""

    def __init__(
        self,
        session,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.session = session
        self.config = config if config is not None else ServiceConfig()
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            max_concurrency=self.config.max_concurrency,
            backlog_budget_ms=self.config.backlog_budget_ms,
            heavy_cost_threshold=self.config.heavy_cost_threshold,
        )
        self.shedder = HysteresisShedder(self.config.shed)
        self.metrics = ServiceMetrics()
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-serve",
        )
        self._semaphore = asyncio.Semaphore(self.config.max_concurrency)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.config.host, self.port

    async def stop(self) -> None:
        """Stop accepting and release the worker pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "QueryService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except HttpProtocolError as exc:
                    error = ServiceError(exc.status, "bad_request", exc.message)
                    writer.write(self._error_bytes(error, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                payload = await self._dispatch(request)
                writer.write(payload)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest) -> bytes:
        self.metrics.requests += 1
        try:
            if request.path == "/query":
                if request.method != "POST":
                    raise ServiceError(405, "method_not_allowed",
                                       "use POST /query")
                status, body, headers = await self._handle_query(request)
            elif request.path == "/update":
                if request.method != "POST":
                    raise ServiceError(405, "method_not_allowed",
                                       "use POST /update")
                status, body, headers = await self._handle_update(request)
            elif request.path == "/healthz":
                status, body, headers = 200, self._health_body(), ()
            elif request.path == "/metrics":
                status, body, headers = 200, self._metrics_body(), ()
            else:
                raise ServiceError(404, "not_found",
                                   "unknown path %r" % request.path)
        except BaseException as exc:  # every path answers; nothing leaks
            if isinstance(exc, asyncio.CancelledError):
                raise
            error = map_exception(exc)
            self.metrics.count_status(error.status)
            return self._error_bytes(error, keep_alive=request.keep_alive)
        self.metrics.count_status(status)
        return render_response(
            status,
            json.dumps(body, separators=(",", ":")).encode(),
            keep_alive=request.keep_alive,
            extra_headers=tuple(headers),
        )

    def _error_bytes(self, error: ServiceError, keep_alive: bool) -> bytes:
        headers = []
        if error.retry_after_s is not None:
            headers.append(("Retry-After", "%g" % error.retry_after_s))
        return render_response(
            error.status,
            json.dumps(error.body(), separators=(",", ":")).encode(),
            keep_alive=keep_alive,
            extra_headers=tuple(headers),
        )

    # ------------------------------------------------------------------
    # The query path
    # ------------------------------------------------------------------
    async def _handle_query(
        self, request: HttpRequest
    ) -> Tuple[int, dict, list]:
        params = self._parse_query_body(request.body)
        cost_estimate = self._estimate_cost(params["terms"])
        cost_class = self.admission.classify(cost_estimate)

        # Shedding decision comes first: at the reject level new queries
        # are refused before they can consume queue space.
        level = self.shedder.observe(self.admission.pressure())
        if level == LEVEL_REJECT:
            self.metrics.shed_rejected += 1
            raise ServiceError(
                429,
                "overloaded",
                "service is shedding load",
                retry_after_s=self.admission.retry_after_hint(),
                details={"reason": "shed_reject", "cost_class": cost_class},
            )
        decision = self.admission.admit(cost_estimate)
        if not decision.admitted:
            raise ServiceError(
                429,
                "overloaded",
                "admission rejected: %s" % decision.reason,
                retry_after_s=decision.retry_after_s,
                details={
                    "reason": decision.reason,
                    "cost_class": decision.cost_class,
                },
            )
        self.metrics.admitted += 1

        deadline, shed_tightened = self._effective_deadline(
            params, level, cost_class
        )
        if shed_tightened:
            self.metrics.shed_tightened += 1

        run = partial(
            self.session.run,
            params["terms"],
            params["k"],
            algorithm=params["algorithm"],
            weights=params["weights"],
            deadline=deadline,
            **params["extra"],
        )
        loop = asyncio.get_running_loop()
        enqueued = time.perf_counter()
        self.admission.note_enqueued()
        started = None
        try:
            assert self._semaphore is not None and self._pool is not None
            async with self._semaphore:
                self.admission.note_started()
                started = time.perf_counter()
                result = await loop.run_in_executor(self._pool, run)
        finally:
            now = time.perf_counter()
            if started is None:
                self.admission.note_abandoned()
            else:
                self.admission.note_finished((now - started) * 1000.0)
        return self._render_result(
            result,
            params,
            shed_tightened,
            cost_class,
            queue_wait_ms=(started - enqueued) * 1000.0,
            service_ms=(now - started) * 1000.0,
        )

    # ------------------------------------------------------------------
    # The update path
    # ------------------------------------------------------------------
    async def _handle_update(
        self, request: HttpRequest
    ) -> Tuple[int, dict, list]:
        live = getattr(self.session, "live", None)
        if live is None:
            raise ServiceError(
                501, "not_supported",
                "this service has no live index; open the session with "
                "QuerySession.open_live() or ShardedSession(live=...)",
            )
        ops, cost_estimate = self._parse_update_body(request.body)
        cost_class = self.admission.classify(cost_estimate)

        # Writes shed harder than queries: a query at the degrade level
        # can be tightened into a partial result, but a write batch has
        # no partial form — heavy batches are rejected outright there.
        level = self.shedder.observe(self.admission.pressure())
        if level == LEVEL_REJECT or (
            level == LEVEL_DEGRADE and cost_class == CLASS_HEAVY
        ):
            self.metrics.shed_rejected += 1
            raise ServiceError(
                429,
                "overloaded",
                "service is shedding writes",
                retry_after_s=self.admission.retry_after_hint(),
                details={"reason": "shed_reject", "cost_class": cost_class},
            )
        decision = self.admission.admit(cost_estimate)
        if not decision.admitted:
            raise ServiceError(
                429,
                "overloaded",
                "admission rejected: %s" % decision.reason,
                retry_after_s=decision.retry_after_s,
                details={
                    "reason": decision.reason,
                    "cost_class": decision.cost_class,
                },
            )
        self.metrics.admitted += 1

        loop = asyncio.get_running_loop()
        enqueued = time.perf_counter()
        self.admission.note_enqueued()
        started = None
        try:
            assert self._semaphore is not None and self._pool is not None
            async with self._semaphore:
                self.admission.note_started()
                started = time.perf_counter()
                applied = await loop.run_in_executor(
                    self._pool, partial(live.apply, ops)
                )
        finally:
            now = time.perf_counter()
            if started is None:
                self.admission.note_abandoned()
            else:
                self.admission.note_finished((now - started) * 1000.0)
        self.metrics.updates += 1
        self.metrics.update_ops_applied += applied
        body = {
            "applied": applied,
            "epoch": live.epoch,
            "service": {
                "queue_wait_ms": round((started - enqueued) * 1000.0, 3),
                "service_ms": round((now - started) * 1000.0, 3),
                "cost_class": cost_class,
            },
        }
        return 200, body, []

    def _parse_update_body(self, body: bytes) -> Tuple[list, float]:
        """Validate ``{"ops": [...]}``; returns (ops, admission cost)."""
        from ..live.index import normalize_op
        from ..live.memtable import validate_update

        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError):
            raise ServiceError(400, "invalid_json",
                               "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise ServiceError(400, "invalid_json",
                               "request body must be a JSON object")
        ops = payload.get("ops")
        if not isinstance(ops, list) or not ops:
            raise ServiceError(400, "invalid_update",
                               "ops must be a non-empty list")
        if len(ops) > self.config.max_update_ops:
            raise ServiceError(
                400, "invalid_update",
                "too many ops (%d > max %d)"
                % (len(ops), self.config.max_update_ops),
            )
        normalized = []
        postings = 0
        for position, op in enumerate(ops):
            try:
                kind, doc_id, terms = normalize_op(op)
                if kind == "upsert":
                    validate_update(doc_id, terms)
            except (TypeError, ValueError) as exc:
                raise ServiceError(
                    400, "invalid_update",
                    "ops[%d]: %s" % (position, exc),
                )
            normalized.append((kind, doc_id, terms))
            postings += 1 + (len(terms) if terms else 0)
        return normalized, postings * self.config.update_cost_weight

    def _parse_query_body(self, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (ValueError, UnicodeDecodeError):
            raise ServiceError(400, "invalid_json",
                               "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise ServiceError(400, "invalid_json",
                               "request body must be a JSON object")
        terms = payload.get("terms")
        if (
            not isinstance(terms, list)
            or not terms
            or not all(isinstance(t, str) for t in terms)
        ):
            raise ServiceError(400, "invalid_query",
                               "terms must be a non-empty list of strings")
        if len(terms) > self.config.max_terms:
            raise ServiceError(
                400, "invalid_query",
                "too many terms (%d > max %d)"
                % (len(terms), self.config.max_terms),
            )
        k = payload.get("k", self.config.default_k)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ServiceError(400, "invalid_query",
                               "k must be a positive integer")
        if k > self.config.max_k:
            raise ServiceError(
                400, "invalid_query",
                "k too large (%d > max %d)" % (k, self.config.max_k),
            )
        weights = payload.get("weights")
        if weights is not None and (
            not isinstance(weights, list)
            or not all(isinstance(w, (int, float)) for w in weights)
        ):
            raise ServiceError(400, "invalid_query",
                               "weights must be a list of numbers")
        for field_name in ("deadline_ms", "cost_budget"):
            value = payload.get(field_name)
            if value is not None and (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value <= 0
            ):
                raise ServiceError(
                    400, "invalid_query",
                    "%s must be a positive number" % field_name,
                )
        extra = {}
        mode = payload.get("mode")
        if mode is not None:
            if not hasattr(self.session, "coordinator"):
                raise ServiceError(400, "invalid_query",
                                   "mode requires a sharded session")
            if mode not in ("bounded", "gather"):
                raise ServiceError(400, "invalid_query",
                                   "mode must be 'bounded' or 'gather'")
            extra["mode"] = mode
        algorithm = payload.get("algorithm", self.config.algorithm)
        if not isinstance(algorithm, str):
            raise ServiceError(400, "invalid_query",
                               "algorithm must be a string")
        return {
            "terms": [str(t) for t in terms],
            "k": k,
            "algorithm": algorithm,
            "weights": weights,
            "deadline_ms": payload.get("deadline_ms"),
            "cost_budget": payload.get("cost_budget"),
            "extra": extra,
        }

    def _effective_deadline(
        self, params: dict, level: str, cost_class: str
    ) -> Tuple[Optional[QueryDeadline], bool]:
        """The deadline the engine gets, after classing and shedding.

        Requested budgets are capped by the service defaults (a client
        cannot buy more runtime than the service offers); at the
        ``degrade`` level both budgets are tightened by the shed factor
        so queries finish early as well-formed partial results.
        """
        cfg = self.config
        wall_ms = params["deadline_ms"]
        if cfg.default_deadline_ms is not None:
            wall_ms = (
                cfg.default_deadline_ms
                if wall_ms is None
                else min(wall_ms, cfg.default_deadline_ms)
            )
        cost = params["cost_budget"]
        if cfg.default_cost_budget is not None:
            cost = (
                cfg.default_cost_budget
                if cost is None
                else min(cost, cfg.default_cost_budget)
            )
        tightened = False
        if level == LEVEL_DEGRADE and (wall_ms or cost):
            factor = (
                cfg.shed.heavy_tighten_factor
                if cost_class == CLASS_HEAVY
                else cfg.shed.tighten_factor
            )
            if wall_ms is not None:
                wall_ms = max(wall_ms * factor, 1.0)
            if cost is not None:
                cost = max(cost * factor, 1.0)
            tightened = True
        if wall_ms is None and cost is None:
            return None, False
        return (
            QueryDeadline(
                wall_clock_seconds=(
                    wall_ms / 1000.0 if wall_ms is not None else None
                ),
                cost_budget=cost,
            ),
            tightened,
        )

    def _estimate_cost(self, terms) -> float:
        """Cheap pre-admission cost estimate: total query-list length."""
        total = 0
        sharded = getattr(self.session, "sharded", None)
        indexes = (
            list(sharded.shards)
            if sharded is not None
            else [getattr(self.session, "default_index", None)]
        )
        for index in indexes:
            if index is None:
                continue
            for term in terms:
                try:
                    if term in index:
                        total += len(index.list_for(term))
                except Exception:
                    return 0.0
        return float(total)

    def _render_result(
        self,
        result: TopKResult,
        params: dict,
        shed_tightened: bool,
        cost_class: str,
        queue_wait_ms: float,
        service_ms: float,
    ) -> Tuple[int, dict, list]:
        degrade_reason = result.degrade_reason
        if (
            shed_tightened
            and result.degraded
            and degrade_reason == DEGRADE_DEADLINE
        ):
            # The deadline that fired was the tightened shed budget, not
            # the client's own: name the true cause.
            degrade_reason = DEGRADE_SHED
        body = {
            "k": params["k"],
            "algorithm": result.algorithm or params["algorithm"],
            "items": [
                {
                    "doc_id": item.doc_id,
                    "worstscore": item.worstscore,
                    "bestscore": item.bestscore,
                }
                for item in result.items
            ],
            "degraded": result.degraded,
            "degrade_reason": degrade_reason,
            "exhausted_lists": list(result.exhausted_lists),
            "shed": shed_tightened,
            "stats": {
                "cost": result.stats.cost,
                "sorted_accesses": result.stats.sorted_accesses,
                "random_accesses": result.stats.random_accesses,
                "rounds": result.stats.rounds,
                "engine_wall_ms": result.stats.wall_time_seconds * 1000.0,
            },
            "service": {
                "queue_wait_ms": round(queue_wait_ms, 3),
                "service_ms": round(service_ms, 3),
                "cost_class": cost_class,
            },
        }
        for attr in ("exhausted_shards", "unfinished_shards",
                     "pruned_shards", "coordinator_rounds"):
            value = getattr(result, attr, None)
            if value is not None:
                body[attr] = value
        status = 206 if result.degraded else 200
        if result.degraded:
            self.metrics.completed_degraded += 1
        else:
            self.metrics.completed_exact += 1
        return status, body, []

    # ------------------------------------------------------------------
    # Introspection endpoints
    # ------------------------------------------------------------------
    def _health_body(self) -> dict:
        return {
            "status": "ok",
            "level": self.shedder.level,
            **self.admission.snapshot(),
        }

    def _metrics_body(self) -> dict:
        live = getattr(self.session, "live", None)
        body = {
            "service": self.metrics.snapshot(),
            "admission": self.admission.snapshot(),
            "shedding": {
                "level": self.shedder.level,
                "transitions": dict(self.shedder.transitions),
            },
            "engine": {
                "bookkeeping_mode": resolve_bookkeeping_mode(
                    getattr(self.session, "bookkeeping", None)
                ),
                # sharded sessions report their execution backend
                # ("thread" | "process"); single-node sessions run
                # in-process by definition
                "backend": getattr(self.session, "backend", "in-process"),
            },
        }
        if live is not None:
            body["live"] = live.stats()
        return body
