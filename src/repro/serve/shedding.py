"""Load shedding with hysteresis: degrade first, reject second.

The service's pressure signal (see
:meth:`~repro.serve.admission.AdmissionController.pressure`) is a
dimensionless occupancy in ``[0, ∞)``: 0 means idle, 1 means the wait
queue or the backlog budget is exactly full.  The shedder maps that
signal to one of three levels:

* ``normal`` — every admitted query runs with its requested budgets,
* ``degrade`` — admitted queries get *tightened* deadline budgets, so
  they complete as degraded-but-well-formed partial results (the
  anytime contract; HTTP 206) instead of queueing each other out,
* ``reject`` — new queries are refused outright (HTTP 429) before they
  consume any engine capacity; health/metrics endpoints keep answering.

Transitions use **hysteresis** — a level is entered at a high watermark
and left only at a strictly lower one — so the service does not flap
between shedding and not shedding on every request, and recovers
cleanly (monotically down through ``degrade`` back to ``normal``) once
the pressure drains.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The three pressure levels, ordered by severity.
LEVEL_NORMAL = "normal"
LEVEL_DEGRADE = "degrade"
LEVEL_REJECT = "reject"

_SEVERITY = {LEVEL_NORMAL: 0, LEVEL_DEGRADE: 1, LEVEL_REJECT: 2}


@dataclass(frozen=True)
class ShedConfig:
    """Watermarks and budget-tightening factors for the shedder.

    ``enter_*`` / ``exit_*`` are pressure watermarks; each ``exit`` must
    sit strictly below its ``enter`` (that gap *is* the hysteresis).
    ``tighten_factor`` scales an admitted query's deadline budgets while
    at the ``degrade`` level; ``heavy_tighten_factor`` applies to
    queries whose estimated cost is at or above
    ``ServiceConfig.heavy_cost_threshold`` — the expensive queries give
    back capacity first.
    """

    enter_degrade: float = 0.5
    exit_degrade: float = 0.25
    enter_reject: float = 1.0
    exit_reject: float = 0.5
    tighten_factor: float = 0.3
    heavy_tighten_factor: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.exit_degrade < self.enter_degrade:
            raise ValueError("need 0 <= exit_degrade < enter_degrade")
        if not self.exit_reject < self.enter_reject:
            raise ValueError("need exit_reject < enter_reject")
        if self.enter_degrade > self.enter_reject:
            raise ValueError("degrade must engage at or before reject")
        if not 0.0 < self.tighten_factor <= 1.0:
            raise ValueError("tighten_factor must be in (0, 1]")
        if not 0.0 < self.heavy_tighten_factor <= 1.0:
            raise ValueError("heavy_tighten_factor must be in (0, 1]")


class HysteresisShedder:
    """The level state machine; one instance per service.

    :meth:`observe` feeds a pressure sample and returns the level to
    apply to the *current* request.  The machine only moves one way per
    sample evaluation: up immediately when an enter watermark is
    crossed (overload must act now), down only when the matching exit
    watermark is undercut (recovery is deliberate).
    """

    def __init__(self, config: ShedConfig = ShedConfig()) -> None:
        self.config = config
        self.level = LEVEL_NORMAL
        #: number of times each level was (re-)entered, for metrics
        self.transitions = {LEVEL_DEGRADE: 0, LEVEL_REJECT: 0}

    def observe(self, pressure: float) -> str:
        """Feed one pressure sample; returns the level now in force."""
        cfg = self.config
        level = self.level
        if level == LEVEL_NORMAL:
            if pressure >= cfg.enter_reject:
                level = LEVEL_REJECT
            elif pressure >= cfg.enter_degrade:
                level = LEVEL_DEGRADE
        elif level == LEVEL_DEGRADE:
            if pressure >= cfg.enter_reject:
                level = LEVEL_REJECT
            elif pressure < cfg.exit_degrade:
                level = LEVEL_NORMAL
        else:  # LEVEL_REJECT
            if pressure < cfg.exit_reject:
                # Step down to degrade, never straight to normal: the
                # queue that built up during reject still needs draining
                # under tightened budgets.
                level = (
                    LEVEL_NORMAL
                    if pressure < cfg.exit_degrade
                    else LEVEL_DEGRADE
                )
        if level != self.level and _SEVERITY[level] > _SEVERITY[self.level]:
            self.transitions[level] += 1
        self.level = level
        return level
