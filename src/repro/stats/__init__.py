"""Statistics substrate: histograms, convolutions, and estimators."""

from .catalog import StatsCatalog
from .normal_predictor import NormalScorePredictor
from .convolution import (
    DEFAULT_GRID_CELLS,
    convolution_width,
    convolve_grids,
    exceedance,
    pmf_to_grid,
)
from .correlation import CovarianceTable
from .histogram import DEFAULT_NUM_BUCKETS, ScoreHistogram
from .poisson import (
    estimate_remaining_random_accesses,
    expected_lookup_documents,
    poisson_cdf,
)
from .score_predictor import ScorePredictor
from .selectivity import any_occurrence_probability, remainder_selectivity
from .threshold import (
    DEFAULT_SAFETY,
    PredictedThreshold,
    convolved_quantile,
    predict_threshold,
    sampled_quantile,
    single_list_quantile,
)

__all__ = [
    "CovarianceTable",
    "DEFAULT_GRID_CELLS",
    "DEFAULT_NUM_BUCKETS",
    "DEFAULT_SAFETY",
    "NormalScorePredictor",
    "PredictedThreshold",
    "ScoreHistogram",
    "ScorePredictor",
    "StatsCatalog",
    "any_occurrence_probability",
    "convolution_width",
    "convolve_grids",
    "convolved_quantile",
    "estimate_remaining_random_accesses",
    "exceedance",
    "expected_lookup_documents",
    "pmf_to_grid",
    "poisson_cdf",
    "predict_threshold",
    "remainder_selectivity",
    "sampled_quantile",
    "single_list_quantile",
]
