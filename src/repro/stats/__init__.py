"""Statistics substrate: histograms, convolutions, and estimators."""

from .catalog import StatsCatalog
from .normal_predictor import NormalScorePredictor
from .convolution import (
    DEFAULT_GRID_CELLS,
    convolution_width,
    convolve_grids,
    exceedance,
    pmf_to_grid,
)
from .correlation import CovarianceTable
from .histogram import DEFAULT_NUM_BUCKETS, ScoreHistogram
from .poisson import (
    estimate_remaining_random_accesses,
    expected_lookup_documents,
    poisson_cdf,
)
from .score_predictor import ScorePredictor
from .selectivity import any_occurrence_probability, remainder_selectivity

__all__ = [
    "CovarianceTable",
    "DEFAULT_GRID_CELLS",
    "DEFAULT_NUM_BUCKETS",
    "NormalScorePredictor",
    "ScoreHistogram",
    "ScorePredictor",
    "StatsCatalog",
    "any_occurrence_probability",
    "convolution_width",
    "convolve_grids",
    "estimate_remaining_random_accesses",
    "exceedance",
    "expected_lookup_documents",
    "pmf_to_grid",
    "poisson_cdf",
    "remainder_selectivity",
]
