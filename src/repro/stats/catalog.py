"""Precomputed statistics catalog for one inverted block-index.

The paper's scheduling strategies rely on *precomputed* statistics:
per-list score histograms (Sec. 3.1) and pairwise term covariances
(Sec. 3.4).  :class:`StatsCatalog` bundles both for one index, computing
each lazily and caching it — the query-time engine then treats the catalog
exactly like the precomputed metadata of a production system.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..storage.block_index import InvertedBlockIndex
from .correlation import CovarianceTable
from .histogram import DEFAULT_NUM_BUCKETS, ScoreHistogram
from .score_predictor import ScorePredictor


class StatsCatalog:
    """Histogram and covariance provider for one index."""

    def __init__(
        self,
        index: InvertedBlockIndex,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        use_correlations: bool = True,
    ) -> None:
        self.index = index
        self.num_buckets = num_buckets
        self.use_correlations = use_correlations
        self._histograms: Dict[str, ScoreHistogram] = {}
        self._covariances: Dict[Tuple[str, ...], CovarianceTable] = {}

    def histogram(self, term: str) -> ScoreHistogram:
        """The (cached) score histogram of one index list."""
        hist = self._histograms.get(term)
        if hist is None:
            index_list = self.index.list_for(term)
            hist = ScoreHistogram(
                index_list.scores_by_rank, num_buckets=self.num_buckets
            )
            self._histograms[term] = hist
        return hist

    def covariance(self, terms: Sequence[str]) -> Optional[CovarianceTable]:
        """Pairwise covariance table for a query's terms (or None).

        Returns None when correlation statistics are disabled, in which case
        the predictor falls back to the independence-based selectivity
        estimator of Sec. 3.2.
        """
        if not self.use_correlations:
            return None
        key = tuple(terms)
        table = self._covariances.get(key)
        if table is None:
            lists = self.index.lists_for(terms)
            table = CovarianceTable.from_index_lists(
                lists, num_docs=self.index.num_docs
            )
            self._covariances[key] = table
        return table

    def precompute_from_query_log(
        self, queries: Sequence[Sequence[str]]
    ) -> int:
        """Warm the caches from a query log (the paper's Sec. 3.4 setup).

        The paper precomputes pairwise term covariances "for terms in
        frequent queries (e.g., derived from query logs)"; this method
        does exactly that: it builds the histogram and covariance tables
        for every logged query up front, so query time pays no statistics
        cost.  Returns the number of covariance tables now cached.
        """
        for query in queries:
            for term in query:
                if term in self.index:
                    self.histogram(term)
            if self.use_correlations and all(
                term in self.index for term in query
            ):
                self.covariance(list(query))
        return len(self._covariances)

    def predictor(self, terms: Sequence[str]) -> ScorePredictor:
        """A fresh :class:`ScorePredictor` for one query execution."""
        lists = self.index.lists_for(terms)
        return ScorePredictor(
            histograms=[self.histogram(t) for t in terms],
            list_lengths=[len(lst) for lst in lists],
            num_docs=self.index.num_docs,
            covariance=self.covariance(terms),
        )
