"""Run-time histogram convolutions (paper Sec. 3.1).

The score predictor needs the distribution of a *sum* of per-list score
random variables.  We re-discretize each list's (conditional) score PMF onto
a common equi-width grid and convolve the grids with :func:`numpy.convolve`.
The convolutions are recomputed periodically after every batch of sorted
accesses; as in the paper, their cost is negligible next to the index I/O
they help avoid.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Number of grid cells used for the common convolution grid per dimension.
DEFAULT_GRID_CELLS = 128

#: Hard cap on cells per dimension: pathological inputs (score ranges that
#: differ by hundreds of orders of magnitude) must degrade gracefully in
#: resolution instead of exploding in memory.
MAX_GRID_CELLS = 1 << 16


def pmf_to_grid(
    values: np.ndarray, probs: np.ndarray, width: float
) -> np.ndarray:
    """Bin an arbitrary discrete PMF onto the common equi-width grid.

    Cell ``j`` of the returned array carries the probability mass of values
    in ``[j*width, (j+1)*width)``; the cell's nominal value is its midpoint
    ``(j + 0.5) * width``.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    values = np.asarray(values, dtype=np.float64)
    probs = np.asarray(probs, dtype=np.float64)
    if values.shape != probs.shape:
        raise ValueError("values and probs must be parallel arrays")
    if probs.size == 0:
        return np.zeros(1)
    with np.errstate(over="ignore"):
        idx = np.floor(values / width)
    idx = np.nan_to_num(idx, nan=0.0, posinf=MAX_GRID_CELLS - 1)
    idx = np.clip(idx, 0, MAX_GRID_CELLS - 1).astype(np.int64)
    grid = np.zeros(int(idx.max()) + 1, dtype=np.float64)
    np.add.at(grid, idx, probs)
    return grid


def convolve_grids(grids: Sequence[np.ndarray]) -> np.ndarray:
    """Convolve several common-grid PMFs into the PMF of their sum.

    An empty sequence yields the point mass at 0 (``[1.0]``).
    """
    result = np.array([1.0])
    for grid in grids:
        if grid.size == 0:
            continue
        result = np.convolve(result, grid)
    return result


def exceedance(grid: np.ndarray, width: float, threshold: float) -> float:
    """``P[sum > threshold]`` under the common-grid midpoint convention.

    The total mass of ``grid`` may be below 1 (conditioning slack); the
    probability returned is relative to the grid's own mass, and 0.0 for an
    empty grid.
    """
    total = float(grid.sum())
    if total <= 0.0:
        return 0.0
    midpoints = (np.arange(grid.size) + 0.5) * width
    mass = float(grid[midpoints > threshold].sum())
    return min(max(mass / total, 0.0), 1.0)


def convolution_width(uppers: Iterable[float], cells_per_dim: int = DEFAULT_GRID_CELLS) -> float:
    """Pick a common grid width for a query's lists.

    We give each dimension ``cells_per_dim`` cells over its own score range
    and use the finest requirement, so that no list's distribution collapses
    into too few cells — but never finer than :data:`MAX_GRID_CELLS` cells
    for the *widest* range, so grotesquely mismatched score magnitudes
    cannot blow up the grids.
    """
    uppers = [u for u in uppers if u > 0]
    if not uppers:
        return 1.0 / cells_per_dim
    return max(min(uppers) / cells_per_dim, max(uppers) / MAX_GRID_CELLS)
