"""Feature correlations via pairwise contingency statistics (paper Sec. 3.4).

Query terms are frequently correlated, which makes the independence-based
selectivity estimator uselessly crude.  The paper precomputes pairwise term
covariances from co-occurrence counts: with ``l_i`` the length of list
``L_i``, ``l_ij`` the number of documents in both ``L_i`` and ``L_j``, and
``n`` the collection size,

    cov(X_i, X_j) = l_ij / n - (l_i * l_j) / n^2
    P[X_i = 1 | X_j = 1] = l_ij / l_j

and the correlation-aware occurrence probability given an evaluated set
``E(d)`` is approximated by ``max_{j in E(d)} l_ij / l_j``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..storage.block_index import IndexList


class CovarianceTable:
    """Pairwise co-occurrence statistics for the lists of one query.

    The paper precomputes these for frequent query terms from query logs;
    building them once per (term pair) at index time is statistically
    identical, so we compute them from the index lists on construction and
    treat the table as precomputed thereafter.
    """

    def __init__(
        self,
        list_lengths: Sequence[int],
        pair_counts: np.ndarray,
        num_docs: int,
    ) -> None:
        lengths = np.asarray(list_lengths, dtype=np.float64)
        pair_counts = np.asarray(pair_counts, dtype=np.float64)
        m = lengths.size
        if pair_counts.shape != (m, m):
            raise ValueError("pair_counts must be an m x m matrix")
        if num_docs <= 0:
            raise ValueError("num_docs must be positive")
        self.num_docs = int(num_docs)
        self.list_lengths = lengths
        self.pair_counts = pair_counts

    @classmethod
    def from_index_lists(
        cls, lists: Sequence[IndexList], num_docs: int
    ) -> "CovarianceTable":
        """Count pairwise co-occurrences with sorted-array intersections."""
        doc_sets = [np.sort(lst.doc_ids_by_rank) for lst in lists]
        m = len(lists)
        pair_counts = np.zeros((m, m), dtype=np.float64)
        for i in range(m):
            pair_counts[i, i] = doc_sets[i].size
            for j in range(i + 1, m):
                common = np.intersect1d(
                    doc_sets[i], doc_sets[j], assume_unique=True
                ).size
                pair_counts[i, j] = common
                pair_counts[j, i] = common
        lengths = [len(lst) for lst in lists]
        return cls(lengths, pair_counts, num_docs)

    def covariance(self, i: int, j: int) -> float:
        """``cov(X_i, X_j)`` of the Bernoulli occurrence indicators."""
        n = float(self.num_docs)
        return float(
            self.pair_counts[i, j] / n
            - self.list_lengths[i] * self.list_lengths[j] / (n * n)
        )

    def conditional_probability(self, i: int, j: int) -> float:
        """``P[X_i = 1 | X_j = 1] = l_ij / l_j``."""
        lj = self.list_lengths[j]
        if lj <= 0:
            return 0.0
        return float(min(self.pair_counts[i, j] / lj, 1.0))

    def occurrence_given_seen(self, i: int, seen_dims: Sequence[int]) -> float:
        """``P[X_i = 1 | E(d)] ~= max_{j in E(d)} l_ij / l_j`` (Sec. 3.4).

        Falls back to the marginal ``l_i / n`` when nothing has been seen
        yet (no conditioning information).
        """
        best = 0.0
        for j in seen_dims:
            if j == i:
                continue
            best = max(best, self.conditional_probability(i, j))
        if not seen_dims:
            return float(min(self.list_lengths[i] / self.num_docs, 1.0))
        return best
