"""Equi-width score histograms (paper Sec. 3.1).

For each index list we precompute a histogram of its score distribution:
the score domain is discretized into ``H`` buckets and we store per-bucket
document frequencies plus cumulated frequencies.  All scheduling-time score
estimates — the score at a future scan position (KSR, Sec. 4.1), the mean
score of a scan range (KBA, Sec. 4.2), and the per-list score distributions
that feed the run-time convolutions (Sec. 3.1) — are answered from the
histogram, never from the raw list, so the engine's decisions only use
information a real system would have precomputed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Default number of histogram buckets per index list.
DEFAULT_NUM_BUCKETS = 100


class ScoreHistogram:
    """Equi-width histogram over one list's descending score distribution.

    Buckets are indexed from the *top* of the score range downward so that
    cumulative counts align with descending-score ranks: bucket 0 holds the
    highest scores.  Bucket ``h`` covers the half-open score interval
    ``(upper - (h+1)*width, upper - h*width]``.
    """

    def __init__(self, scores: np.ndarray, num_buckets: int = DEFAULT_NUM_BUCKETS,
                 upper: float = None) -> None:
        scores = np.asarray(scores, dtype=np.float64)
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        if scores.size and float(scores.min()) < 0.0:
            raise ValueError("scores must be non-negative")
        if upper is None:
            upper = float(scores.max()) if scores.size else 1.0
        if upper <= 0.0:
            upper = 1.0
        self.upper = float(upper)
        self.num_buckets = int(num_buckets)
        self.width = self.upper / self.num_buckets

        # Bucket index 0 = top of the range.  Scores above ``upper`` (should
        # not happen when upper = max) clamp into bucket 0; score 0 lands in
        # the bottom bucket.
        if scores.size:
            idx = np.floor((self.upper - scores) / self.width).astype(np.int64)
            idx = np.clip(idx, 0, self.num_buckets - 1)
            self.counts = np.bincount(idx, minlength=self.num_buckets).astype(
                np.float64
            )
        else:
            self.counts = np.zeros(self.num_buckets, dtype=np.float64)
        #: cumulative count of entries from the top of the range through the
        #: end of each bucket (descending-rank cumulative frequency).
        self.cum_counts = np.cumsum(self.counts)
        self.total = float(self.cum_counts[-1]) if scores.size else 0.0

    def scaled(self, factor: float) -> "ScoreHistogram":
        """A view of this histogram with all scores multiplied by ``factor``.

        Used for weighted aggregation (paper Sec. 2.1: monotone *weighted*
        summation): a query weight scales a list's score contribution, and
        therefore every statistic derived from its histogram.  Bucket
        counts are shared with the original (they are read-only).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        if factor == 1.0:
            return self
        clone = object.__new__(ScoreHistogram)
        clone.upper = self.upper * factor
        clone.num_buckets = self.num_buckets
        clone.width = self.width * factor
        clone.counts = self.counts
        clone.cum_counts = self.cum_counts
        clone.total = self.total
        return clone

    # ------------------------------------------------------------------
    # Bucket geometry
    # ------------------------------------------------------------------
    def bucket_upper(self, bucket: int) -> float:
        """Upper score edge of ``bucket``."""
        return self.upper - bucket * self.width

    def bucket_lower(self, bucket: int) -> float:
        """Lower score edge of ``bucket``."""
        return self.upper - (bucket + 1) * self.width

    def bucket_of(self, score: float) -> int:
        """Bucket index containing ``score`` (clamped to range)."""
        bucket = int(np.floor((self.upper - score) / self.width))
        return min(max(bucket, 0), self.num_buckets - 1)

    # ------------------------------------------------------------------
    # Rank <-> score estimates (uniform-within-bucket assumption)
    # ------------------------------------------------------------------
    def score_at_rank(self, rank: float) -> float:
        """Estimated score of the entry at 0-based descending ``rank``.

        Ranks at or beyond the list length return 0.0, matching the
        exhausted-list convention of the engine.
        """
        if rank < 0:
            raise ValueError("rank must be non-negative")
        if rank >= self.total:
            return 0.0
        bucket = int(np.searchsorted(self.cum_counts, rank, side="right"))
        before = self.cum_counts[bucket - 1] if bucket else 0.0
        count = self.counts[bucket]
        fraction = (rank - before) / count if count else 0.0
        return max(self.bucket_upper(bucket) - fraction * self.width, 0.0)

    def scores_at_ranks(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`score_at_rank` over an array of ranks.

        Returns exactly the floats the scalar method would produce for
        each rank (same float64 operations in the same order per
        element), so callers may use either interchangeably without
        perturbing downstream estimate-driven decisions.
        """
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.size and float(ranks.min()) < 0:
            raise ValueError("rank must be non-negative")
        out = np.zeros(ranks.shape, dtype=np.float64)
        valid = ranks < self.total
        if not np.any(valid):
            return out
        within = ranks[valid]
        buckets = np.searchsorted(self.cum_counts, within, side="right")
        before = np.where(
            buckets > 0, self.cum_counts[np.maximum(buckets - 1, 0)], 0.0
        )
        counts = self.counts[buckets]
        fraction = np.divide(
            within - before,
            counts,
            out=np.zeros_like(within),
            where=counts != 0,
        )
        uppers = self.upper - buckets * self.width
        out[valid] = np.maximum(uppers - fraction * self.width, 0.0)
        return out

    def rank_at_score(self, score: float) -> float:
        """Estimated number of entries with score strictly above ``score``."""
        if score >= self.upper:
            return 0.0
        if score <= 0.0:
            return self.total
        bucket = self.bucket_of(score)
        before = self.cum_counts[bucket - 1] if bucket else 0.0
        count = self.counts[bucket]
        fraction = (self.bucket_upper(bucket) - score) / self.width
        return before + count * min(max(fraction, 0.0), 1.0)

    def mean_score_between(self, rank_a: float, rank_b: float) -> float:
        """Estimated mean score of entries with ranks in ``[rank_a, rank_b)``.

        This is the ``mu(pos_i, b_i)`` of the KBA benefit function
        (Sec. 4.2).  Empty or out-of-range intervals return 0.0.
        """
        rank_a = max(rank_a, 0.0)
        rank_b = min(rank_b, self.total)
        if rank_b <= rank_a:
            return 0.0
        # Integrate the uniform-within-bucket score model over the rank range.
        total_mass = 0.0
        total_count = 0.0
        for bucket in range(self.num_buckets):
            before = self.cum_counts[bucket - 1] if bucket else 0.0
            after = self.cum_counts[bucket]
            lo = max(rank_a, before)
            hi = min(rank_b, after)
            if hi <= lo:
                if before >= rank_b:
                    break
                continue
            count = self.counts[bucket]
            # ranks lo..hi map linearly onto scores within the bucket
            f_lo = (lo - before) / count
            f_hi = (hi - before) / count
            s_hi = self.bucket_upper(bucket) - f_lo * self.width
            s_lo = self.bucket_upper(bucket) - f_hi * self.width
            total_mass += (hi - lo) * 0.5 * (s_hi + s_lo)
            total_count += hi - lo
        return total_mass / total_count if total_count else 0.0

    # ------------------------------------------------------------------
    # Tail distributions for the run-time convolutions
    # ------------------------------------------------------------------
    def tail_pmf(self, consumed: float) -> Tuple[np.ndarray, np.ndarray]:
        """Probability mass over bucket midpoints for the list's tail.

        ``consumed`` is the current scan position ``pos_i``; the returned
        PMF approximates the conditional score distribution
        ``S_i | S_i <= high_i`` over the not-yet-scanned part of the list
        (Sec. 3.1).  Returns ``(midpoints, probabilities)`` where midpoints
        run from high scores to low; probabilities sum to 1 (or an all-zero
        array if the tail is empty).
        """
        consumed = min(max(consumed, 0.0), self.total)
        remaining = self.counts.copy()
        if consumed > 0:
            before = np.concatenate(([0.0], self.cum_counts[:-1]))
            eaten = np.clip(consumed - before, 0.0, self.counts)
            remaining = self.counts - eaten
        midpoints = np.array(
            [0.5 * (self.bucket_upper(h) + max(self.bucket_lower(h), 0.0))
             for h in range(self.num_buckets)]
        )
        total = remaining.sum()
        if total <= 0:
            return midpoints, np.zeros_like(remaining)
        return midpoints, remaining / total
