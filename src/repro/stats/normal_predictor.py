"""Normal-approximation score predictor (the RankSQL-style baseline).

The RankSQL line of work (paper Sec. 1.3, refs [16, 20]) assumes per-list
scores follow a Normal distribution "for tractability, to simplify
convolutions".  The paper argues that real score distributions are very
different from Normal and uses explicit histograms with run-time
convolutions instead.

This module implements the Normal-assumption predictor with the same
interface as :class:`~repro.stats.score_predictor.ScorePredictor`, so the
two can be swapped under any scheduling policy — experiment E13 measures
what the histogram machinery actually buys.

Each list's conditional tail distribution is summarized by its mean and
variance (estimated from the histogram tail, so both predictors see the
same raw statistics); a sum of independent per-list scores is then treated
as Normal with the summed moments, and exceedance probabilities come from
the Gaussian CDF instead of a convolution.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .score_predictor import ScorePredictor


def _normal_sf(x: float) -> float:
    """Survival function ``P[Z > x]`` of the standard Normal."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


class NormalScorePredictor(ScorePredictor):
    """Drop-in predictor that replaces convolutions by Normal moments."""

    def refresh(self, positions: Sequence[int]) -> None:
        super().refresh(positions)
        self._tail_means: List[float] = []
        self._tail_variances: List[float] = []
        for hist, pos in zip(self.histograms, self._positions):
            midpoints, probs = hist.tail_pmf(pos)
            total = float(probs.sum())
            if total <= 0.0:
                self._tail_means.append(0.0)
                self._tail_variances.append(0.0)
                continue
            mean = float((midpoints * probs).sum()) / total
            second = float((midpoints * midpoints * probs).sum()) / total
            self._tail_means.append(mean)
            self._tail_variances.append(max(second - mean * mean, 0.0))

    def score_exceedance(self, remainder_mask: int, delta: float) -> float:
        if delta < 0:
            return 1.0
        if remainder_mask == 0:
            return 0.0
        mean = 0.0
        variance = 0.0
        for i in range(self.num_lists):
            if remainder_mask >> i & 1:
                mean += self._tail_means[i]
                variance += self._tail_variances[i]
        if variance <= 0.0:
            return 1.0 if mean > delta else 0.0
        return _normal_sf((delta - mean) / math.sqrt(variance))
