"""Poisson estimate of the number of remaining random lookups (Sec. 5.1).

Last-Probing switches from the SA phase to the RA phase when the *estimated*
cost of the remaining random accesses balances the sorted-access cost spent
so far.  The trivial estimate — every queued candidate needs a lookup — is a
good one only for very skewed distributions; for flatter distributions
(BM25) the paper derives a much sharper estimate:

Sort the queued documents by descending bestscore ``B_l``.  Document ``l``
will need a random lookup iff at most ``k'_l`` of the ``l-1`` documents
ranked above it end up with a final score above ``B_l``, where ``k'_l`` is
the number of current top-k items with worstscore below ``B_l``.  The count
of predecessors exceeding ``B_l`` is approximated by a Poisson variable with
mean ``p_{1,l} + ... + p_{l-1,l}``, where

    p_{i,l} = P[F_i > B_l] ~= P[F_i > min-k] * (B_l - min-k) / (B_i - min-k)

so that each per-document exceedance probability ``P[F_i > min-k]`` is
computed once and prefix sums give every mean in overall linear time.  The
Poisson CDF is evaluated through the regularized incomplete gamma function,
as the paper suggests (their reference [27]).
"""

from __future__ import annotations


import numpy as np
from scipy.special import gammaincc


def poisson_cdf(k: int, mean: float) -> float:
    """``P[X <= k]`` for ``X ~ Poisson(mean)`` via the incomplete gamma.

    ``P[X <= k] = Q(k + 1, mean)`` with ``Q`` the regularized upper
    incomplete gamma function.  ``k < 0`` yields 0.0.
    """
    if k < 0:
        return 0.0
    if mean <= 0.0:
        return 1.0
    return float(gammaincc(k + 1, mean))


def expected_lookup_documents(
    bestscores: np.ndarray,
    exceed_mink_probs: np.ndarray,
    topk_worstscores: np.ndarray,
    min_k: float,
) -> np.ndarray:
    """Per-document probabilities ``E(R_l)`` that a lookup is needed.

    Parameters
    ----------
    bestscores:
        Bestscores of the queued documents (any order; sorted internally).
    exceed_mink_probs:
        ``P[F_i > min-k]`` for the same documents (parallel array).
    topk_worstscores:
        Worstscores of the current top-k items.
    min_k:
        Current threshold (rank-k worstscore).

    Returns
    -------
    Array of ``E(R_l)`` aligned with the *input* order of the documents.
    """
    bestscores = np.asarray(bestscores, dtype=np.float64)
    probs = np.asarray(exceed_mink_probs, dtype=np.float64)
    if bestscores.shape != probs.shape:
        raise ValueError("bestscores and probabilities must be parallel")
    q = bestscores.size
    if q == 0:
        return np.zeros(0)

    order = np.argsort(-bestscores, kind="stable")
    b_sorted = bestscores[order]
    p_sorted = probs[order]

    # Terms of the prefix sums: P[F_i > min-k] / (B_i - min-k), guarded for
    # candidates sitting exactly on the threshold.
    margins = np.maximum(b_sorted - min_k, 1e-12)
    terms = p_sorted / margins
    prefix = np.concatenate(([0.0], np.cumsum(terms)[:-1]))
    means = np.maximum(b_sorted - min_k, 0.0) * prefix

    topk_sorted = np.sort(np.asarray(topk_worstscores, dtype=np.float64))
    # k'_l: number of top-k items with worstscore strictly below B_l.
    k_prime = np.searchsorted(topk_sorted, b_sorted, side="left")

    expectations = np.empty(q)
    for idx in range(q):
        expectations[idx] = poisson_cdf(int(k_prime[idx]), float(means[idx]))

    result = np.empty(q)
    result[order] = expectations
    return result


def estimate_remaining_random_accesses(
    bestscores: np.ndarray,
    exceed_mink_probs: np.ndarray,
    missing_dims: np.ndarray,
    topk_worstscores: np.ndarray,
    min_k: float,
) -> float:
    """Estimated number of individual RAs still needed if SAs stopped now.

    Weighs each document's lookup probability by its number of unresolved
    dimensions (each missing dimension costs one random access).
    """
    expectations = expected_lookup_documents(
        bestscores, exceed_mink_probs, topk_worstscores, min_k
    )
    missing = np.asarray(missing_dims, dtype=np.float64)
    if missing.shape != expectations.shape:
        raise ValueError("missing_dims must be parallel to bestscores")
    return float(np.dot(expectations, missing))
