"""Probabilistic score and qualification prediction (paper Sec. 3.1-3.4).

The :class:`ScorePredictor` ties the statistics substrate together for one
query: per-list histograms provide conditional tail distributions, the
convolution module combines them into sum distributions, and selectivity /
covariance statistics estimate occurrence probabilities.  The resulting
quantities are exactly those of the paper:

* ``p_s(d) = P[sum of missing scores > delta | S_i <= high_i]`` (Sec. 3.1),
* ``q(d) = P[d occurs in at least one remainder list]`` (Sec. 3.2/3.4),
* ``p(d) = p_s(d) * q(d)`` — the probability that candidate ``d`` still
  qualifies for the top-k (Sec. 3.3).

The predictor is refreshed once per batch of sorted accesses; sum
distributions are convolved lazily per distinct remainder set and cached as
suffix-sum arrays so that per-candidate queries are O(1).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .convolution import convolution_width, convolve_grids, pmf_to_grid
from .correlation import CovarianceTable
from .histogram import ScoreHistogram
from .selectivity import any_occurrence_probability, remainder_selectivity


class _SumDistribution:
    """A convolved sum PMF with O(1) exceedance queries."""

    def __init__(self, grid: np.ndarray, width: float) -> None:
        self.grid = grid
        self.width = width
        total = float(grid.sum())
        if total > 0:
            suffix = np.cumsum(grid[::-1])[::-1] / total
        else:
            suffix = np.zeros_like(grid)
        # suffix[j] = P[sum cell index >= j]
        self._suffix = suffix

    def exceedance(self, threshold: float) -> float:
        """``P[sum > threshold]`` with cell value = midpoint convention."""
        if self._suffix.size == 0:
            return 0.0
        # cell j has midpoint (j + 0.5) * width; it exceeds the threshold
        # iff j > threshold / width - 0.5.
        first = int(np.floor(threshold / self.width - 0.5)) + 1
        if first <= 0:
            return float(self._suffix[0])
        if first >= self._suffix.size:
            return 0.0
        return float(self._suffix[first])


class ScorePredictor:
    """Per-query probabilistic estimator over the query's m index lists.

    Parameters
    ----------
    histograms:
        Precomputed :class:`ScoreHistogram` per query list (query order).
    list_lengths:
        Length ``l_i`` of each list.
    num_docs:
        Collection size ``n``.
    covariance:
        Optional :class:`CovarianceTable` over the same lists; enables the
        correlation-aware occurrence estimates of Sec. 3.4.
    """

    def __init__(
        self,
        histograms: Sequence[ScoreHistogram],
        list_lengths: Sequence[int],
        num_docs: int,
        covariance: Optional[CovarianceTable] = None,
    ) -> None:
        if len(histograms) != len(list_lengths):
            raise ValueError("histograms and list_lengths must be parallel")
        self.histograms = list(histograms)
        self.list_lengths = [int(l) for l in list_lengths]
        self.num_docs = int(num_docs)
        self.covariance = covariance
        self.width = convolution_width(h.upper for h in self.histograms)
        self._positions = [0] * len(histograms)
        self._list_grids: list = []
        self._mask_cache: Dict[int, _SumDistribution] = {}
        self.refresh([0] * len(histograms))

    @property
    def num_lists(self) -> int:
        return len(self.histograms)

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def refresh(self, positions: Sequence[int]) -> None:
        """Recompute per-list tail distributions for new scan positions."""
        if len(positions) != self.num_lists:
            raise ValueError("positions must have one entry per list")
        self._positions = [int(p) for p in positions]
        self._list_grids = []
        for hist, pos in zip(self.histograms, self._positions):
            midpoints, probs = hist.tail_pmf(pos)
            if probs.sum() <= 0:
                # Exhausted list: the missing score is deterministically 0.
                grid = np.array([1.0])
            else:
                grid = pmf_to_grid(midpoints, probs, self.width)
            self._list_grids.append(grid)
        self._mask_cache.clear()

    # ------------------------------------------------------------------
    # Score predictor p_s(d)
    # ------------------------------------------------------------------
    def _distribution_for_mask(self, remainder_mask: int) -> _SumDistribution:
        dist = self._mask_cache.get(remainder_mask)
        if dist is None:
            grids = [
                self._list_grids[i]
                for i in range(self.num_lists)
                if remainder_mask >> i & 1
            ]
            dist = _SumDistribution(convolve_grids(grids), self.width)
            self._mask_cache[remainder_mask] = dist
        return dist

    def score_exceedance(self, remainder_mask: int, delta: float) -> float:
        """``p_s(d)``: probability the missing score mass exceeds ``delta``.

        ``remainder_mask`` is the bitmask of unevaluated dimensions
        ``E(d)``; ``delta`` the score deficit ``min-k - worstscore(d)``.
        """
        if delta < 0:
            return 1.0
        if remainder_mask == 0:
            return 0.0
        return self._distribution_for_mask(remainder_mask).exceedance(delta)

    # ------------------------------------------------------------------
    # Selectivity q_i(d) and q(d)
    # ------------------------------------------------------------------
    def remainder_occurrence(self, i: int, seen_mask: int) -> float:
        """``q_i(d)``: probability d occurs in the remainder of list i.

        Uses the covariance-based conditional ``max_j l_ij / l_j`` when a
        covariance table is available and at least one dimension has been
        seen (Sec. 3.4); otherwise falls back to the independence-based
        remainder selectivity of Sec. 3.2.
        """
        if self.covariance is not None:
            seen_dims = [j for j in range(self.num_lists) if seen_mask >> j & 1]
            if seen_dims:
                return self.covariance.occurrence_given_seen(i, seen_dims)
        return remainder_selectivity(
            self.list_lengths[i], self._positions[i], self.num_docs
        )

    def any_occurrence(self, seen_mask: int) -> float:
        """``q(d)``: probability d occurs in at least one remainder list."""
        remainder = [
            self.remainder_occurrence(i, seen_mask)
            for i in range(self.num_lists)
            if not seen_mask >> i & 1
        ]
        return any_occurrence_probability(remainder)

    # ------------------------------------------------------------------
    # Combined predictor p(d)
    # ------------------------------------------------------------------
    def qualify_probability(
        self, seen_mask: int, worstscore: float, min_k: float
    ) -> float:
        """``p(d) = p_s(d) * q(d)`` (Sec. 3.3): chance d reaches the top-k."""
        full_mask = (1 << self.num_lists) - 1
        remainder_mask = full_mask & ~seen_mask
        if remainder_mask == 0:
            return 1.0 if worstscore > min_k else 0.0
        p_score = self.score_exceedance(remainder_mask, min_k - worstscore)
        return p_score * self.any_occurrence(seen_mask)
