"""Selectivity estimation (paper Sec. 3.2).

The score predictor implicitly assumes a candidate occurs in all of its
missing lists and therefore over-estimates its chance to reach the top-k.
The selectivity estimator corrects this with the probability that a document
occurs in the *remainder* of a list at all.
"""

from __future__ import annotations

from typing import Iterable


def remainder_selectivity(list_length: int, position: int, num_docs: int) -> float:
    """``q_i(d) = (l_i - pos_i) / (n - pos_i)``.

    The probability that a document not yet seen in list ``i`` occurs in the
    unscanned remainder of that list, assuming the scanned prefix already
    excluded ``pos_i`` of the ``n`` documents.  Clamped into ``[0, 1]``.
    """
    if num_docs <= 0:
        raise ValueError("num_docs must be positive")
    position = min(max(position, 0), list_length)
    denominator = num_docs - position
    if denominator <= 0:
        return 0.0
    value = (list_length - position) / denominator
    return min(max(value, 0.0), 1.0)


def any_occurrence_probability(selectivities: Iterable[float]) -> float:
    """``q(d) = 1 - prod_i (1 - q_i(d))``.

    Probability that the document occurs in at least one of its remainder
    dimensions (independence assumption; Sec. 3.4 refines the per-list
    factors with covariances before they are combined here).
    """
    miss_all = 1.0
    for q in selectivities:
        q = min(max(q, 0.0), 1.0)
        miss_all *= 1.0 - q
    return 1.0 - miss_all
