"""Plan-time top-k threshold prediction (ROADMAP item 2).

"Beyond Quantile Methods: Improved Top-K Threshold Estimation" frames
the problem: before issuing a single index access, estimate the score of
the k-th best answer from precomputed per-list statistics.  A good
estimate lets the engine drop hopeless candidates long before the true
``min-k`` threshold has grown past them, and lets the sharded
coordinator skip whole shards whose best possible document cannot reach
the predicted threshold.

Three estimators over the per-list :class:`~repro.stats.histogram.ScoreHistogram`
machinery (all on the *weighted*, aggregated-score scale):

* :func:`single_list_quantile` — the score of the k-th best entry of the
  single strongest list, minus one bucket width.  At least k documents
  aggregate to at least their own score in that list, so (modulo the
  histogram's one-bucket discretization error, which the subtracted
  width absorbs) this is a certain *lower* bound on the true threshold.
  Always safe, often weak.
* :func:`convolved_quantile` — the k-th order statistic of the
  *sum-distribution*: every list's tail PMF (occurrence probability
  ``l_i/n`` on its histogram, the rest as a point mass at score 0) is
  discretized onto a common grid and convolved
  (:mod:`repro.stats.convolution`); the estimate is the deepest grid
  edge ``s`` with ``n * P[S >= s] >= k``.  Well calibrated when lists
  are close to independent; can overestimate under correlation, which is
  why callers shrink it by a safety factor.
* :func:`sampled_quantile` — optional exact-on-sample refinement: score
  a seeded uniform sample of documents exactly (plan-time lookups, the
  kind of offline sampling a production system amortizes across
  queries) and read the threshold off the sample's order statistics,
  rounding the sample rank *up* so sparse samples err low.

:func:`predict_threshold` combines them into one
:class:`PredictedThreshold` attached to a
:class:`~repro.core.planner.QueryPlan`.  Predictions are *accelerators
only*: the executor keeps its exact termination test and certifies every
prediction-driven drop against the final threshold, falling back to a
prediction-free re-execution whenever the estimate proves too
aggressive — results are provably never wrong (see docs/PREDICTION.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from .convolution import (
    DEFAULT_GRID_CELLS,
    convolution_width,
    convolve_grids,
    pmf_to_grid,
)
from .histogram import ScoreHistogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .catalog import StatsCatalog

#: Default multiplicative shrink applied to the model-based estimates
#: (convolution, sampling).  The single-list quantile is already a lower
#: bound and is used unshrunk.
DEFAULT_SAFETY = 0.9

#: Default document sample size for :func:`sampled_quantile`.
DEFAULT_SAMPLE_SIZE = 256

#: Valid ``method`` arguments of :func:`predict_threshold`.
PREDICTION_METHODS = ("auto", "quantile", "convolution", "sample")


@dataclass(frozen=True)
class PredictedThreshold:
    """A plan-time estimate of the top-k threshold.

    ``value`` is the usable (safety-adjusted) threshold on the
    aggregated-score scale — the scale of ``min-k`` and every candidate
    bound.  ``raw`` keeps the pre-shrink estimate and ``method`` names
    the estimator that produced it, for observability.  Frozen (and
    therefore hashable) so it can ride on the immutable
    :class:`~repro.core.planner.QueryPlan` and participate in plan
    equality — two plans that differ only in their prediction must never
    be conflated by a cache.
    """

    value: float
    method: str = "auto"
    raw: float = 0.0
    safety: float = 1.0

    def __post_init__(self) -> None:
        if self.value < 0.0:
            raise ValueError("predicted threshold must be non-negative")
        if self.safety <= 0.0:
            raise ValueError("safety factor must be positive")


def single_list_quantile(
    histograms: Sequence[ScoreHistogram], k: int
) -> float:
    """Lower-bound threshold from the strongest single list.

    For any list ``i`` at least ``k`` documents aggregate to at least
    the list's k-th best score, so the true top-k threshold is at least
    ``max_i score_i(k)``.  One bucket width is subtracted to absorb the
    histogram's within-bucket interpolation error, making the bound hold
    for any placement of the true scores inside their buckets.
    """
    if k < 1:
        raise ValueError("k must be positive")
    best = 0.0
    for hist in histograms:
        if hist.total <= 0:
            continue
        estimate = hist.score_at_rank(k - 1) - hist.width
        if estimate > best:
            best = estimate
    return max(best, 0.0)


def convolved_quantile(
    histograms: Sequence[ScoreHistogram],
    list_lengths: Sequence[int],
    num_docs: int,
    k: int,
    cells_per_dim: int = DEFAULT_GRID_CELLS,
) -> float:
    """Threshold from the convolved sum-distribution (independence model).

    Each dimension contributes its full-list tail PMF with probability
    ``l_i / n`` (the chance a random document appears in list ``i``) and
    a point mass at score 0 otherwise.  The grids are convolved into the
    PMF of a random document's aggregated score ``S``; the estimate is
    the deepest grid edge ``s`` such that the expected number of
    documents scoring at least ``s`` — ``n * P[S >= s]`` — still reaches
    ``k``.  Reading the *lower* edge of the qualifying cell keeps the
    discretization error on the conservative side.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if num_docs <= 0 or not histograms:
        return 0.0
    width = convolution_width(
        [hist.upper for hist in histograms], cells_per_dim
    )
    grids = []
    for hist, length in zip(histograms, list_lengths):
        midpoints, probs = hist.tail_pmf(0.0)
        occurrence = min(max(length / float(num_docs), 0.0), 1.0)
        grid = pmf_to_grid(midpoints, probs * occurrence, width)
        grid[0] += 1.0 - occurrence
        grids.append(grid)
    sum_grid = convolve_grids(grids)
    mass = float(sum_grid.sum())
    if mass <= 0.0:
        return 0.0
    # tail[j] = P[S lands in cell j or deeper] relative to the grid mass.
    tail = np.cumsum(sum_grid[::-1])[::-1] / mass
    qualifying = np.nonzero(num_docs * tail >= k)[0]
    if qualifying.size == 0:
        return 0.0
    return float(qualifying.max() * width)


def sampled_quantile(
    index,
    terms: Sequence[str],
    k: int,
    weights: Optional[Sequence[float]] = None,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = 0,
) -> Optional[float]:
    """Exact-on-sample threshold estimate (optional refinement).

    Scores ``sample_size`` uniformly sampled documents exactly via index
    lookups and estimates the overall k-th best score from the sample's
    order statistics: the r-th best sampled score estimates overall rank
    ``r * n / size``, so ``r = ceil(k * size / n)`` targets rank >= k —
    rounding up errs on the low (safe) side.  Returns ``None`` when the
    sample is too sparse to see the top-k region at all
    (``k * size / n < 1``); plan-time only, nothing is charged to any
    query meter.
    """
    num_docs = int(index.num_docs)
    if num_docs <= 0 or sample_size <= 0 or k < 1:
        return None
    size = min(int(sample_size), num_docs)
    sample_rank = math.ceil(k * size / float(num_docs))
    if sample_rank < 1:
        return None
    if weights is None:
        weights = [1.0] * len(terms)
    rng = np.random.default_rng(seed)
    docs = rng.choice(num_docs, size=size, replace=False)
    totals = np.zeros(size, dtype=np.float64)
    for term, weight in zip(terms, weights):
        index_list = index.list_for(term)
        for i, doc in enumerate(docs):
            score = index_list.lookup(int(doc))
            if score:
                totals[i] += float(weight) * score
    if sample_rank > size:
        return 0.0
    top = np.sort(totals)[::-1]
    return float(top[sample_rank - 1])


def predict_threshold(
    catalog: "StatsCatalog",
    terms: Sequence[str],
    k: int,
    weights: Optional[Sequence[float]] = None,
    method: str = "auto",
    safety: float = DEFAULT_SAFETY,
    sample_size: int = 0,
    sample_seed: int = 0,
) -> Optional[PredictedThreshold]:
    """The combined plan-time estimator over a statistics catalog.

    ``method`` selects one estimator or (``"auto"``) the maximum of the
    unshrunk single-list lower bound and the safety-shrunk convolution
    estimate — plus the safety-shrunk sample estimate when
    ``sample_size > 0``.  Returns ``None`` when no estimator produced a
    positive value (an absent prediction disables the accelerator;
    execution is then exactly the prediction-off path).
    """
    if method not in PREDICTION_METHODS:
        raise ValueError(
            "unknown prediction method %r; valid: %s"
            % (method, ", ".join(PREDICTION_METHODS))
        )
    terms = list(terms)
    if weights is None:
        weights = [1.0] * len(terms)
    histograms = [
        catalog.histogram(term).scaled(float(weight))
        for term, weight in zip(terms, weights)
    ]
    index = catalog.index
    lengths = [len(index.list_for(term)) for term in terms]
    num_docs = index.num_docs

    raw = 0.0
    value = 0.0
    if method in ("auto", "quantile"):
        quantile = single_list_quantile(histograms, k)
        raw = max(raw, quantile)
        # Already a lower bound: used unshrunk.
        value = max(value, quantile)
    if method in ("auto", "convolution"):
        convolved = convolved_quantile(histograms, lengths, num_docs, k)
        raw = max(raw, convolved)
        value = max(value, safety * convolved)
    if method == "sample" or (method == "auto" and sample_size > 0):
        sampled = sampled_quantile(
            index,
            terms,
            k,
            weights=weights,
            sample_size=sample_size or DEFAULT_SAMPLE_SIZE,
            seed=sample_seed,
        )
        if sampled is not None:
            raw = max(raw, sampled)
            value = max(value, safety * sampled)
    if value <= 0.0:
        return None
    return PredictedThreshold(
        value=value, method=method, raw=raw, safety=safety
    )
