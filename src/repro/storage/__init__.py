"""Storage substrate: simulated disk costs and the inverted block-index."""

from .accessors import (
    ListUnavailableError,
    RandomAccessor,
    RetryPolicy,
    RetrySession,
    SortedCursor,
)
from .block_index import (
    DEFAULT_BLOCK_SIZE,
    IndexList,
    InvertedBlockIndex,
    compute_block_checksum,
)
from .diskmodel import DEFAULT_COST_RATIO, AccessMeter, CostModel
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    FaultyIndexList,
    IndexCorruptionError,
    TransientIOError,
)
from .index_builder import (
    build_index,
    build_index_from_documents,
    build_index_list,
)
from .latency import DiskLatencyModel, DiskParameters
from .serialization import UnsupportedFormatError, load_index, save_index

__all__ = [
    "AccessMeter",
    "CostModel",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_COST_RATIO",
    "DiskLatencyModel",
    "DiskParameters",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "FaultyIndexList",
    "IndexCorruptionError",
    "IndexList",
    "InvertedBlockIndex",
    "ListUnavailableError",
    "RandomAccessor",
    "RetryPolicy",
    "RetrySession",
    "SortedCursor",
    "TransientIOError",
    "UnsupportedFormatError",
    "build_index",
    "build_index_from_documents",
    "build_index_list",
    "compute_block_checksum",
    "load_index",
    "save_index",
]
