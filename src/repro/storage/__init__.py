"""Storage substrate: simulated disk costs and the inverted block-index."""

from .accessors import RandomAccessor, SortedCursor
from .block_index import DEFAULT_BLOCK_SIZE, IndexList, InvertedBlockIndex
from .diskmodel import DEFAULT_COST_RATIO, AccessMeter, CostModel
from .index_builder import (
    build_index,
    build_index_from_documents,
    build_index_list,
)
from .latency import DiskLatencyModel, DiskParameters
from .serialization import load_index, save_index

__all__ = [
    "AccessMeter",
    "CostModel",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_COST_RATIO",
    "DiskLatencyModel",
    "DiskParameters",
    "IndexList",
    "InvertedBlockIndex",
    "RandomAccessor",
    "SortedCursor",
    "build_index",
    "build_index_from_documents",
    "build_index_list",
    "load_index",
    "save_index",
]
