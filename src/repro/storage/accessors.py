"""Charged access paths over the inverted block-index.

All query-time access to index data goes through these two classes so that
every sorted access and every random access is charged to an
:class:`~repro.storage.diskmodel.AccessMeter`.  The TA-family engine never
touches :class:`~repro.storage.block_index.IndexList` directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .block_index import IndexList
from .diskmodel import AccessMeter


class SortedCursor:
    """Forward-only sorted-access cursor over one index list.

    Reads whole blocks (the scheduling unit of the paper's block-organized
    index, Sec. 4) and charges one sorted access per index entry delivered.
    """

    def __init__(self, index_list: IndexList, meter: AccessMeter) -> None:
        self._list = index_list
        self._meter = meter
        self._next_block = 0
        self._position = 0  # number of entries delivered so far (pos_i)

    @property
    def term(self) -> str:
        """The indexed dimension this cursor scans."""
        return self._list.term

    @property
    def list_length(self) -> int:
        """Total number of postings in the underlying list (l_i)."""
        return len(self._list)

    @property
    def block_size(self) -> int:
        return self._list.block_size

    @property
    def position(self) -> int:
        """Current scan position ``pos_i`` (entries already read)."""
        return self._position

    @property
    def blocks_read(self) -> int:
        return self._next_block

    @property
    def blocks_remaining(self) -> int:
        return self._list.num_blocks - self._next_block

    @property
    def exhausted(self) -> bool:
        return self._position >= self.list_length

    @property
    def high(self) -> float:
        """Upper bound ``high_i`` for all scores below the scan position."""
        return self._list.score_at_rank(self._position)

    def peek_high_after(self, extra_entries: int) -> float:
        """``high_i`` if the scan were ``extra_entries`` further along.

        Used only by *oracle* tooling and tests; scheduling policies must use
        histogram estimates instead (the engine does not cheat).
        """
        return self._list.score_at_rank(self._position + extra_entries)

    def read_next_blocks(self, num_blocks: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read up to ``num_blocks`` further blocks.

        Returns ``(doc_ids, scores)`` concatenated over the blocks read,
        doc-id-sorted per block (callers merge block-wise).  Reading past the
        end of the list silently truncates; reading zero blocks returns empty
        arrays.  Charges one SA per entry actually delivered.
        """
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        stop_block = min(self._next_block + num_blocks, self._list.num_blocks)
        if stop_block == self._next_block:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        doc_parts = []
        score_parts = []
        for block in range(self._next_block, stop_block):
            doc_ids, scores = self._list.read_block(block)
            doc_parts.append(doc_ids)
            score_parts.append(scores)
        self._next_block = stop_block
        doc_ids = np.concatenate(doc_parts)
        scores = np.concatenate(score_parts)
        self._position += int(doc_ids.size)
        self._meter.charge_sorted(int(doc_ids.size))
        return doc_ids, scores


class RandomAccessor:
    """Random score lookups ("probes") into one index list.

    A probe resolves the dimension for the document regardless of presence:
    an absent document has score 0 for this dimension.  Each call charges one
    random access.
    """

    def __init__(self, index_list: IndexList, meter: AccessMeter) -> None:
        self._list = index_list
        self._meter = meter
        self.probes = 0

    @property
    def term(self) -> str:
        return self._list.term

    @property
    def list_length(self) -> int:
        return len(self._list)

    def probe(self, doc_id: int) -> float:
        """Look up ``doc_id``; returns its score, or 0.0 if absent."""
        self._meter.charge_random(1)
        self.probes += 1
        score = self._list.lookup(doc_id)
        return 0.0 if score is None else score
