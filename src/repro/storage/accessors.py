"""Charged access paths over the inverted block-index.

All query-time access to index data goes through these two classes so that
every sorted access and every random access is charged to an
:class:`~repro.storage.diskmodel.AccessMeter`.  The TA-family engine never
touches :class:`~repro.storage.block_index.IndexList` directly.

When the underlying index is wrapped by the fault-injection layer
(:mod:`repro.storage.faults`), accesses can raise
:class:`~repro.storage.faults.TransientIOError` or
:class:`~repro.storage.faults.IndexCorruptionError`.  Both accessors
recover via a per-operation retry loop with exponential backoff and
jitter, governed by a per-query :class:`RetrySession`.  Every failed
attempt is charged to the meter — a retried block read streams the block
again, a retried probe seeks again — so robustness overhead shows up in
the paper's ``COST = #SA + (cR/cS) * #RA`` metric instead of hiding
outside it.  An accessor that exhausts its retries marks itself
``failed``; the engine then drops the list and degrades gracefully
(see :mod:`repro.core.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from .block_index import IndexList
from .diskmodel import AccessMeter
from .faults import IndexCorruptionError, TransientIOError

#: Exceptions the retry loop treats as recoverable storage faults.
_RETRYABLE = (TransientIOError, IndexCorruptionError)


class ListUnavailableError(IOError):
    """An index list gave up after exhausting its retries."""

    def __init__(self, term: str, kind: str) -> None:
        super().__init__(
            "list %r unavailable: %s access retries exhausted" % (term, kind)
        )
        self.term = term
        self.kind = kind


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff and budget parameters for fault recovery.

    ``max_attempts`` bounds attempts per single operation (first try
    included); ``query_budget`` bounds total retries across one whole
    query, so a persistently failing list cannot consume unbounded cost.
    Backoff is exponential with multiplicative jitter; it is *simulated*
    (accumulated in milliseconds, never slept), matching the simulated
    disk of :mod:`repro.storage.latency`.
    """

    max_attempts: int = 4
    base_backoff_ms: float = 1.0
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 1000.0
    jitter: float = 0.25
    query_budget: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < 0:
            raise ValueError("backoff times must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.query_budget < 0:
            raise ValueError("query_budget must be non-negative")


class RetrySession:
    """Per-query retry state shared by all of the query's accessors.

    Tracks the query-wide retry budget and the simulated backoff wait.
    The jitter generator is seeded from the policy, so identical runs
    produce identical backoff sequences (chaos determinism).

    A session can be bound to the query's deadline via
    :meth:`bind_deadline`: once the deadline is exhausted, no further
    retry is granted and no further simulated backoff is charged — a
    faulty list must not burn retry budget on a query whose answer is
    already due.  The check is an opaque callable (rather than a
    :class:`~repro.core.executor.QueryDeadline`) so the storage layer
    stays independent of the execution layer.
    """

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self.retries = 0
        self.waited_ms = 0.0
        #: retries denied because the bound deadline had expired
        self.deadline_denied = 0
        self._deadline_check: Optional[Callable[[], bool]] = None
        self._rng = np.random.default_rng(policy.seed)

    def bind_deadline(self, exhausted: Callable[[], bool]) -> None:
        """Deny all further retries once ``exhausted()`` returns True."""
        self._deadline_check = exhausted

    def grant(self, failures: int) -> bool:
        """Whether a retry is allowed after ``failures`` failed attempts.

        Granting consumes one unit of the query budget and accrues the
        simulated backoff wait for this attempt.  A session whose bound
        deadline has expired grants nothing and charges nothing.
        """
        policy = self.policy
        if self._deadline_check is not None and self._deadline_check():
            self.deadline_denied += 1
            return False
        if failures >= policy.max_attempts:
            return False
        if self.retries >= policy.query_budget:
            return False
        self.retries += 1
        backoff = min(
            policy.base_backoff_ms
            * policy.backoff_multiplier ** (failures - 1),
            policy.max_backoff_ms,
        )
        self.waited_ms += backoff * (1.0 + policy.jitter * float(self._rng.random()))
        return True


class SortedCursor:
    """Forward-only sorted-access cursor over one index list.

    Reads whole blocks (the scheduling unit of the paper's block-organized
    index, Sec. 4) and charges one sorted access per index entry delivered.
    """

    def __init__(
        self,
        index_list: IndexList,
        meter: AccessMeter,
        retry: Optional[RetrySession] = None,
    ) -> None:
        self._list = index_list
        self._meter = meter
        self._retry = retry
        self._failed = False
        self._next_block = 0
        self._position = 0  # number of entries delivered so far (pos_i)
        # Plain (non-faulty) lists support contiguous multi-block reads.
        # Gated on the concrete type: the fault-injection wrapper forwards
        # unknown attributes to the wrapped list, so a duck-typed probe
        # would silently bypass its injected faults.
        self._supports_batch = isinstance(index_list, IndexList)

    @property
    def term(self) -> str:
        """The indexed dimension this cursor scans."""
        return self._list.term

    @property
    def list_length(self) -> int:
        """Total number of postings in the underlying list (l_i)."""
        return len(self._list)

    @property
    def block_size(self) -> int:
        return self._list.block_size

    @property
    def position(self) -> int:
        """Current scan position ``pos_i`` (entries already read)."""
        return self._position

    @property
    def blocks_read(self) -> int:
        return self._next_block

    @property
    def blocks_remaining(self) -> int:
        if self._failed:
            return 0
        return self._list.num_blocks - self._next_block

    @property
    def failed(self) -> bool:
        """True once the list's sorted-access path gave up on a fault."""
        return self._failed

    @property
    def exhausted(self) -> bool:
        """True when no further sorted access can deliver entries.

        A failed cursor counts as exhausted for scheduling purposes, but
        keeps its scan position — so :attr:`high` stays frozen at the
        last known bound, which keeps every bestscore interval correct.
        """
        return self._failed or self._position >= self.list_length

    @property
    def high(self) -> float:
        """Upper bound ``high_i`` for all scores below the scan position."""
        return self._list.score_at_rank(self._position)

    def peek_high_after(self, extra_entries: int) -> float:
        """``high_i`` if the scan were ``extra_entries`` further along.

        Used only by *oracle* tooling and tests; scheduling policies must use
        histogram estimates instead (the engine does not cheat).
        """
        return self._list.score_at_rank(self._position + extra_entries)

    def read_next_blocks(self, num_blocks: int) -> Tuple[np.ndarray, np.ndarray]:
        """Read up to ``num_blocks`` further blocks.

        Returns ``(doc_ids, scores)`` concatenated over the blocks read,
        doc-id-sorted per block (callers merge block-wise).  Reading past the
        end of the list silently truncates; reading zero blocks returns empty
        arrays.  Charges one SA per entry actually delivered; failed read
        attempts additionally charge the entries they streamed.  If a block
        cannot be read within the retry policy, the cursor marks itself
        :attr:`failed` and returns whatever it read before the failure.
        """
        if num_blocks < 0:
            raise ValueError("num_blocks must be non-negative")
        stop_block = min(self._next_block + num_blocks, self._list.num_blocks)
        if stop_block == self._next_block or self._failed:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        if self._supports_batch:
            # Fault-free fast path: one contiguous range read for the whole
            # round instead of a per-block fetch-and-concatenate loop.  The
            # delivered arrays are exactly the concatenation the loop below
            # would produce (blocks are stored back-to-back).
            doc_ids, scores = self._list.read_block_range(
                self._next_block, stop_block
            )
            self._next_block = stop_block
            self._position += int(doc_ids.size)
            self._meter.charge_sorted(int(doc_ids.size))
            return doc_ids, scores
        doc_parts = []
        score_parts = []
        for block in range(self._next_block, stop_block):
            fetched = self._read_block_resilient(block)
            if fetched is None:
                break
            doc_parts.append(fetched[0])
            score_parts.append(fetched[1])
            self._next_block = block + 1
        if not doc_parts:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        doc_ids = np.concatenate(doc_parts)
        scores = np.concatenate(score_parts)
        self._position += int(doc_ids.size)
        self._meter.charge_sorted(int(doc_ids.size))
        return doc_ids, scores

    def _read_block_resilient(
        self, block: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """One block read with retries; None once the list gives up."""
        failures = 0
        while True:
            try:
                return self._list.read_block(block)
            except _RETRYABLE:
                # The failed attempt still streamed the block off the
                # (simulated) disk: charge its entries as sorted accesses.
                start, stop = self._list.block_bounds(block)
                self._meter.charge_sorted(stop - start)
                failures += 1
                if self._retry is None or not self._retry.grant(failures):
                    self._failed = True
                    return None


class RandomAccessor:
    """Random score lookups ("probes") into one index list.

    A probe resolves the dimension for the document regardless of presence:
    an absent document has score 0 for this dimension.  Each call charges one
    random access.
    """

    def __init__(
        self,
        index_list: IndexList,
        meter: AccessMeter,
        retry: Optional[RetrySession] = None,
    ) -> None:
        self._list = index_list
        self._meter = meter
        self._retry = retry
        self._failed = False
        self.probes = 0

    @property
    def term(self) -> str:
        return self._list.term

    @property
    def list_length(self) -> int:
        return len(self._list)

    @property
    def failed(self) -> bool:
        """True once the list's random-access path gave up on a fault."""
        return self._failed

    def probe(self, doc_id: int) -> float:
        """Look up ``doc_id``; returns its score, or 0.0 if absent.

        Faulty lookups are retried within the policy; every attempt
        (including failed ones) charges one random access.  Raises
        :class:`ListUnavailableError` once retries are exhausted — the
        list is then permanently failed for this query.
        """
        if self._failed:
            raise ListUnavailableError(self.term, "random")
        failures = 0
        while True:
            self._meter.charge_random(1)
            self.probes += 1
            try:
                score = self._list.lookup(doc_id)
            except _RETRYABLE:
                failures += 1
                if self._retry is None or not self._retry.grant(failures):
                    self._failed = True
                    raise ListUnavailableError(self.term, "random")
                continue
            return 0.0 if score is None else score
