"""The Inverted Block-Index (paper Sec. 2.2).

Each index list stores ``<doc_id, score>`` pairs for one dimension (term or
attribute value).  The list is partitioned into fixed-size *blocks* that are
kept in **score-descending order among blocks**, while the entries **within
each block are kept in doc-id order**.  Score-descending block order preserves
the TA-style sorted-access semantics (the score at the current scan position
is an upper bound for everything below); doc-id order within blocks makes the
per-round candidate bookkeeping a cheap merge join.

This module holds the passive data structures only.  Access *charging*
(sorted vs. random cost) lives in :mod:`repro.storage.accessors` so that
statistics building and the lower-bound computation can inspect lists without
polluting query cost counters.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def compute_block_checksum(doc_ids: np.ndarray, scores: np.ndarray) -> int:
    """CRC32 over one block's canonical payload bytes.

    The checksum covers the doc-id array (int64) followed by the score
    array (float64) in the block's doc-id-sorted layout — the exact bytes
    a block read delivers.  Used by index persistence
    (:mod:`repro.storage.serialization`) and by the fault-injection layer
    (:mod:`repro.storage.faults`) to detect corrupted payloads.
    """
    crc = zlib.crc32(np.ascontiguousarray(doc_ids, dtype=np.int64).tobytes())
    return zlib.crc32(
        np.ascontiguousarray(scores, dtype=np.float64).tobytes(), crc
    )

#: Default number of entries per block.  The paper uses 32,768 for
#: multi-terabyte data; our scaled-down synthetic collections default to a
#: proportionally smaller block so queries still span many blocks.
DEFAULT_BLOCK_SIZE = 1024


class IndexList:
    """One inverted list: postings sorted by descending score, blocked.

    Parameters
    ----------
    term:
        The dimension this list indexes (keyword, attribute value, ...).
    doc_ids, scores:
        Parallel arrays of postings in *any* order; the constructor sorts
        them by descending score (ties broken by ascending doc id, matching
        the paper's ``<score, itemID>`` tie-break) and derives the blocked
        layout.
    block_size:
        Entries per block; the last block may be shorter.
    """

    def __init__(
        self,
        term: str,
        doc_ids: Sequence[int],
        scores: Sequence[float],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        doc_arr = np.asarray(doc_ids, dtype=np.int64)
        score_arr = np.asarray(scores, dtype=np.float64)
        if doc_arr.shape != score_arr.shape or doc_arr.ndim != 1:
            raise ValueError("doc_ids and scores must be parallel 1-d arrays")
        if score_arr.size and float(score_arr.min()) < 0.0:
            raise ValueError("scores must be non-negative")
        if np.unique(doc_arr).size != doc_arr.size:
            raise ValueError("duplicate doc id in index list %r" % term)

        # Canonical rank order: descending score, ascending doc id on ties.
        order = np.lexsort((doc_arr, -score_arr))
        self.term = term
        self.block_size = int(block_size)
        self._doc_ids_by_rank = doc_arr[order]
        self._scores_by_rank = score_arr[order]

        # Blocked layout: same rank partition, but doc-id order inside each
        # block.  Because the rank order is globally score-descending, every
        # score in block j dominates every score in block j+1.  All full
        # blocks are sorted in one batched 2-d argsort; only the partial
        # tail block (if any) needs its own pass.  Doc ids are unique, so
        # the sort is deterministic regardless of algorithm.
        self._block_doc_ids = self._doc_ids_by_rank.copy()
        self._block_scores = self._scores_by_rank.copy()
        n = len(self)
        full = (n // self.block_size) * self.block_size
        if full:
            shape = (-1, self.block_size)
            inner = np.argsort(self._block_doc_ids[:full].reshape(shape), axis=1)
            self._block_doc_ids[:full] = np.take_along_axis(
                self._block_doc_ids[:full].reshape(shape), inner, axis=1
            ).reshape(-1)
            self._block_scores[:full] = np.take_along_axis(
                self._block_scores[:full].reshape(shape), inner, axis=1
            ).reshape(-1)
        if full < n:
            inner = np.argsort(self._block_doc_ids[full:])
            self._block_doc_ids[full:] = self._block_doc_ids[full:][inner]
            self._block_scores[full:] = self._block_scores[full:][inner]

        # Random-access lookup as parallel sorted columns (binary search)
        # instead of a per-list Python dict: no boxing of every posting at
        # build time, and the columns share the lifetime/layout story of
        # the rest of the index.
        order = np.argsort(self._doc_ids_by_rank)
        self._lookup_doc_ids = self._doc_ids_by_rank[order]
        self._lookup_scores = self._scores_by_rank[order]
        self._block_crcs: Dict[int, int] = {}

    @classmethod
    def from_layout(
        cls,
        term: str,
        doc_ids_by_rank: np.ndarray,
        scores_by_rank: np.ndarray,
        block_doc_ids: np.ndarray,
        block_scores: np.ndarray,
        lookup_doc_ids: np.ndarray,
        lookup_scores: np.ndarray,
        block_size: int,
        block_crcs: Optional[Sequence[int]] = None,
    ) -> "IndexList":
        """Wire a list directly from precomputed layout arrays.

        The zero-copy constructor behind the mmap'd on-disk format
        (:mod:`repro.storage.serialization` v3): the six arrays are
        adopted as-is — typically read-only views into one
        :class:`numpy.memmap` — with none of the sorting, blocking, or
        validation work the regular constructor performs.  The caller
        vouches for the layout invariants (rank order descending by
        score, blocks doc-id-sorted, lookup columns doc-id-sorted);
        the v3 loader enforces them transitively through the per-block
        CRC check against checksums recorded at save time.

        ``block_crcs`` pre-seeds the per-block checksum cache so an
        integrity-verified load never recomputes them at query time.
        """
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        lst = cls.__new__(cls)
        lst.term = term
        lst.block_size = int(block_size)
        lst._doc_ids_by_rank = doc_ids_by_rank
        lst._scores_by_rank = scores_by_rank
        lst._block_doc_ids = block_doc_ids
        lst._block_scores = block_scores
        lst._lookup_doc_ids = lookup_doc_ids
        lst._lookup_scores = lookup_scores
        lst._block_crcs = (
            {i: int(crc) for i, crc in enumerate(block_crcs)}
            if block_crcs is not None
            else {}
        )
        return lst

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._doc_ids_by_rank.size)

    @property
    def num_blocks(self) -> int:
        """Number of blocks (the last one may be partial)."""
        return -(-len(self) // self.block_size) if len(self) else 0

    def block_bounds(self, block: int) -> Tuple[int, int]:
        """Return the ``[start, stop)`` rank range of ``block``."""
        if not 0 <= block < self.num_blocks:
            raise IndexError("block %d out of range" % block)
        start = block * self.block_size
        return start, min(start + self.block_size, len(self))

    # ------------------------------------------------------------------
    # Sorted-order views
    # ------------------------------------------------------------------
    def score_at_rank(self, rank: int) -> float:
        """Score of the posting at 0-based ``rank`` in descending order.

        Ranks at or past the end return 0.0 — the natural ``high_i`` bound
        once a list is exhausted (absent documents contribute score 0).
        """
        if rank < 0:
            raise IndexError("rank must be non-negative")
        if rank >= len(self):
            return 0.0
        return float(self._scores_by_rank[rank])

    @property
    def scores_by_rank(self) -> np.ndarray:
        """Read-only descending score array (used by stats builders)."""
        return self._scores_by_rank

    @property
    def doc_ids_by_rank(self) -> np.ndarray:
        """Doc ids in descending-score rank order."""
        return self._doc_ids_by_rank

    def read_block(self, block: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(doc_ids, scores)`` of one block, doc-id sorted."""
        start, stop = self.block_bounds(block)
        return self._block_doc_ids[start:stop], self._block_scores[start:stop]

    def read_block_range(
        self, start_block: int, stop_block: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(doc_ids, scores)`` of blocks ``[start_block, stop_block)``.

        One contiguous slice pair per call — the blocked layout stores
        blocks back-to-back, so a multi-block read needs no per-block
        gather and no concatenation.  Entry order is exactly the
        concatenation of the individual blocks (each internally
        doc-id-sorted).  ``stop_block`` is clamped to the list's end; an
        empty range returns empty arrays.
        """
        if start_block < 0:
            raise IndexError("start_block must be non-negative")
        stop_block = min(stop_block, self.num_blocks)
        if stop_block <= start_block:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        start = start_block * self.block_size
        stop = min(stop_block * self.block_size, len(self))
        return self._block_doc_ids[start:stop], self._block_scores[start:stop]

    def block_checksum(self, block: int) -> int:
        """CRC32 of one block's payload (computed once, then cached)."""
        cached = self._block_crcs.get(block)
        if cached is None:
            start, stop = self.block_bounds(block)
            cached = compute_block_checksum(
                self._block_doc_ids[start:stop],
                self._block_scores[start:stop],
            )
            self._block_crcs[block] = cached
        return cached

    # ------------------------------------------------------------------
    # Random access
    # ------------------------------------------------------------------
    def lookup(self, doc_id: int) -> Optional[float]:
        """Score of ``doc_id`` in this list, or None if absent."""
        doc = int(doc_id)
        pos = int(np.searchsorted(self._lookup_doc_ids, doc))
        if pos < self._lookup_doc_ids.size and int(self._lookup_doc_ids[pos]) == doc:
            return float(self._lookup_scores[pos])
        return None

    def __contains__(self, doc_id: int) -> bool:
        return self.lookup(doc_id) is not None

    def rank_of(self, doc_id: int) -> Optional[int]:
        """0-based rank of ``doc_id`` in descending-score order.

        Linear in the worst case is avoided by binary search on the score
        then a short scan among equal scores.
        """
        score = self.lookup(doc_id)
        if score is None:
            return None
        # scores are descending; find the equal-score run via searchsorted
        # on the negated (ascending) array.
        neg = -self._scores_by_rank
        lo = int(np.searchsorted(neg, -score, side="left"))
        hi = int(np.searchsorted(neg, -score, side="right"))
        for rank in range(lo, hi):
            if int(self._doc_ids_by_rank[rank]) == int(doc_id):
                return rank
        raise RuntimeError("inconsistent index list state")  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "IndexList(term=%r, len=%d, blocks=%d)" % (
            self.term,
            len(self),
            self.num_blocks,
        )


class InvertedBlockIndex:
    """A collection of :class:`IndexList` objects keyed by term.

    ``num_docs`` is the total collection size ``n`` used by the selectivity
    estimator (Sec. 3.2); it must be at least the number of distinct doc ids.
    """

    def __init__(
        self,
        lists: Mapping[str, IndexList],
        num_docs: int,
    ) -> None:
        if num_docs <= 0:
            raise ValueError("num_docs must be positive")
        self._lists: Dict[str, IndexList] = dict(lists)
        self.num_docs = int(num_docs)

    @property
    def terms(self) -> List[str]:
        """All indexed terms."""
        return list(self._lists)

    def __contains__(self, term: str) -> bool:
        return term in self._lists

    def __len__(self) -> int:
        return len(self._lists)

    def list_for(self, term: str) -> IndexList:
        """The index list of ``term``; raises KeyError for unknown terms."""
        try:
            return self._lists[term]
        except KeyError:
            raise KeyError("no index list for term %r" % term) from None

    def lists_for(self, terms: Iterable[str]) -> List[IndexList]:
        """Index lists for a query's terms, in query order."""
        return [self.list_for(t) for t in terms]

    def __iter__(self) -> Iterator[IndexList]:
        return iter(self._lists.values())
