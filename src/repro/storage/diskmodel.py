"""Simulated disk access cost model.

The paper (Sec. 1.2) assumes a fixed cost ``cS`` for each sorted access (SA)
and a fixed cost ``cR`` for each random access (RA), and minimizes the
weighted sum ``cS * #SA + cR * #RA``.  All reported cost figures use the
normalized form ``COST = #SA + (cR/cS) * #RA`` (Sec. 6.1), i.e. only the
*ratio* matters.  This module provides that accounting: every access to the
inverted block-index is charged against an :class:`AccessMeter`.

Typical ratios from the paper: 50-50,000 for raw disks; the experiments use
``cR/cS`` in {100, 1,000, 10,000} with 1,000 as the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Default random/sorted access cost ratio used throughout the paper's
#: experiments (Sec. 6.1).
DEFAULT_COST_RATIO = 1000.0


@dataclass(frozen=True)
class CostModel:
    """Immutable pair of per-access costs.

    Only the ratio ``cR / cS`` influences scheduling decisions and the
    normalized COST metric, but both values are kept so that absolute costs
    (e.g. simulated milliseconds) can also be derived.
    """

    sorted_access_cost: float = 1.0
    random_access_cost: float = DEFAULT_COST_RATIO

    def __post_init__(self) -> None:
        if self.sorted_access_cost <= 0:
            raise ValueError("sorted_access_cost must be positive")
        if self.random_access_cost <= 0:
            raise ValueError("random_access_cost must be positive")

    @property
    def ratio(self) -> float:
        """The ``cR/cS`` ratio driving all scheduling decisions."""
        return self.random_access_cost / self.sorted_access_cost

    @classmethod
    def from_ratio(cls, ratio: float) -> "CostModel":
        """Build a cost model with ``cS = 1`` and ``cR = ratio``."""
        return cls(sorted_access_cost=1.0, random_access_cost=float(ratio))


@dataclass
class AccessMeter:
    """Mutable counter of sorted and random accesses for one query.

    The engine charges every index access here; benchmarks read the
    normalized :attr:`cost` which is exactly the paper's COST metric.
    """

    cost_model: CostModel = field(default_factory=CostModel)
    sorted_accesses: int = 0
    random_accesses: int = 0

    def charge_sorted(self, count: int = 1) -> None:
        """Charge ``count`` sorted accesses (one per index entry scanned)."""
        if count < 0:
            raise ValueError("cannot charge a negative number of accesses")
        self.sorted_accesses += count

    def charge_random(self, count: int = 1) -> None:
        """Charge ``count`` random accesses (one per score lookup)."""
        if count < 0:
            raise ValueError("cannot charge a negative number of accesses")
        self.random_accesses += count

    @property
    def cost(self) -> float:
        """Normalized cost ``#SA + (cR/cS) * #RA`` (the paper's COST)."""
        return self.sorted_accesses + self.cost_model.ratio * self.random_accesses

    @property
    def absolute_cost(self) -> float:
        """Unnormalized cost ``cS * #SA + cR * #RA``."""
        return (
            self.cost_model.sorted_access_cost * self.sorted_accesses
            + self.cost_model.random_access_cost * self.random_accesses
        )

    def reset(self) -> None:
        """Zero both counters (the cost model is kept)."""
        self.sorted_accesses = 0
        self.random_accesses = 0

    def snapshot(self) -> "AccessMeter":
        """Return an independent copy of the current counters."""
        return AccessMeter(
            cost_model=self.cost_model,
            sorted_accesses=self.sorted_accesses,
            random_accesses=self.random_accesses,
        )
