"""Storage fault injection: deterministic chaos for the block-index.

Production index servers lose blocks, time out, and return corrupted
pages; the paper's cost model (and Fagin-style TA processing in general)
assumes every access succeeds.  This module makes failure a first-class,
*reproducible* input to the engine:

* :class:`FaultPlan` — a declarative, seeded description of the fault
  load: transient I/O errors on block reads and random-access probes,
  latency spikes (fed into :mod:`repro.storage.latency` estimates), and
  bit-flip corruption of block payloads.  ``dead_terms`` marks lists that
  fail *every* access, for forcing retry-budget exhaustion.
* :class:`FaultInjector` — draws faults from the plan with its own
  ``numpy`` generator, so the same plan over the same access sequence
  produces the same faults, run after run.
* :class:`FaultyIndexList` — wraps an :class:`IndexList` so that faults
  fire exactly where real I/O happens: :meth:`IndexList.read_block` and
  :meth:`IndexList.lookup`.  Every block read through the fault layer is
  verified against the list's CRC32 block checksum, so corruption
  surfaces as a typed fault instead of silently wrong scores.

The retry/backoff machinery that *consumes* these faults lives in
:mod:`repro.storage.accessors`; the engine-level degradation (dropped
lists, anytime results) lives in :mod:`repro.core.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from .block_index import IndexList, InvertedBlockIndex, compute_block_checksum


class TransientIOError(IOError):
    """A retryable storage failure (lost page, timeout, flaky NIC)."""


class IndexCorruptionError(IOError):
    """Index data failed an integrity check (checksum mismatch,
    truncated or undecodable file)."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of one fault-injection campaign.

    All rates are per-access probabilities in ``[0, 1]``.  A plan with
    every rate at zero and no dead terms is *inert*: wrapping an index
    with it is a no-op, which is the zero-overhead guarantee the chaos
    tests pin down.
    """

    seed: int = 0
    #: probability that a block read raises :class:`TransientIOError`
    read_fault_rate: float = 0.0
    #: probability that a random-access probe raises :class:`TransientIOError`
    probe_fault_rate: float = 0.0
    #: probability that a block read returns a bit-flipped payload
    #: (caught by the CRC check and surfaced as a corruption fault)
    corruption_rate: float = 0.0
    #: probability that an access is delayed by ``latency_spike_ms``
    latency_spike_rate: float = 0.0
    #: simulated extra latency per spike, in milliseconds
    latency_spike_ms: float = 50.0
    #: lists whose every access fails (forces retry-budget exhaustion)
    dead_terms: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("read_fault_rate", "probe_fault_rate",
                     "corruption_rate", "latency_spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError("%s must be within [0, 1]" % name)
        if self.latency_spike_ms < 0:
            raise ValueError("latency_spike_ms must be non-negative")
        object.__setattr__(self, "dead_terms", tuple(self.dead_terms))

    @classmethod
    def uniform(cls, rate: float, seed: int = 0,
                corruption_rate: float = 0.0) -> "FaultPlan":
        """Transient faults at ``rate`` on both access kinds."""
        return cls(
            seed=seed,
            read_fault_rate=rate,
            probe_fault_rate=rate,
            corruption_rate=corruption_rate,
        )

    @property
    def is_inert(self) -> bool:
        """True when the plan can never produce a fault."""
        return (
            self.read_fault_rate == 0.0
            and self.probe_fault_rate == 0.0
            and self.corruption_rate == 0.0
            and self.latency_spike_rate == 0.0
            and not self.dead_terms
        )


@dataclass
class FaultStats:
    """Counters of everything an injector did, for chaos reporting."""

    block_reads: int = 0
    probes: int = 0
    transient_read_faults: int = 0
    transient_probe_faults: int = 0
    corrupted_blocks: int = 0
    latency_spikes: int = 0
    injected_latency_ms: float = 0.0

    @property
    def total_faults(self) -> int:
        return (
            self.transient_read_faults
            + self.transient_probe_faults
            + self.corrupted_blocks
        )


class FaultInjector:
    """Seeded fault source shared by every wrapped list of one index.

    Faults are drawn access-by-access from a private generator, so a
    fixed plan plus a deterministic access sequence yields a
    bit-identical fault sequence — the property the determinism tests
    (and any debugging session replaying a chaos run) rely on.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = np.random.default_rng(plan.seed)
        self._dead = frozenset(plan.dead_terms)

    # ------------------------------------------------------------------
    # Fault draws (one per physical access)
    # ------------------------------------------------------------------
    def _maybe_spike(self) -> None:
        plan = self.plan
        if plan.latency_spike_rate and self._rng.random() < plan.latency_spike_rate:
            self.stats.latency_spikes += 1
            self.stats.injected_latency_ms += plan.latency_spike_ms

    def read_block(self, inner: IndexList, block: int) -> Tuple[np.ndarray, np.ndarray]:
        """One faulty block read; raises instead of returning bad data."""
        plan = self.plan
        self.stats.block_reads += 1
        if inner.term in self._dead:
            self.stats.transient_read_faults += 1
            raise TransientIOError(
                "list %r is unavailable (dead term)" % inner.term
            )
        self._maybe_spike()
        if plan.read_fault_rate and self._rng.random() < plan.read_fault_rate:
            self.stats.transient_read_faults += 1
            raise TransientIOError(
                "transient read fault on list %r block %d"
                % (inner.term, block)
            )
        doc_ids, scores = inner.read_block(block)
        if plan.corruption_rate and self._rng.random() < plan.corruption_rate:
            doc_ids, scores = self._flip_bit(doc_ids, scores)
        if compute_block_checksum(doc_ids, scores) != inner.block_checksum(block):
            self.stats.corrupted_blocks += 1
            raise IndexCorruptionError(
                "checksum mismatch on list %r block %d" % (inner.term, block)
            )
        return doc_ids, scores

    def lookup(self, inner: IndexList, doc_id: int) -> Optional[float]:
        """One faulty random-access probe."""
        plan = self.plan
        self.stats.probes += 1
        if inner.term in self._dead:
            self.stats.transient_probe_faults += 1
            raise TransientIOError(
                "list %r is unavailable (dead term)" % inner.term
            )
        self._maybe_spike()
        if plan.probe_fault_rate and self._rng.random() < plan.probe_fault_rate:
            self.stats.transient_probe_faults += 1
            raise TransientIOError(
                "transient probe fault on list %r doc %d"
                % (inner.term, doc_id)
            )
        return inner.lookup(doc_id)

    def _flip_bit(
        self, doc_ids: np.ndarray, scores: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flip one random bit of one score in a copied payload."""
        scores = scores.copy()
        entry = int(self._rng.integers(0, scores.size))
        bit = int(self._rng.integers(0, 64))
        bits = scores.view(np.uint64)
        bits[entry] ^= np.uint64(1) << np.uint64(bit)
        return doc_ids, scores

    # ------------------------------------------------------------------
    # Index wrapping
    # ------------------------------------------------------------------
    def wrap_index(self, index: InvertedBlockIndex) -> InvertedBlockIndex:
        """Wrap every list of ``index`` behind the fault layer.

        Inert plans return ``index`` unchanged — the zero-overhead path:
        a fault-free configuration must be byte-identical to never having
        heard of fault injection at all.
        """
        if self.plan.is_inert:
            return index
        wrapped = {
            term: FaultyIndexList(index.list_for(term), self)
            for term in index.terms
        }
        return InvertedBlockIndex(wrapped, num_docs=index.num_docs)


class FaultyIndexList:
    """An :class:`IndexList` whose I/O entry points inject faults.

    Only :meth:`read_block` and :meth:`lookup` — the two operations that
    correspond to physical I/O in the paper's storage model — go through
    the injector.  Everything else (geometry, statistics views used by
    histogram builders) delegates to the clean inner list: statistics
    are precomputed offline, not streamed at query time.
    """

    def __init__(self, inner: IndexList, injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    @property
    def inner(self) -> IndexList:
        """The clean wrapped list (oracle tooling and tests only)."""
        return self._inner

    def read_block(self, block: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._injector.read_block(self._inner, block)

    def lookup(self, doc_id: int) -> Optional[float]:
        return self._injector.lookup(self._inner, doc_id)

    # Delegate the passive API (term, geometry, rank views, checksums).
    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __len__(self) -> int:
        return len(self._inner)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._inner

    def __iter__(self) -> Iterator:
        return iter(self._inner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FaultyIndexList(%r)" % (self._inner,)
