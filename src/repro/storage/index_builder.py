"""Builders that turn scored postings into an inverted block-index."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping, Optional, Tuple

from .block_index import DEFAULT_BLOCK_SIZE, IndexList, InvertedBlockIndex

Posting = Tuple[int, float]


def build_index_list(
    term: str,
    postings: Iterable[Posting],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> IndexList:
    """Build one :class:`IndexList` from ``(doc_id, score)`` postings."""
    doc_ids = []
    scores = []
    for doc_id, score in postings:
        doc_ids.append(int(doc_id))
        scores.append(float(score))
    return IndexList(term, doc_ids, scores, block_size=block_size)


def build_index(
    postings_by_term: Mapping[str, Iterable[Posting]],
    num_docs: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> InvertedBlockIndex:
    """Build an :class:`InvertedBlockIndex` from per-term posting lists.

    ``num_docs`` defaults to the number of distinct doc ids across all lists;
    pass the true collection size when some documents match no indexed term
    (it feeds the selectivity estimator's ``n``).
    """
    lists: Dict[str, IndexList] = {}
    seen_docs = set()
    for term, postings in postings_by_term.items():
        index_list = build_index_list(term, postings, block_size=block_size)
        lists[term] = index_list
        seen_docs.update(index_list.doc_ids_by_rank.tolist())
    if num_docs is None:
        num_docs = max(len(seen_docs), 1)
    if seen_docs and num_docs < len(seen_docs):
        raise ValueError(
            "num_docs=%d is smaller than the %d distinct documents indexed"
            % (num_docs, len(seen_docs))
        )
    return InvertedBlockIndex(lists, num_docs=num_docs)


def build_index_from_documents(
    documents: Mapping[int, Mapping[str, float]],
    num_docs: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> InvertedBlockIndex:
    """Build an index from the *forward* view ``doc_id -> {term: score}``.

    Convenient for small structured datasets (e.g. the IMDB-style catalog)
    where per-document attribute scores are the natural representation.
    """
    postings: Dict[str, list] = defaultdict(list)
    for doc_id, term_scores in documents.items():
        for term, score in term_scores.items():
            postings[term].append((doc_id, score))
    if num_docs is None:
        num_docs = max(len(documents), 1)
    return build_index(postings, num_docs=num_docs, block_size=block_size)
