"""Builders that turn scored postings into an inverted block-index."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .block_index import DEFAULT_BLOCK_SIZE, IndexList, InvertedBlockIndex

Posting = Tuple[int, float]


def build_index_list(
    term: str,
    postings: Iterable[Posting],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> IndexList:
    """Build one :class:`IndexList` from ``(doc_id, score)`` postings."""
    doc_ids = []
    scores = []
    for doc_id, score in postings:
        doc_ids.append(int(doc_id))
        scores.append(float(score))
    return IndexList(term, doc_ids, scores, block_size=block_size)


def build_index(
    postings_by_term: Mapping[str, Iterable[Posting]],
    num_docs: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> InvertedBlockIndex:
    """Build an :class:`InvertedBlockIndex` from per-term posting lists.

    ``num_docs`` defaults to the number of distinct doc ids across all lists;
    pass the true collection size when some documents match no indexed term
    (it feeds the selectivity estimator's ``n``).
    """
    lists: Dict[str, IndexList] = {}
    seen_docs = set()
    for term, postings in postings_by_term.items():
        index_list = build_index_list(term, postings, block_size=block_size)
        lists[term] = index_list
        seen_docs.update(index_list.doc_ids_by_rank.tolist())
    if num_docs is None:
        num_docs = max(len(seen_docs), 1)
    if seen_docs and num_docs < len(seen_docs):
        raise ValueError(
            "num_docs=%d is smaller than the %d distinct documents indexed"
            % (num_docs, len(seen_docs))
        )
    return InvertedBlockIndex(lists, num_docs=num_docs)


def build_index_shards(
    postings_by_term: Mapping[str, Iterable[Posting]],
    assignment: Mapping[int, int],
    num_shards: int,
    num_docs: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Tuple["InvertedBlockIndex", ...]:
    """Build one block-index per shard from a document assignment.

    ``assignment`` maps every doc id that appears in ``postings_by_term``
    to a shard in ``[0, num_shards)``; computing that assignment (hash,
    round-robin, ...) is the partitioner's job
    (:mod:`repro.distrib.partition`) — this hook only materializes the
    per-shard indexes.  Global doc ids are preserved verbatim, so results
    merged across shards need no id translation.

    Every shard index carries a list for **every** term (possibly empty):
    a query planned against one shard must never fail on a term that
    simply has no postings in that shard's document range.

    ``num_docs`` is the *global* collection size; the unassigned remainder
    (documents matching no indexed term) is spread evenly across shards so
    per-shard selectivity estimates stay calibrated.  Shard sizes sum to
    at least the global ``num_docs`` (each shard is clamped to hold one
    document minimum, matching :class:`InvertedBlockIndex`'s contract).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    shard_postings: Tuple[Dict[str, list], ...] = tuple(
        {} for _ in range(num_shards)
    )
    seen_docs = set()
    for term, postings in postings_by_term.items():
        per_shard: List[List[Posting]] = [[] for _ in range(num_shards)]
        for doc_id, score in postings:
            doc_id = int(doc_id)
            seen_docs.add(doc_id)
            try:
                shard = assignment[doc_id]
            except KeyError:
                raise ValueError(
                    "doc id %d has no shard assignment" % doc_id
                ) from None
            if not 0 <= shard < num_shards:
                raise ValueError(
                    "doc %d assigned to shard %d outside [0, %d)"
                    % (doc_id, shard, num_shards)
                )
            per_shard[shard].append((doc_id, float(score)))
        for shard in range(num_shards):
            shard_postings[shard][term] = per_shard[shard]
    if num_docs is None:
        num_docs = max(len(seen_docs), 1)
    assigned_counts = [0] * num_shards
    for doc_id in seen_docs:
        assigned_counts[assignment[doc_id]] += 1
    unassigned = max(num_docs - len(seen_docs), 0)
    base, remainder = divmod(unassigned, num_shards)
    shards = []
    for shard in range(num_shards):
        shard_docs = assigned_counts[shard] + base + (
            1 if shard < remainder else 0
        )
        lists = {
            term: build_index_list(term, postings, block_size=block_size)
            for term, postings in shard_postings[shard].items()
        }
        shards.append(
            InvertedBlockIndex(lists, num_docs=max(shard_docs, 1))
        )
    return tuple(shards)


def build_index_from_documents(
    documents: Mapping[int, Mapping[str, float]],
    num_docs: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> InvertedBlockIndex:
    """Build an index from the *forward* view ``doc_id -> {term: score}``.

    Convenient for small structured datasets (e.g. the IMDB-style catalog)
    where per-document attribute scores are the natural representation.
    """
    postings: Dict[str, list] = defaultdict(list)
    for doc_id, term_scores in documents.items():
        for term, score in term_scores.items():
            postings[term].append((doc_id, score))
    if num_docs is None:
        num_docs = max(len(documents), 1)
    return build_index(postings, num_docs=num_docs, block_size=block_size)
