"""Disk latency model: translate access counts into simulated I/O time.

The paper's runtime measurements (Fig. 4) were taken on a machine where
every sorted access streams index entries off a SCSI RAID and every random
access pays a seek — our Python reproduction measures only CPU-side
bookkeeping, which is why the FullMerge baseline looks unrealistically
fast (see EXPERIMENTS.md E3).  This model restores the missing physics: a
simple seek + transfer parametrization turns ``(#SA, #RA)`` into estimated
I/O milliseconds, and its implied ``cR/cS`` ratio documents how the
abstract cost ratios of the experiments map onto hardware.

Default parameters approximate a mid-2000s server disk (the paper's
setting): ~8 ms per random seek, ~50 MB/s sequential transfer with 8-byte
index entries, and one repositioning seek per scanned block per list.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskParameters:
    """Physical parameters of the simulated disk."""

    seek_time_ms: float = 8.0
    #: sequential throughput in index entries per millisecond
    #: (50 MB/s / 8 bytes per entry ~ 6,250 entries/ms)
    transfer_entries_per_ms: float = 6250.0
    #: entries fetched per sequential repositioning (one block)
    block_size: int = 1024
    #: how many consecutive blocks stream without an extra seek
    blocks_per_seek: int = 16

    def __post_init__(self) -> None:
        if self.seek_time_ms < 0:
            raise ValueError("seek_time_ms must be non-negative")
        if self.transfer_entries_per_ms <= 0:
            raise ValueError("transfer_entries_per_ms must be positive")
        if self.block_size <= 0 or self.blocks_per_seek <= 0:
            raise ValueError("block geometry must be positive")

    @classmethod
    def for_cost_ratio(
        cls,
        ratio: float,
        transfer_entries_per_ms: float = 6250.0,
        block_size: int = 1024,
        blocks_per_seek: int = 16,
    ) -> "DiskParameters":
        """Parameters whose implied ``cR/cS`` equals ``ratio``.

        Solves for the seek time that makes one random access cost exactly
        ``ratio`` times one amortized sequential entry — the hardware the
        experiments' abstract cost model describes.  Requires
        ``ratio < block_size * blocks_per_seek`` (beyond that, seeks alone
        cannot produce the ratio at the given transfer rate).
        """
        stream = block_size * blocks_per_seek
        if not 1.0 <= ratio < stream:
            raise ValueError(
                "ratio must be within [1, block_size * blocks_per_seek)"
            )
        seek = (ratio - 1.0) / (
            transfer_entries_per_ms * (1.0 - ratio / stream)
        )
        return cls(
            seek_time_ms=seek,
            transfer_entries_per_ms=transfer_entries_per_ms,
            block_size=block_size,
            blocks_per_seek=blocks_per_seek,
        )


class DiskLatencyModel:
    """Estimate I/O time for a query execution's access counts."""

    def __init__(self, parameters: DiskParameters = None) -> None:
        self.parameters = (
            parameters if parameters is not None else DiskParameters()
        )

    def sorted_access_ms(self, entries: float) -> float:
        """Milliseconds to stream ``entries`` index entries sequentially."""
        if entries < 0:
            raise ValueError("entries must be non-negative")
        p = self.parameters
        blocks = entries / p.block_size
        seeks = blocks / p.blocks_per_seek
        return seeks * p.seek_time_ms + entries / p.transfer_entries_per_ms

    def random_access_ms(self, lookups: float) -> float:
        """Milliseconds for ``lookups`` single-entry random accesses."""
        if lookups < 0:
            raise ValueError("lookups must be non-negative")
        p = self.parameters
        return lookups * (p.seek_time_ms + 1.0 / p.transfer_entries_per_ms)

    def estimate_ms(self, sorted_accesses: float,
                    random_accesses: float,
                    extra_ms: float = 0.0) -> float:
        """Total simulated I/O time for one query execution.

        ``extra_ms`` folds in time the access counts cannot see — injected
        latency spikes (:class:`~repro.storage.faults.FaultStats`
        ``injected_latency_ms``) and simulated retry backoff
        (:class:`~repro.storage.accessors.RetrySession` ``waited_ms``) —
        so chaos experiments report wall-clock-equivalent I/O time.
        """
        if extra_ms < 0:
            raise ValueError("extra_ms must be non-negative")
        return self.sorted_access_ms(sorted_accesses) + self.random_access_ms(
            random_accesses
        ) + extra_ms

    def implied_cost_ratio(self) -> float:
        """The ``cR/cS`` this hardware implies (per-entry time ratio)."""
        per_sorted_entry = self.sorted_access_ms(
            float(self.parameters.block_size)
        ) / self.parameters.block_size
        return self.random_access_ms(1.0) / per_sorted_entry
