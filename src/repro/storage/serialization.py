"""Persist and reload inverted block-indexes (.npz or mmap-able v3).

A production index lives on disk; this module gives the library a simple,
dependency-free on-disk format so collections can be built once and reused
across sessions.  Two layouts share one entry point:

* ``layout="npz"`` (format versions 1-2) — a compressed numpy archive
  storing each list's postings; the blocked layout is rebuilt
  deterministically on load (it is a pure function of the postings and
  the block size).  Version 2 added integrity: one CRC32 checksum per
  block (the same :func:`~repro.storage.block_index.compute_block_checksum`
  the fault layer uses at query time) written next to each list and
  re-verified on load,
* ``layout="mmap"`` (format version 3) — an uncompressed, page-aligned
  block layout designed for ``np.memmap``: every array the query path
  touches (rank columns, the doc-id-sorted block columns, the
  random-access lookup columns) is stored verbatim as little-endian raw
  bytes, so loading is **zero-copy** — the arrays returned by
  :func:`load_index` are read-only views into the file's pages, shared
  between every process that maps it.  This is the persistent index
  backend behind
  :class:`~repro.distrib.process.ProcessShardExecutor`: worker processes
  open their shard's file read-only and serve queries without ever
  holding a private copy of the index.  The per-block CRC table is
  stored and re-verified on load exactly like v2, and the JSON header
  carries its own CRC32 so metadata corruption is typed too.

A truncated, bit-flipped, or otherwise undecodable file raises a typed
:class:`~repro.storage.faults.IndexCorruptionError` instead of producing
garbage scores.  Version-1 files (no checksums) still load, unverified.
:func:`load_index` sniffs the layout from the file's magic bytes, so
callers never need to know which layout a path holds.
"""

from __future__ import annotations

import json
import pathlib
import zipfile
import zlib
from typing import Dict, List, Tuple, Union

import numpy as np

from .block_index import IndexList, InvertedBlockIndex, compute_block_checksum
from .faults import IndexCorruptionError

#: Format version written into every npz file; bump on incompatible changes.
FORMAT_VERSION = 2

#: Format version of the mmap-able raw layout.
MMAP_FORMAT_VERSION = 3

#: Versions the npz path of :func:`load_index` understands.
_READABLE_VERSIONS = (1, 2)

#: Magic prefix of a v3 (mmap-able) index file.
MMAP_MAGIC = b"IOTOPK3\x00"

#: Every array segment starts on a multiple of this (numpy-friendly and
#: a divisor of the page size, so score columns stay aligned for mmap).
_SEGMENT_ALIGN = 64

#: The six layout arrays persisted per list, in file order, with dtypes.
_LIST_COLUMNS = (
    ("rank_docs", np.int64),
    ("rank_scores", np.float64),
    ("block_docs", np.int64),
    ("block_scores", np.float64),
    ("lookup_docs", np.int64),
    ("lookup_scores", np.float64),
)


class UnsupportedFormatError(ValueError):
    """The file is intact but written in an unknown format version."""


def save_index(
    index: InvertedBlockIndex,
    path: Union[str, pathlib.Path],
    layout: str = "npz",
) -> None:
    """Write the index to ``path``.

    ``layout="npz"`` (default) writes the compressed v2 archive;
    ``layout="mmap"`` writes the uncompressed v3 layout that
    :func:`load_index` maps zero-copy.  Both are read back through the
    same :func:`load_index` (the layout is sniffed from the file).
    """
    if layout == "mmap":
        _save_index_mmap(index, pathlib.Path(path))
        return
    if layout != "npz":
        raise ValueError(
            "unknown index layout %r; valid: npz, mmap" % (layout,)
        )
    path = pathlib.Path(path)
    terms = index.terms
    metadata = {
        "format_version": FORMAT_VERSION,
        "num_docs": index.num_docs,
        "terms": terms,
        "block_sizes": [index.list_for(t).block_size for t in terms],
    }
    arrays = {
        "metadata": np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
    }
    for position, term in enumerate(terms):
        index_list = index.list_for(term)
        arrays["docs_%d" % position] = index_list.doc_ids_by_rank
        arrays["scores_%d" % position] = index_list.scores_by_rank
        arrays["crc_%d" % position] = np.array(
            [
                index_list.block_checksum(block)
                for block in range(index_list.num_blocks)
            ],
            dtype=np.uint64,
        )
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_index(path: Union[str, pathlib.Path]) -> InvertedBlockIndex:
    """Load an index previously written by :func:`save_index`.

    The layout is sniffed from the file's magic bytes: v3 (mmap) files
    load zero-copy as read-only :class:`numpy.memmap` views, npz files
    decompress into fresh arrays.  Raises :class:`FileNotFoundError`
    for a missing file, :class:`UnsupportedFormatError` for an unknown
    format version, and :class:`IndexCorruptionError` for anything that
    fails integrity checks — truncated archives, undecodable metadata,
    bit-flipped payloads, or per-block checksum mismatches.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(str(path))
    with path.open("rb") as handle:
        prefix = handle.read(len(MMAP_MAGIC))
    if prefix == MMAP_MAGIC:
        return _load_index_mmap(path)
    try:
        with np.load(path) as archive:
            metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
            version = metadata.get("format_version")
            if version not in _READABLE_VERSIONS:
                raise UnsupportedFormatError(
                    "unsupported index format version %r (expected one of %s)"
                    % (version, list(_READABLE_VERSIONS))
                )
            lists = {}
            for position, term in enumerate(metadata["terms"]):
                index_list = IndexList(
                    term,
                    archive["docs_%d" % position],
                    archive["scores_%d" % position],
                    block_size=metadata["block_sizes"][position],
                )
                if version >= 2:
                    _verify_checksums(
                        index_list, archive["crc_%d" % position], term
                    )
                lists[term] = index_list
            num_docs = metadata["num_docs"]
    except (IndexCorruptionError, UnsupportedFormatError):
        raise
    except (
        zipfile.BadZipFile,
        zlib.error,
        EOFError,
        OSError,
        KeyError,
        ValueError,
        RuntimeError,  # zipfile raises this for, e.g., flipped flag bits
    ) as exc:
        # Anything that keeps the archive from decoding cleanly —
        # truncation, flipped bits inside the compressed streams, missing
        # members, postings that violate index invariants — is corruption.
        raise IndexCorruptionError(
            "index file %s is corrupted: %s" % (path, exc)
        ) from exc
    return InvertedBlockIndex(lists, num_docs=num_docs)


# ----------------------------------------------------------------------
# The v3 mmap-able layout
# ----------------------------------------------------------------------
#
# File structure (all integers little-endian):
#
#   bytes 0..7    MMAP_MAGIC
#   bytes 8..15   uint64: length of the JSON header in bytes
#   bytes 16..19  uint32: CRC32 of the JSON header bytes
#   bytes 20..    the JSON header (UTF-8, sorted keys — deterministic)
#   then, each starting on a _SEGMENT_ALIGN boundary, the raw
#   little-endian array segments in header order.
#
# The header records, per term: the block size, the per-block CRC table
# (plain ints — verified against the mapped block columns on load), and
# the byte offset + element count of each of the six layout arrays.
# Writing is deterministic byte for byte: re-saving a loaded index
# reproduces the identical file, which the corruption suite pins.


def _list_layout_arrays(index_list: IndexList) -> List[np.ndarray]:
    """The six persisted columns of one list, in `_LIST_COLUMNS` order."""
    return [
        index_list.doc_ids_by_rank,
        index_list.scores_by_rank,
        index_list._block_doc_ids,
        index_list._block_scores,
        index_list._lookup_doc_ids,
        index_list._lookup_scores,
    ]


def _save_index_mmap(index: InvertedBlockIndex, path: pathlib.Path) -> None:
    terms = index.terms
    lists = [index.list_for(term) for term in terms]
    # Lay out the segments first so the header can carry real offsets.
    # The header length feeds back into the first offset, so compute the
    # header with placeholder offsets of equal digit width: offsets are
    # written as plain ints, which would change the header length — to
    # stay deterministic, the layout is computed iteratively until the
    # header length stabilizes (it converges in <= 3 rounds).
    entries: List[Dict] = []
    for term, lst in zip(terms, lists):
        entries.append(
            {
                "term": term,
                "block_size": lst.block_size,
                "length": len(lst),
                "block_crcs": [
                    lst.block_checksum(block)
                    for block in range(lst.num_blocks)
                ],
            }
        )

    segment_bytes: List[List[bytes]] = [
        [
            np.ascontiguousarray(
                array, dtype=np.dtype(dtype).newbyteorder("<")
            ).tobytes()
            for (_, dtype), array in zip(
                _LIST_COLUMNS, _list_layout_arrays(lst)
            )
        ]
        for lst in lists
    ]

    def build_header(offsets: List[List[int]]) -> bytes:
        header = {
            "format_version": MMAP_FORMAT_VERSION,
            "num_docs": index.num_docs,
            "lists": [
                {
                    **entry,
                    "segments": {
                        name: {
                            "offset": off,
                            "count": entry["length"],
                            "crc": zlib.crc32(raw),
                        }
                        for (name, _), off, raw in zip(
                            _LIST_COLUMNS, offs, raws
                        )
                    },
                }
                for entry, offs, raws in zip(
                    entries, offsets, segment_bytes
                )
            ],
        }
        return json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def layout(header_len: int) -> List[List[int]]:
        cursor = len(MMAP_MAGIC) + 8 + 4 + header_len
        offsets = []
        for lst in lists:
            offs = []
            for _, dtype in _LIST_COLUMNS:
                cursor = -(-cursor // _SEGMENT_ALIGN) * _SEGMENT_ALIGN
                offs.append(cursor)
                cursor += len(lst) * np.dtype(dtype).itemsize
            offsets.append(offs)
        return offsets

    header_bytes = build_header(layout(0))
    for _ in range(4):
        rebuilt = build_header(layout(len(header_bytes)))
        if len(rebuilt) == len(header_bytes):
            header_bytes = rebuilt
            break
        header_bytes = rebuilt
    offsets = layout(len(header_bytes))

    with path.open("wb") as handle:
        handle.write(MMAP_MAGIC)
        handle.write(len(header_bytes).to_bytes(8, "little"))
        handle.write(zlib.crc32(header_bytes).to_bytes(4, "little"))
        handle.write(header_bytes)
        for offs, raws in zip(offsets, segment_bytes):
            for off, raw in zip(offs, raws):
                padding = off - handle.tell()
                if padding:
                    handle.write(b"\x00" * padding)
                handle.write(raw)


def _load_index_mmap(path: pathlib.Path) -> InvertedBlockIndex:
    """Map a v3 file read-only and build zero-copy lists over its pages."""
    try:
        with path.open("rb") as handle:
            preamble = handle.read(len(MMAP_MAGIC) + 12)
            if len(preamble) < len(MMAP_MAGIC) + 12:
                raise IndexCorruptionError(
                    "index file %s is corrupted: truncated preamble" % path
                )
            header_len = int.from_bytes(
                preamble[len(MMAP_MAGIC):len(MMAP_MAGIC) + 8], "little"
            )
            header_crc = int.from_bytes(preamble[-4:], "little")
            header_bytes = handle.read(header_len)
        if len(header_bytes) != header_len:
            raise IndexCorruptionError(
                "index file %s is corrupted: truncated header" % path
            )
        if zlib.crc32(header_bytes) != header_crc:
            raise IndexCorruptionError(
                "index file %s is corrupted: header checksum mismatch"
                % path
            )
        header = json.loads(header_bytes.decode("utf-8"))
        version = header.get("format_version")
        if version != MMAP_FORMAT_VERSION:
            raise UnsupportedFormatError(
                "unsupported mmap index format version %r (expected %d)"
                % (version, MMAP_FORMAT_VERSION)
            )
        mapped = np.memmap(path, dtype=np.uint8, mode="r")
        lists: Dict[str, IndexList] = {}
        for entry in header["lists"]:
            term = entry["term"]
            arrays: Dict[str, np.ndarray] = {}
            for name, dtype in _LIST_COLUMNS:
                segment = entry["segments"][name]
                dt = np.dtype(dtype).newbyteorder("<")
                start = int(segment["offset"])
                stop = start + int(segment["count"]) * dt.itemsize
                if stop > mapped.size:
                    raise IndexCorruptionError(
                        "index file %s is corrupted: segment %s of list "
                        "%r extends past end of file" % (path, name, term)
                    )
                view = mapped[start:stop]
                if zlib.crc32(view.tobytes()) != int(segment["crc"]):
                    raise IndexCorruptionError(
                        "index file %s is corrupted: checksum mismatch "
                        "in segment %s of list %r" % (path, name, term)
                    )
                arrays[name] = view.view(dt)
            index_list = IndexList.from_layout(
                term,
                doc_ids_by_rank=arrays["rank_docs"],
                scores_by_rank=arrays["rank_scores"],
                block_doc_ids=arrays["block_docs"],
                block_scores=arrays["block_scores"],
                lookup_doc_ids=arrays["lookup_docs"],
                lookup_scores=arrays["lookup_scores"],
                block_size=entry["block_size"],
                block_crcs=entry["block_crcs"],
            )
            _verify_mmap_blocks(index_list, entry["block_crcs"], term, path)
            lists[term] = index_list
        return InvertedBlockIndex(lists, num_docs=header["num_docs"])
    except (IndexCorruptionError, UnsupportedFormatError):
        raise
    except (ValueError, KeyError, TypeError, OSError) as exc:
        raise IndexCorruptionError(
            "index file %s is corrupted: %s" % (path, exc)
        ) from exc


def _verify_mmap_blocks(
    index_list: IndexList,
    stored: List[int],
    term: str,
    path: pathlib.Path,
) -> None:
    """Verify every mapped block against the recorded CRC table.

    Mirrors the v2 `_verify_checksums` contract exactly — a flipped bit
    anywhere in a block's doc or score bytes is a typed corruption
    error, never a silently wrong score.  Checksums are computed over
    the mapped views directly, so this also faults in (and validates)
    every page the query path will touch.
    """
    if len(stored) != index_list.num_blocks:
        raise IndexCorruptionError(
            "checksum table of list %r in %s has %d entries for %d blocks"
            % (term, path, len(stored), index_list.num_blocks)
        )
    for block in range(index_list.num_blocks):
        start, stop = index_list.block_bounds(block)
        actual = compute_block_checksum(
            index_list._block_doc_ids[start:stop],
            index_list._block_scores[start:stop],
        )
        if int(stored[block]) != actual:
            raise IndexCorruptionError(
                "checksum mismatch in list %r block %d of %s"
                % (term, block, path)
            )


def _verify_checksums(
    index_list: IndexList, stored: np.ndarray, term: str
) -> None:
    stored = np.asarray(stored, dtype=np.uint64)
    if int(stored.size) != index_list.num_blocks:
        raise IndexCorruptionError(
            "checksum table of list %r has %d entries for %d blocks"
            % (term, int(stored.size), index_list.num_blocks)
        )
    for block in range(index_list.num_blocks):
        if int(stored[block]) != index_list.block_checksum(block):
            raise IndexCorruptionError(
                "checksum mismatch in list %r block %d" % (term, block)
            )
