"""Persist and reload inverted block-indexes (compressed .npz).

A production index lives on disk; this module gives the library a simple,
dependency-free on-disk format so collections can be built once and reused
across sessions.  The format stores each list's postings plus the global
metadata; block layout is rebuilt deterministically on load (the layout is
a pure function of the postings and the block size).

Format version 2 adds integrity: one CRC32 checksum per block (the same
:func:`~repro.storage.block_index.compute_block_checksum` the fault layer
uses at query time) is written next to each list and re-verified on load.
A truncated, bit-flipped, or otherwise undecodable file raises a typed
:class:`~repro.storage.faults.IndexCorruptionError` instead of producing
garbage scores.  Version-1 files (no checksums) still load, unverified.
"""

from __future__ import annotations

import json
import pathlib
import zipfile
import zlib
from typing import Union

import numpy as np

from .block_index import IndexList, InvertedBlockIndex
from .faults import IndexCorruptionError

#: Format version written into every file; bump on incompatible changes.
FORMAT_VERSION = 2

#: Versions :func:`load_index` understands.
_READABLE_VERSIONS = (1, 2)


class UnsupportedFormatError(ValueError):
    """The file is intact but written in an unknown format version."""


def save_index(
    index: InvertedBlockIndex, path: Union[str, pathlib.Path]
) -> None:
    """Write the index to ``path`` as a compressed numpy archive."""
    path = pathlib.Path(path)
    terms = index.terms
    metadata = {
        "format_version": FORMAT_VERSION,
        "num_docs": index.num_docs,
        "terms": terms,
        "block_sizes": [index.list_for(t).block_size for t in terms],
    }
    arrays = {
        "metadata": np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
    }
    for position, term in enumerate(terms):
        index_list = index.list_for(term)
        arrays["docs_%d" % position] = index_list.doc_ids_by_rank
        arrays["scores_%d" % position] = index_list.scores_by_rank
        arrays["crc_%d" % position] = np.array(
            [
                index_list.block_checksum(block)
                for block in range(index_list.num_blocks)
            ],
            dtype=np.uint64,
        )
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_index(path: Union[str, pathlib.Path]) -> InvertedBlockIndex:
    """Load an index previously written by :func:`save_index`.

    Raises :class:`FileNotFoundError` for a missing file,
    :class:`UnsupportedFormatError` for an unknown format version, and
    :class:`IndexCorruptionError` for anything that fails integrity
    checks — truncated archives, undecodable metadata, bit-flipped
    payloads, or per-block checksum mismatches.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(str(path))
    try:
        with np.load(path) as archive:
            metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
            version = metadata.get("format_version")
            if version not in _READABLE_VERSIONS:
                raise UnsupportedFormatError(
                    "unsupported index format version %r (expected one of %s)"
                    % (version, list(_READABLE_VERSIONS))
                )
            lists = {}
            for position, term in enumerate(metadata["terms"]):
                index_list = IndexList(
                    term,
                    archive["docs_%d" % position],
                    archive["scores_%d" % position],
                    block_size=metadata["block_sizes"][position],
                )
                if version >= 2:
                    _verify_checksums(
                        index_list, archive["crc_%d" % position], term
                    )
                lists[term] = index_list
            num_docs = metadata["num_docs"]
    except (IndexCorruptionError, UnsupportedFormatError):
        raise
    except (
        zipfile.BadZipFile,
        zlib.error,
        EOFError,
        OSError,
        KeyError,
        ValueError,
        RuntimeError,  # zipfile raises this for, e.g., flipped flag bits
    ) as exc:
        # Anything that keeps the archive from decoding cleanly —
        # truncation, flipped bits inside the compressed streams, missing
        # members, postings that violate index invariants — is corruption.
        raise IndexCorruptionError(
            "index file %s is corrupted: %s" % (path, exc)
        ) from exc
    return InvertedBlockIndex(lists, num_docs=num_docs)


def _verify_checksums(
    index_list: IndexList, stored: np.ndarray, term: str
) -> None:
    stored = np.asarray(stored, dtype=np.uint64)
    if int(stored.size) != index_list.num_blocks:
        raise IndexCorruptionError(
            "checksum table of list %r has %d entries for %d blocks"
            % (term, int(stored.size), index_list.num_blocks)
        )
    for block in range(index_list.num_blocks):
        if int(stored[block]) != index_list.block_checksum(block):
            raise IndexCorruptionError(
                "checksum mismatch in list %r block %d" % (term, block)
            )
