"""Persist and reload inverted block-indexes (compressed .npz).

A production index lives on disk; this module gives the library a simple,
dependency-free on-disk format so collections can be built once and reused
across sessions.  The format stores each list's postings plus the global
metadata; block layout is rebuilt deterministically on load (the layout is
a pure function of the postings and the block size).
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from .block_index import IndexList, InvertedBlockIndex

#: Format version written into every file; bump on incompatible changes.
FORMAT_VERSION = 1


def save_index(
    index: InvertedBlockIndex, path: Union[str, pathlib.Path]
) -> None:
    """Write the index to ``path`` as a compressed numpy archive."""
    path = pathlib.Path(path)
    terms = index.terms
    metadata = {
        "format_version": FORMAT_VERSION,
        "num_docs": index.num_docs,
        "terms": terms,
        "block_sizes": [index.list_for(t).block_size for t in terms],
    }
    arrays = {
        "metadata": np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
    }
    for position, term in enumerate(terms):
        index_list = index.list_for(term)
        arrays["docs_%d" % position] = index_list.doc_ids_by_rank
        arrays["scores_%d" % position] = index_list.scores_by_rank
    with path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_index(path: Union[str, pathlib.Path]) -> InvertedBlockIndex:
    """Load an index previously written by :func:`save_index`."""
    path = pathlib.Path(path)
    with np.load(path) as archive:
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        version = metadata.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                "unsupported index format version %r (expected %d)"
                % (version, FORMAT_VERSION)
            )
        lists = {}
        for position, term in enumerate(metadata["terms"]):
            lists[term] = IndexList(
                term,
                archive["docs_%d" % position],
                archive["scores_%d" % position],
                block_size=metadata["block_sizes"][position],
            )
    return InvertedBlockIndex(lists, num_docs=metadata["num_docs"])
