"""Shared fixtures for the test suite."""

import pytest

from tests.helpers import (
    COORDINATOR_K,
    MONOTONE_CORPORA,
    SHARD_COUNTS,
    exact_scores,
    make_corpus_session,
    make_random_index,
)


@pytest.fixture
def small_index():
    """Deterministic 3-list uniform index for reuse across tests."""
    return make_random_index(seed=42)


@pytest.fixture(scope="session")
def corpus_sessions():
    """One cached session per stress corpus (stats built once per run).

    Session-scoped on purpose: the differential and threshold-safety
    suites both sweep all 24 algorithm triples over these corpora, and
    rebuilding the indexes + histogram catalogs per module roughly
    doubles their wall time.  Tests must treat the sessions as
    read-only (run queries, never mutate the index).
    """
    return {key: make_corpus_session(*key) for key in MONOTONE_CORPORA}


@pytest.fixture(scope="session")
def coordinator_setup():
    """Shared sharded-execution scaffolding for the coordinator suites.

    A seeded corpus, its brute-force golden top-k, one coordinator per
    shard count, and a single-node session for parity baselines.
    """
    from repro.core.session import QuerySession
    from repro.distrib import (
        MergeCoordinator,
        ShardExecutor,
        partition_index,
    )

    index, terms = make_random_index(seed=42)
    totals = exact_scores(index, terms)
    golden = [
        doc
        for doc, _ in sorted(
            totals.items(), key=lambda kv: (-kv[1], kv[0])
        )[:COORDINATOR_K]
    ]
    coordinators = {}
    for count in SHARD_COUNTS:
        sharded = partition_index(index, count, strategy="hash")
        coordinators[count] = MergeCoordinator(ShardExecutor(sharded))
    single = QuerySession(index)
    return {
        "index": index,
        "terms": terms,
        "totals": totals,
        "golden": golden,
        "coordinators": coordinators,
        "single": single,
    }
