"""Shared fixtures for the test suite."""

import pytest

from tests.helpers import make_random_index


@pytest.fixture
def small_index():
    """Deterministic 3-list uniform index for reuse across tests."""
    return make_random_index(seed=42)
