"""Shared helper functions for the test suite."""

from __future__ import annotations

import collections
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.storage.block_index import InvertedBlockIndex
from repro.storage.index_builder import build_index


def make_random_index(
    num_lists: int = 3,
    list_length: int = 600,
    num_docs: int = 2000,
    block_size: int = 64,
    distribution: str = "uniform",
    seed: int = 0,
) -> Tuple[InvertedBlockIndex, List[str]]:
    """A small random index plus the list of its terms."""
    rng = np.random.default_rng(seed)
    postings: Dict[str, list] = {}
    terms = []
    for i in range(num_lists):
        term = "t%d" % i
        terms.append(term)
        docs = rng.choice(num_docs, size=list_length, replace=False)
        if distribution == "uniform":
            scores = rng.random(list_length)
        elif distribution == "zipf":
            scores = np.power(np.arange(1, list_length + 1, dtype=float), -0.9)
            rng.shuffle(scores)
        elif distribution == "ties":
            scores = rng.choice([0.2, 0.5, 0.8, 1.0], size=list_length)
        else:
            raise ValueError(distribution)
        postings[term] = list(zip(docs.tolist(), scores.tolist()))
    index = build_index(postings, num_docs=num_docs, block_size=block_size)
    return index, terms


def oracle_scores(
    index: InvertedBlockIndex, terms: Sequence[str], k: int
) -> List[float]:
    """Brute-force top-k aggregated scores (descending).

    Zero-total documents are excluded, matching the library's semantics
    (a document with no positive score is indistinguishable from an
    unseen one and is never returned).
    """
    totals = collections.defaultdict(float)
    for term in terms:
        index_list = index.list_for(term)
        for doc, score in zip(
            index_list.doc_ids_by_rank, index_list.scores_by_rank
        ):
            totals[int(doc)] += float(score)
    ranked = sorted((t for t in totals.values() if t > 0.0), reverse=True)
    return ranked[:k]


def true_score(index: InvertedBlockIndex, terms: Sequence[str], doc_id: int) -> float:
    """Exact aggregated score of one document."""
    total = 0.0
    for term in terms:
        score = index.list_for(term).lookup(doc_id)
        total += score if score is not None else 0.0
    return total


