"""Shared helper functions for the test suite."""

from __future__ import annotations

import collections
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.storage.block_index import InvertedBlockIndex
from repro.storage.index_builder import build_index

#: (seed, distribution) pairs for the randomized stress corpora.  The
#: distributions stress different engine behaviours: uniform (dense score
#: range), zipf (skewed, fast-dropping highs), ties (plateaus exercise
#: tie-breaking).  Shared by the differential, coordinator, and
#: threshold-safety suites via the session-scoped fixtures in conftest.
CORPORA = [(1, "uniform"), (2, "zipf"), (3, "ties")]

#: Extra corpora for the cheap monotonicity sweep.
MONOTONE_CORPORA = CORPORA + [(7, "uniform"), (11, "zipf")]

#: k and shard counts used by the coordinator parity fixtures.
COORDINATOR_K = 10
SHARD_COUNTS = (1, 2, 4, 7)


def make_random_index(
    num_lists: int = 3,
    list_length: int = 600,
    num_docs: int = 2000,
    block_size: int = 64,
    distribution: str = "uniform",
    seed: int = 0,
) -> Tuple[InvertedBlockIndex, List[str]]:
    """A small random index plus the list of its terms."""
    rng = np.random.default_rng(seed)
    postings: Dict[str, list] = {}
    terms = []
    for i in range(num_lists):
        term = "t%d" % i
        terms.append(term)
        docs = rng.choice(num_docs, size=list_length, replace=False)
        if distribution == "uniform":
            scores = rng.random(list_length)
        elif distribution == "zipf":
            scores = np.power(np.arange(1, list_length + 1, dtype=float), -0.9)
            rng.shuffle(scores)
        elif distribution == "ties":
            scores = rng.choice([0.2, 0.5, 0.8, 1.0], size=list_length)
        else:
            raise ValueError(distribution)
        postings[term] = list(zip(docs.tolist(), scores.tolist()))
    index = build_index(postings, num_docs=num_docs, block_size=block_size)
    return index, terms


def make_corpus_session(seed: int, distribution: str):
    """The standard stress-corpus session: 3 lists x 300 postings over
    1000 docs, block size 32, cost ratio 100.  One cached instance per
    (seed, distribution) is provided by the ``corpus_sessions`` fixture."""
    from repro.core.session import QuerySession

    index, terms = make_random_index(
        num_lists=3,
        list_length=300,
        num_docs=1000,
        block_size=32,
        distribution=distribution,
        seed=seed,
    )
    return QuerySession(index, cost_ratio=100.0), terms


def exact_scores(index: InvertedBlockIndex, terms: Sequence[str]) -> Dict[int, float]:
    """Exact aggregated score of every document appearing in ``terms``."""
    totals: Dict[int, float] = collections.defaultdict(float)
    for term in terms:
        lst = index.list_for(term)
        for doc, score in zip(
            lst.doc_ids_by_rank.tolist(), lst.scores_by_rank.tolist()
        ):
            totals[int(doc)] += float(score)
    return totals


def oracle_scores(
    index: InvertedBlockIndex, terms: Sequence[str], k: int
) -> List[float]:
    """Brute-force top-k aggregated scores (descending).

    Zero-total documents are excluded, matching the library's semantics
    (a document with no positive score is indistinguishable from an
    unseen one and is never returned).
    """
    totals = collections.defaultdict(float)
    for term in terms:
        index_list = index.list_for(term)
        for doc, score in zip(
            index_list.doc_ids_by_rank, index_list.scores_by_rank
        ):
            totals[int(doc)] += float(score)
    ranked = sorted((t for t in totals.values() if t > 0.0), reverse=True)
    return ranked[:k]


def true_score(index: InvertedBlockIndex, terms: Sequence[str], doc_id: int) -> float:
    """Exact aggregated score of one document."""
    total = 0.0
    for term in terms:
        score = index.list_for(term).lookup(doc_id)
        total += score if score is not None else 0.0
    return total


