"""Unit tests for the charged access paths (cursors and probes)."""

import numpy as np
import pytest

from repro.storage.accessors import RandomAccessor, SortedCursor
from repro.storage.block_index import IndexList
from repro.storage.diskmodel import AccessMeter, CostModel
from repro.storage.faults import FaultInjector, FaultPlan, FaultyIndexList


@pytest.fixture
def setup():
    docs = np.arange(10)
    scores = np.linspace(1.0, 0.1, 10)
    index_list = IndexList("t", docs, scores, block_size=4)
    meter = AccessMeter(cost_model=CostModel.from_ratio(100))
    return index_list, meter


class TestSortedCursor:
    def test_initial_state(self, setup):
        index_list, meter = setup
        cursor = SortedCursor(index_list, meter)
        assert cursor.position == 0
        assert cursor.high == 1.0
        assert not cursor.exhausted
        assert cursor.blocks_remaining == 3
        assert cursor.list_length == 10

    def test_read_charges_per_entry(self, setup):
        index_list, meter = setup
        cursor = SortedCursor(index_list, meter)
        docs, scores = cursor.read_next_blocks(1)
        assert docs.size == 4
        assert meter.sorted_accesses == 4
        assert cursor.position == 4

    def test_high_tracks_position(self, setup):
        index_list, meter = setup
        cursor = SortedCursor(index_list, meter)
        cursor.read_next_blocks(1)
        assert cursor.high == pytest.approx(index_list.score_at_rank(4))

    def test_read_past_end_truncates(self, setup):
        index_list, meter = setup
        cursor = SortedCursor(index_list, meter)
        docs, _ = cursor.read_next_blocks(10)
        assert docs.size == 10
        assert cursor.exhausted
        assert cursor.high == 0.0
        # Further reads deliver nothing and charge nothing.
        docs, _ = cursor.read_next_blocks(1)
        assert docs.size == 0
        assert meter.sorted_accesses == 10

    def test_read_zero_blocks(self, setup):
        index_list, meter = setup
        cursor = SortedCursor(index_list, meter)
        docs, scores = cursor.read_next_blocks(0)
        assert docs.size == 0 and scores.size == 0
        assert meter.sorted_accesses == 0

    def test_negative_blocks_rejected(self, setup):
        index_list, meter = setup
        cursor = SortedCursor(index_list, meter)
        with pytest.raises(ValueError):
            cursor.read_next_blocks(-1)

    def test_blocks_docid_sorted_per_block(self, setup):
        index_list, meter = setup
        cursor = SortedCursor(index_list, meter)
        docs, _ = cursor.read_next_blocks(1)
        assert list(docs) == sorted(docs)

    def test_peek_does_not_charge(self, setup):
        index_list, meter = setup
        cursor = SortedCursor(index_list, meter)
        value = cursor.peek_high_after(4)
        assert value == pytest.approx(index_list.score_at_rank(4))
        assert meter.sorted_accesses == 0

    def test_batched_read_matches_per_block_loop(self, setup):
        """The contiguous fast path delivers the per-block concatenation.

        Same entries, same order, same charges, same cursor geometry —
        for every (start position, read width) combination of the list.
        """
        index_list, _ = setup
        for lead in range(index_list.num_blocks + 1):
            for width in range(index_list.num_blocks - lead + 2):
                fast_meter = AccessMeter(cost_model=CostModel.from_ratio(100))
                fast = SortedCursor(index_list, fast_meter)
                assert fast._supports_batch
                slow_meter = AccessMeter(cost_model=CostModel.from_ratio(100))
                slow = SortedCursor(index_list, slow_meter)
                slow._supports_batch = False
                for cursor in (fast, slow):
                    cursor.read_next_blocks(lead)
                got = fast.read_next_blocks(width)
                want = slow.read_next_blocks(width)
                np.testing.assert_array_equal(got[0], want[0])
                np.testing.assert_array_equal(got[1], want[1])
                assert fast.position == slow.position
                assert fast.blocks_read == slow.blocks_read
                assert fast.high == slow.high
                assert (
                    fast_meter.sorted_accesses == slow_meter.sorted_accesses
                )

    def test_faulty_lists_take_the_resilient_path(self, setup):
        """The fast path must not bypass the fault-injection wrapper.

        ``FaultyIndexList`` forwards unknown attributes to the wrapped
        list, so a duck-typed capability probe would reach the *plain*
        ``read_block_range`` and skip every injected fault; the cursor
        must detect the wrapper and fall back to per-block reads.
        """
        index_list, meter = setup
        faulty = FaultyIndexList(index_list, FaultInjector(FaultPlan()))
        cursor = SortedCursor(faulty, meter)
        assert not cursor._supports_batch
        docs, scores = cursor.read_next_blocks(2)
        assert docs.size == 8
        assert meter.sorted_accesses == 8


class TestRandomAccessor:
    def test_probe_present(self, setup):
        index_list, meter = setup
        accessor = RandomAccessor(index_list, meter)
        assert accessor.probe(0) == pytest.approx(1.0)
        assert meter.random_accesses == 1
        assert accessor.probes == 1

    def test_probe_absent_returns_zero_and_charges(self, setup):
        index_list, meter = setup
        accessor = RandomAccessor(index_list, meter)
        assert accessor.probe(999) == 0.0
        assert meter.random_accesses == 1

    def test_cost_combines_both_access_kinds(self, setup):
        index_list, meter = setup
        cursor = SortedCursor(index_list, meter)
        accessor = RandomAccessor(index_list, meter)
        cursor.read_next_blocks(1)
        accessor.probe(0)
        assert meter.cost == 4 + 100.0
