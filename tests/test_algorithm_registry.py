"""Algorithm registry: names, aliases, error paths, factory semantics."""

import pytest

import repro.core.algorithms as algorithms_module
from repro.core.algorithms import (
    available_algorithms,
    canonical_name,
    make_policies,
)
from repro.core.session import QuerySession
from tests.helpers import make_random_index

ALIASES = {
    "NRA": "RR-Never",
    "TA": "RR-All",
    "CA": "RR-Each-Best",
    "Upper": "RR-Top-Best",
    "Pick": "RR-Pick-Best",
}


class TestCanonicalName:
    def test_canonical_names_resolve_to_themselves(self):
        for name in available_algorithms():
            assert canonical_name(name) == name

    @pytest.mark.parametrize("alias,resolved", sorted(ALIASES.items()))
    def test_aliases(self, alias, resolved):
        assert canonical_name(alias) == resolved
        # Aliases are case-insensitive.
        assert canonical_name(alias.lower()) == resolved

    @pytest.mark.parametrize(
        "bad",
        ["", "RR", "Never", "RR-Bogus", "XX-All", "RR_All", "ta-all"],
    )
    def test_unknown_names_rejected(self, bad):
        with pytest.raises(ValueError, match="unknown algorithm"):
            canonical_name(bad)

    def test_error_message_lists_the_valid_choices(self):
        with pytest.raises(ValueError) as excinfo:
            canonical_name("RR-Bogus")
        message = str(excinfo.value)
        assert "KSR-Last-Ben" in message
        assert "NRA" in message


class TestRegistryShape:
    def test_full_cross_product(self):
        names = available_algorithms()
        assert len(names) == 24
        assert len(set(names)) == 24
        for sa in ("RR", "KSR", "KBA"):
            for ra in ("Never", "All", "Each-Best", "Top-Best",
                       "Pick-Best", "Pick-Ben", "Last-Best", "Last-Ben"):
                assert "%s-%s" % (sa, ra) in names

    def test_pick_ben_is_registered_and_documented(self):
        # RR-Pick-Ben sits in the factory table; the module docstring's
        # taxonomy must mention it too.
        assert "RR-Pick-Ben" in available_algorithms()
        assert "RR-Pick-Ben" in algorithms_module.__doc__

    def test_pick_ben_runs(self):
        index, terms = make_random_index(seed=42)
        session = QuerySession(index, cost_ratio=100.0)
        result = session.run(terms, 10, algorithm="RR-Pick-Ben")
        best = session.run(terms, 10, algorithm="RR-Pick-Best")
        assert result.doc_ids == best.doc_ids
        assert result.stats.cost > 0


class TestMakePolicies:
    def test_returns_resolved_name(self):
        sa, ra, resolved = make_policies("TA")
        assert resolved == "RR-All"

    def test_fresh_instances_every_call(self):
        # Policies carry per-query state; reusing an instance across
        # queries would leak bookkeeping between executions.
        for name in available_algorithms():
            sa1, ra1, _ = make_policies(name)
            sa2, ra2, _ = make_policies(name)
            assert sa1 is not sa2, name
            assert ra1 is not ra2, name
            assert type(sa1) is type(sa2)
            assert type(ra1) is type(ra2)

    def test_policy_names_align_with_the_algorithm_name(self):
        # The SA policy's name is the scheduling prefix; the RA policy's
        # name is the first component of the probing scheme (the ordering
        # suffix -Best/-Ben lives in the ordering object, not the policy).
        for name in available_algorithms():
            sa, ra, resolved = make_policies(name)
            prefix, _, ra_scheme = resolved.partition("-")
            assert sa.name == prefix
            assert ra_scheme.startswith(ra.name) or ra.name == "Ben"
