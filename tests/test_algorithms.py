"""Unit tests for the algorithm registry and the processor facade."""

import pytest

from repro.core.algorithms import (
    TopKProcessor,
    available_algorithms,
    canonical_name,
    make_policies,
    run_query,
)
from repro.core.sa.kba import KnapsackBenefitAggregation
from repro.core.sa.ksr import KnapsackScoreReduction
from repro.core.sa.round_robin import RoundRobin



class TestCanonicalName:
    @pytest.mark.parametrize("alias,expected", [
        ("NRA", "RR-Never"),
        ("nra", "RR-Never"),
        ("TA", "RR-All"),
        ("CA", "RR-Each-Best"),
        ("Upper", "RR-Top-Best"),
        ("Pick", "RR-Pick-Best"),
    ])
    def test_aliases(self, alias, expected):
        assert canonical_name(alias) == expected

    def test_canonical_passthrough(self):
        assert canonical_name("KSR-Last-Ben") == "KSR-Last-Ben"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            canonical_name("FooBar")
        with pytest.raises(ValueError):
            canonical_name("RR-Quux")

    def test_registry_is_consistent(self):
        for name in available_algorithms():
            assert canonical_name(name) == name

    def test_paper_triples_present(self):
        names = set(available_algorithms())
        for required in [
            "RR-Never", "RR-All", "RR-Each-Best", "RR-Top-Best",
            "RR-Pick-Best", "RR-Last-Best", "RR-Last-Ben",
            "KSR-Last-Best", "KSR-Last-Ben",
            "KBA-Last-Best", "KBA-Last-Ben",
        ]:
            assert required in names


class TestMakePolicies:
    def test_sa_policy_classes(self):
        assert isinstance(make_policies("RR-Never")[0], RoundRobin)
        assert isinstance(
            make_policies("KSR-Last-Ben")[0], KnapsackScoreReduction
        )
        assert isinstance(
            make_policies("KBA-Last-Ben")[0], KnapsackBenefitAggregation
        )

    def test_fresh_instances_per_call(self):
        first = make_policies("KSR-Last-Ben")
        second = make_policies("KSR-Last-Ben")
        assert first[0] is not second[0]
        assert first[1] is not second[1]

    def test_returns_canonical_name(self):
        assert make_policies("TA")[2] == "RR-All"


class TestTopKProcessor:
    def test_query_and_full_merge(self, small_index):
        index, terms = small_index
        processor = TopKProcessor(index, cost_ratio=100)
        result = processor.query(terms, 5)
        merged = processor.full_merge(terms, 5)
        assert len(result.items) == 5
        assert len(merged.items) == 5
        assert merged.stats.sorted_accesses == sum(
            len(index.list_for(t)) for t in terms
        )

    def test_lower_bound_below_everything(self, small_index):
        index, terms = small_index
        processor = TopKProcessor(index, cost_ratio=100)
        bound = processor.lower_bound(terms, 5)
        for algorithm in ("NRA", "CA", "KSR-Last-Ben"):
            cost = processor.query(terms, 5, algorithm=algorithm).stats.cost
            assert bound <= cost + 1e-6

    def test_algorithm_name_recorded(self, small_index):
        index, terms = small_index
        processor = TopKProcessor(index)
        assert processor.query(terms, 3, algorithm="TA").algorithm == "RR-All"

    def test_run_query_one_shot(self, small_index):
        index, terms = small_index
        result = run_query(index, terms, 4, algorithm="NRA", cost_ratio=10)
        assert len(result.items) == 4
        assert result.stats.cost > 0
