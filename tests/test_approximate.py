"""Tests for approximate processing with probabilistic pruning (Sec. 7)."""

import numpy as np
import pytest

from repro.core.algorithms import TopKProcessor

from tests.helpers import make_random_index, oracle_scores, true_score


def precision_at_k(index, terms, k, result):
    """Fraction of returned docs whose true score makes the exact top-k."""
    expected = oracle_scores(index, terms, k)
    if not expected:
        return 1.0
    cut = expected[-1]
    hits = sum(
        1 for doc in result.doc_ids
        if true_score(index, terms, doc) >= cut - 1e-9
    )
    return hits / len(expected)


class TestApproximatePruning:
    def test_epsilon_zero_is_exact(self, small_index):
        index, terms = small_index
        processor = TopKProcessor(index, cost_ratio=100)
        exact = processor.query(terms, 10, algorithm="NRA")
        also_exact = processor.query(
            terms, 10, algorithm="NRA", prune_epsilon=0.0
        )
        assert exact.doc_ids == also_exact.doc_ids
        assert exact.stats.cost == also_exact.stats.cost

    @pytest.mark.parametrize("algorithm", ["NRA", "RR-Last-Best",
                                           "KSR-Last-Ben"])
    def test_pruning_cost_stays_in_range(self, algorithm, small_index):
        # Pruning usually reduces cost, but dropping a future top-k member
        # can lower min-k and delay termination slightly; costs must stay
        # within a modest factor of the exact run either way.
        index, terms = small_index
        processor = TopKProcessor(index, cost_ratio=100)
        exact = processor.query(terms, 10, algorithm=algorithm)
        approx = processor.query(
            terms, 10, algorithm=algorithm, prune_epsilon=0.2
        )
        assert approx.stats.cost <= exact.stats.cost * 1.5 + 1e-9

    def test_small_epsilon_keeps_high_precision(self):
        index, terms = make_random_index(
            num_lists=3, list_length=800, num_docs=2500, seed=51
        )
        processor = TopKProcessor(index, cost_ratio=100)
        precisions = []
        for seed_k in (5, 10, 20):
            result = processor.query(
                terms, seed_k, algorithm="NRA", prune_epsilon=0.01
            )
            precisions.append(
                precision_at_k(index, terms, seed_k, result)
            )
        assert np.mean(precisions) >= 0.8

    def test_aggressive_epsilon_cuts_cost(self):
        index, terms = make_random_index(
            num_lists=3, list_length=800, num_docs=2500, seed=51
        )
        processor = TopKProcessor(index, cost_ratio=100)
        exact = processor.query(terms, 20, algorithm="NRA")
        approx = processor.query(
            terms, 20, algorithm="NRA", prune_epsilon=0.6
        )
        assert approx.stats.cost < exact.stats.cost

    def test_returns_k_items(self, small_index):
        index, terms = small_index
        processor = TopKProcessor(index, cost_ratio=100)
        result = processor.query(
            terms, 10, algorithm="NRA", prune_epsilon=0.1
        )
        assert len(result.items) == 10

    def test_prune_counts_reported(self, small_index):
        index, terms = small_index
        from repro.core.engine import QueryState
        from repro.stats.catalog import StatsCatalog
        from repro.storage.diskmodel import CostModel

        state = QueryState(
            index, StatsCatalog(index), terms, 5, CostModel.from_ratio(100)
        )
        # No min-k yet: nothing can be pruned probabilistically.
        assert state.probabilistic_prune(0.5) == 0
        state.perform_sorted_round([2, 2, 2])
        dropped = state.probabilistic_prune(0.9)
        assert dropped >= 0
        assert state.probabilistic_prune(0.0) == 0
