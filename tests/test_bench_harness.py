"""Unit tests for the experiment harness (small scales only)."""

import pytest

from repro.bench.experiments import ALL_EXPERIMENTS, run_experiment
from repro.bench.harness import Aggregate, ExperimentTable, Harness


@pytest.fixture(scope="module")
def harness():
    return Harness(scale=0.05, num_queries=2)


class TestHarness:
    def test_run_algorithm(self, harness):
        agg = harness.run("uniform", "NRA", 5, 100.0)
        assert isinstance(agg, Aggregate)
        assert agg.cost > 0
        assert agg.random_accesses == 0
        assert agg.queries == 2

    def test_run_full_merge(self, harness):
        agg = harness.run("uniform", "FullMerge", 5, 100.0)
        dataset = harness.dataset("uniform")
        expected = sum(
            len(dataset.index.list_for(t)) for t in dataset.queries[0]
        )
        # Both queries have equal-length lists by construction.
        assert agg.cost == pytest.approx(expected, rel=0.1)

    def test_run_lower_bound(self, harness):
        bound = harness.run("uniform", "LowerBound", 5, 100.0)
        nra = harness.run("uniform", "NRA", 5, 100.0)
        # At this tiny scale every list fits in one block, so the cell
        # relaxation may legitimately bottom out at 0.
        assert 0 <= bound.cost <= nra.cost + 1e-6

    def test_processor_cached_per_ratio(self, harness):
        a = harness.processor("uniform", 100.0)
        b = harness.processor("uniform", 100.0)
        c = harness.processor("uniform", 1000.0)
        assert a is b
        assert a is not c
        assert a.stats is c.stats  # statistics shared across ratios

    def test_cost_table_layout(self, harness):
        table = harness.cost_table(
            "T", "test", "uniform", ["NRA", "FullMerge"], [2, 5], 100.0
        )
        assert table.columns == ["method", "k=2", "k=5"]
        assert len(table.rows) == 2
        assert table.rows[0][0] == "NRA"
        float(table.rows[0][1])  # parseable numbers


class TestExperimentTable:
    def test_render_contains_everything(self):
        table = ExperimentTable(
            "E0", "demo", ["method", "k=1"], [["NRA", "42"]], notes="hello"
        )
        text = table.render()
        assert "E0" in text and "demo" in text
        assert "NRA" in text and "42" in text
        assert "hello" in text


class TestExperiments:
    def test_registry_covers_the_paper(self):
        paper = {"e%d" % n for n in range(1, 11)}
        extensions = {"e11", "e12", "e13", "e14"}
        assert set(ALL_EXPERIMENTS) == paper | extensions

    def test_unknown_experiment(self, harness):
        with pytest.raises(ValueError):
            run_experiment("e99", harness)

    @pytest.mark.parametrize("name", ["e6", "e10"])
    def test_experiments_run_at_small_scale(self, harness, name):
        tables = run_experiment(name, harness)
        assert tables
        for table in tables:
            assert table.rows
            assert table.render()
