"""Unit tests for the smoke benchmark's regression gate.

The heavy paths (corpus build, per-family runs) are exercised by CI's
benchmark step itself; here we pin the gate logic that decides whether
a PR fails — it must catch real cost regressions and must not flap on
wall-clock noise unless explicitly asked to gate wall time.
"""

import copy

from repro.bench.smoke import (
    FAMILIES,
    REGRESSION_TOLERANCE,
    SPEEDUP_FAMILIES,
    compare_to_baseline,
)


def _report(cost=100.0, wall=10.0):
    return {
        "families": {
            family: {"cost": cost, "wall_ms": wall}
            for family in ("NRA", "TA")
        }
    }


class TestCompareToBaseline:
    def test_identical_reports_pass(self):
        report = _report()
        assert compare_to_baseline(report, copy.deepcopy(report)) == []

    def test_growth_within_tolerance_passes(self):
        baseline = _report(cost=100.0)
        current = _report(cost=100.0 * (1.0 + REGRESSION_TOLERANCE))
        assert compare_to_baseline(current, baseline) == []

    def test_cost_regression_fails_every_family(self):
        baseline = _report(cost=100.0)
        current = _report(cost=126.0)
        failures = compare_to_baseline(current, baseline)
        assert len(failures) == 2
        assert all("cost regressed" in f for f in failures)

    def test_wall_clock_not_gated_by_default(self):
        baseline = _report(wall=10.0)
        current = _report(wall=1000.0)
        assert compare_to_baseline(current, baseline) == []

    def test_wall_clock_gated_on_request(self):
        baseline = _report(wall=10.0)
        current = _report(wall=1000.0)
        failures = compare_to_baseline(current, baseline, gate_wall=True)
        assert len(failures) == 2
        assert all("wall_ms regressed" in f for f in failures)

    def test_cost_improvement_passes_wall_gate(self):
        baseline = _report(cost=100.0, wall=10.0)
        current = _report(cost=50.0, wall=5.0)
        assert compare_to_baseline(current, baseline, gate_wall=True) == []

    def test_missing_family_is_a_failure(self):
        baseline = _report()
        current = copy.deepcopy(baseline)
        del current["families"]["TA"]
        failures = compare_to_baseline(current, baseline)
        assert failures == ["family TA missing from current run"]

    def test_empty_baseline_passes(self):
        assert compare_to_baseline(_report(), {}) == []


def test_speedup_families_are_registered():
    for family in SPEEDUP_FAMILIES:
        assert family in FAMILIES
