"""Unit and property tests for the inverted block-index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.block_index import IndexList, InvertedBlockIndex
from repro.storage.index_builder import build_index


def make_list(scores_by_doc, block_size=4, term="t"):
    docs = list(scores_by_doc)
    scores = [scores_by_doc[d] for d in docs]
    return IndexList(term, docs, scores, block_size=block_size)


class TestIndexListConstruction:
    def test_basic_length_and_blocks(self):
        lst = make_list({1: 0.5, 2: 0.9, 3: 0.1}, block_size=2)
        assert len(lst) == 3
        assert lst.num_blocks == 2
        assert lst.block_bounds(0) == (0, 2)
        assert lst.block_bounds(1) == (2, 3)

    def test_empty_list(self):
        lst = make_list({})
        assert len(lst) == 0
        assert lst.num_blocks == 0
        assert lst.score_at_rank(0) == 0.0

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            IndexList("t", [1, 1], [0.5, 0.6])

    def test_rejects_negative_scores(self):
        with pytest.raises(ValueError):
            IndexList("t", [1, 2], [0.5, -0.1])

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            IndexList("t", [1], [0.5], block_size=0)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            IndexList("t", [1, 2], [0.5])

    def test_rank_order_is_score_descending(self):
        lst = make_list({1: 0.5, 2: 0.9, 3: 0.1, 4: 0.7})
        assert list(lst.scores_by_rank) == [0.9, 0.7, 0.5, 0.1]
        assert list(lst.doc_ids_by_rank) == [2, 4, 1, 3]

    def test_score_ties_break_by_doc_id(self):
        lst = make_list({5: 0.5, 2: 0.5, 9: 0.5})
        assert list(lst.doc_ids_by_rank) == [2, 5, 9]


class TestBlockLayout:
    def test_blocks_docid_sorted_within(self):
        lst = make_list(
            {i: s for i, s in zip(range(10), [0.9, 0.1, 0.8, 0.2, 0.7,
                                              0.3, 0.6, 0.4, 0.5, 0.05])},
            block_size=4,
        )
        for block in range(lst.num_blocks):
            docs, _ = lst.read_block(block)
            assert list(docs) == sorted(docs)

    def test_blocks_score_descending_across(self):
        rng = np.random.default_rng(1)
        lst = IndexList("t", np.arange(100), rng.random(100), block_size=8)
        previous_min = float("inf")
        for block in range(lst.num_blocks):
            _, scores = lst.read_block(block)
            assert scores.max() <= previous_min + 1e-12
            previous_min = scores.min()

    def test_block_read_pairs_scores_with_docs(self):
        mapping = {7: 0.9, 3: 0.8, 11: 0.7, 5: 0.6}
        lst = make_list(mapping, block_size=2)
        for block in range(lst.num_blocks):
            docs, scores = lst.read_block(block)
            for d, s in zip(docs, scores):
                assert mapping[int(d)] == pytest.approx(float(s))

    def test_block_bounds_out_of_range(self):
        lst = make_list({1: 0.5})
        with pytest.raises(IndexError):
            lst.block_bounds(1)
        with pytest.raises(IndexError):
            lst.block_bounds(-1)

    def test_block_range_equals_block_concatenation(self):
        rng = np.random.default_rng(2)
        lst = IndexList("t", np.arange(30), rng.random(30), block_size=8)
        for start in range(lst.num_blocks + 1):
            for stop in range(start, lst.num_blocks + 2):
                docs, scores = lst.read_block_range(start, stop)
                parts = [
                    lst.read_block(b)
                    for b in range(start, min(stop, lst.num_blocks))
                ]
                want_docs = (
                    np.concatenate([p[0] for p in parts])
                    if parts
                    else np.empty(0, dtype=np.int64)
                )
                want_scores = (
                    np.concatenate([p[1] for p in parts])
                    if parts
                    else np.empty(0, dtype=np.float64)
                )
                np.testing.assert_array_equal(docs, want_docs)
                np.testing.assert_array_equal(scores, want_scores)

    def test_block_range_rejects_negative_start(self):
        lst = make_list({1: 0.5})
        with pytest.raises(IndexError):
            lst.read_block_range(-1, 1)


class TestScoreAtRank:
    def test_exact_values(self):
        lst = make_list({1: 0.9, 2: 0.5, 3: 0.1})
        assert lst.score_at_rank(0) == 0.9
        assert lst.score_at_rank(1) == 0.5
        assert lst.score_at_rank(2) == 0.1

    def test_past_end_is_zero(self):
        lst = make_list({1: 0.9})
        assert lst.score_at_rank(1) == 0.0
        assert lst.score_at_rank(10_000) == 0.0

    def test_negative_rank_rejected(self):
        lst = make_list({1: 0.9})
        with pytest.raises(IndexError):
            lst.score_at_rank(-1)


class TestLookup:
    def test_lookup_present_and_absent(self):
        lst = make_list({1: 0.9, 2: 0.5})
        assert lst.lookup(1) == 0.9
        assert lst.lookup(99) is None
        assert 1 in lst
        assert 99 not in lst

    def test_rank_of(self):
        lst = make_list({1: 0.9, 2: 0.5, 3: 0.7})
        assert lst.rank_of(1) == 0
        assert lst.rank_of(3) == 1
        assert lst.rank_of(2) == 2
        assert lst.rank_of(99) is None

    def test_rank_of_with_ties(self):
        lst = make_list({4: 0.5, 1: 0.5, 9: 0.5, 2: 0.8})
        for doc in (1, 2, 4, 9):
            rank = lst.rank_of(doc)
            assert int(lst.doc_ids_by_rank[rank]) == doc


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    st.integers(min_value=1, max_value=16),
)
def test_index_list_invariants(scores_by_doc, block_size):
    """Property: blocked layout preserves the posting multiset and order."""
    lst = IndexList(
        "t", list(scores_by_doc), list(scores_by_doc.values()),
        block_size=block_size,
    )
    # Rank order is non-increasing.
    assert all(
        lst.scores_by_rank[i] >= lst.scores_by_rank[i + 1]
        for i in range(len(lst) - 1)
    )
    # Reading all blocks returns exactly the original postings.
    seen = {}
    for block in range(lst.num_blocks):
        docs, scores = lst.read_block(block)
        assert list(docs) == sorted(docs)
        for d, s in zip(docs, scores):
            seen[int(d)] = float(s)
    assert seen == {
        d: pytest.approx(s) for d, s in scores_by_doc.items()
    }
    # score_at_rank matches the rank array inside the list.
    for rank in range(len(lst)):
        assert lst.score_at_rank(rank) == lst.scores_by_rank[rank]


class TestInvertedBlockIndex:
    def test_basic_access(self):
        index = build_index({"a": [(1, 0.5)], "b": [(2, 0.8)]}, num_docs=10)
        assert set(index.terms) == {"a", "b"}
        assert len(index) == 2
        assert "a" in index
        assert index.list_for("a").lookup(1) == 0.5
        assert [lst.term for lst in index.lists_for(["b", "a"])] == ["b", "a"]

    def test_unknown_term(self):
        index = build_index({"a": [(1, 0.5)]})
        with pytest.raises(KeyError):
            index.list_for("zzz")

    def test_rejects_bad_num_docs(self):
        with pytest.raises(ValueError):
            InvertedBlockIndex({}, num_docs=0)

    def test_iteration(self):
        index = build_index({"a": [(1, 0.5)], "b": [(2, 0.8)]})
        assert {lst.term for lst in index} == {"a", "b"}
