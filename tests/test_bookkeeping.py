"""Unit and property tests for the candidate bookkeeping (Sec. 2.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bookkeeping import CandidatePool


def make_pool(num_lists=3, k=2, highs=(1.0, 1.0, 1.0)):
    pool = CandidatePool(num_lists, k)
    pool.set_highs(highs)
    return pool


class TestAbsorbAndResolve:
    def test_absorb_creates_candidates(self):
        pool = make_pool()
        new = pool.absorb_postings(0, [1, 2], [0.9, 0.8])
        assert new == [1, 2]
        assert pool.candidates[1].worstscore == 0.9
        assert pool.candidates[1].seen_mask == 0b1

    def test_absorb_existing_does_not_report_new(self):
        pool = make_pool()
        pool.absorb_postings(0, [1], [0.9])
        new = pool.absorb_postings(1, [1], [0.5])
        assert new == []
        assert pool.candidates[1].worstscore == pytest.approx(1.4)
        assert pool.candidates[1].seen_mask == 0b11

    def test_absorb_skips_already_resolved_dimension(self):
        pool = make_pool()
        pool.resolve_dimension(1, 0, 0.7)
        pool.absorb_postings(0, [1], [0.7])
        assert pool.candidates[1].worstscore == pytest.approx(0.7)

    def test_resolve_dimension_idempotent(self):
        pool = make_pool()
        pool.resolve_dimension(5, 2, 0.3)
        pool.resolve_dimension(5, 2, 0.3)
        assert pool.candidates[5].worstscore == pytest.approx(0.3)

    def test_peak_size_tracked(self):
        pool = make_pool()
        pool.absorb_postings(0, [1, 2, 3], [0.9, 0.8, 0.7])
        assert pool.peak_size == 3


class TestBounds:
    def test_bestscore_adds_missing_highs(self):
        pool = make_pool(highs=(0.5, 0.4, 0.3))
        pool.absorb_postings(0, [1], [0.9])
        cand = pool.candidates[1]
        assert pool.bestscore(cand) == pytest.approx(0.9 + 0.4 + 0.3)

    def test_unseen_bestscore_is_sum_of_highs(self):
        pool = make_pool(highs=(0.5, 0.4, 0.3))
        assert pool.unseen_bestscore == pytest.approx(1.2)

    def test_missing_dims(self):
        pool = make_pool()
        pool.absorb_postings(1, [7], [0.5])
        assert pool.missing_dims(pool.candidates[7]) == [0, 2]

    def test_mask_cache_reset_on_new_highs(self):
        pool = make_pool(highs=(0.5, 0.4, 0.3))
        pool.absorb_postings(0, [1], [0.9])
        cand = pool.candidates[1]
        before = pool.bestscore(cand)
        pool.set_highs((0.1, 0.1, 0.1))
        after = pool.bestscore(cand)
        assert after == pytest.approx(0.9 + 0.2)
        assert after < before


class TestRecomputeAndPrune:
    def test_min_k_is_rank_k_worstscore(self):
        pool = make_pool(k=2)
        pool.absorb_postings(0, [1, 2, 3], [0.9, 0.8, 0.7])
        pool.recompute()
        assert pool.min_k == pytest.approx(0.8)
        assert pool.topk_ids == {1, 2}

    def test_min_k_zero_until_k_candidates(self):
        pool = make_pool(k=5)
        pool.absorb_postings(0, [1], [0.9])
        pool.recompute()
        assert pool.min_k == 0.0

    def test_prunes_hopeless_candidates(self):
        pool = make_pool(k=1, highs=(0.0, 0.05, 0.05))
        pool.absorb_postings(0, [1, 2], [0.9, 0.2])
        pool.recompute()
        # Candidate 2's bestscore 0.2 + 0.1 < min-k 0.9.
        assert 2 not in pool.candidates
        assert 1 in pool.candidates

    def test_keeps_candidates_that_could_still_win(self):
        pool = make_pool(k=1, highs=(0.0, 0.5, 0.5))
        pool.absorb_postings(0, [1, 2], [0.9, 0.2])
        pool.recompute()
        assert 2 in pool.candidates  # 0.2 + 1.0 > 0.9

    def test_queue_excludes_topk(self):
        pool = make_pool(k=1, highs=(0.0, 0.5, 0.5))
        pool.absorb_postings(0, [1, 2], [0.9, 0.2])
        pool.recompute()
        queue_ids = {c.doc_id for c in pool.queue()}
        assert queue_ids == {2}

    def test_topk_candidates_sorted(self):
        pool = make_pool(k=3)
        pool.absorb_postings(0, [1, 2, 3], [0.5, 0.9, 0.7])
        pool.recompute()
        assert [c.doc_id for c in pool.topk_candidates()] == [2, 3, 1]


class TestTermination:
    def test_not_terminated_with_unseen_potential(self):
        pool = make_pool(k=1, highs=(0.5, 0.5, 0.5))
        pool.absorb_postings(0, [1], [0.9])
        pool.recompute()
        assert not pool.is_terminated

    def test_terminated_when_unseen_and_queue_beaten(self):
        pool = make_pool(k=1, highs=(0.1, 0.1, 0.1))
        pool.absorb_postings(0, [1], [0.9])
        pool.recompute()
        assert pool.is_terminated

    def test_fewer_than_k_requires_exhaustion(self):
        pool = make_pool(k=5, highs=(0.2, 0.0, 0.0))
        pool.absorb_postings(0, [1], [0.9])
        pool.recompute()
        assert not pool.is_terminated
        pool.set_highs((0.0, 0.0, 0.0))
        assert pool.is_terminated


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            CandidatePool(0, 5)
        with pytest.raises(ValueError):
            CandidatePool(61, 5)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            CandidatePool(3, 0)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),       # dim
            st.integers(min_value=0, max_value=30),      # doc
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        ),
        min_size=1, max_size=60,
    ),
    st.integers(min_value=1, max_value=5),
)
def test_pruning_never_loses_the_true_topk(events, k):
    """Property: with exact highs, pruning keeps every final top-k doc.

    We replay a random stream of per-dimension observations in descending
    per-dimension score order (as real scans would) and verify that docs
    belonging to the true top-k are never pruned.
    """
    # Group by dim and sort descending to emulate sorted access order.
    streams = {dim: [] for dim in range(3)}
    seen_pairs = set()
    for dim, doc, score in events:
        if (dim, doc) in seen_pairs:
            continue
        seen_pairs.add((dim, doc))
        streams[dim].append((doc, score))
    for dim in streams:
        streams[dim].sort(key=lambda pair: -pair[1])

    totals = {}
    for dim, postings in streams.items():
        for doc, score in postings:
            totals[doc] = totals.get(doc, 0.0) + score
    true_topk_cut = sorted(totals.values(), reverse=True)[:k]
    threshold = true_topk_cut[-1] if len(true_topk_cut) >= k else 0.0

    pool = CandidatePool(3, k)
    positions = {dim: 0 for dim in range(3)}
    while any(positions[d] < len(streams[d]) for d in range(3)):
        for dim in range(3):
            if positions[dim] < len(streams[dim]):
                doc, score = streams[dim][positions[dim]]
                pool.absorb_postings(dim, [doc], [score])
                positions[dim] += 1
        highs = []
        for dim in range(3):
            pos = positions[dim]
            highs.append(
                streams[dim][pos][1] if pos < len(streams[dim]) else 0.0
            )
        pool.set_highs(highs)
        pool.recompute()
    # Every doc strictly above the cut must still be alive.
    for doc, total in totals.items():
        if total > threshold + 1e-9:
            assert doc in pool.candidates
