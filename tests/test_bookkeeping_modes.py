"""The bookkeeping-mode selector: precedence, plumbing, and surfacing.

The engine option (``QuerySession(bookkeeping=...)``), the
:func:`bookkeeping_mode` context, and the ``REPRO_BOOKKEEPING_MODE``
environment variable must resolve in documented priority order; the
resolved mode must be visible in ``RoundTrace.bookkeeping`` (without
leaking into the mode-independent trace strings) and in the query
service's ``/metrics`` body.
"""

import pytest

from repro.core.bookkeeping import (
    BOOKKEEPING_MODE_ENV,
    BOOKKEEPING_MODES,
    CandidatePool,
    bookkeeping_mode,
    make_pool,
    reference_pools,
    resolve_bookkeeping_mode,
)
from repro.core.columnar import ColumnarPool
from repro.core.session import QuerySession
from repro.serve.service import QueryService, ServiceConfig

from tests.helpers import make_random_index


class TestResolution:
    def test_default_is_columnar(self, monkeypatch):
        monkeypatch.delenv(BOOKKEEPING_MODE_ENV, raising=False)
        assert resolve_bookkeeping_mode() == "columnar"

    def test_explicit_argument_wins_over_everything(self, monkeypatch):
        monkeypatch.setenv(BOOKKEEPING_MODE_ENV, "reference")
        with bookkeeping_mode("incremental"):
            assert resolve_bookkeeping_mode("columnar") == "columnar"

    def test_context_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BOOKKEEPING_MODE_ENV, "reference")
        with bookkeeping_mode("incremental"):
            assert resolve_bookkeeping_mode() == "incremental"
        assert resolve_bookkeeping_mode() == "reference"

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(BOOKKEEPING_MODE_ENV, "incremental")
        assert resolve_bookkeeping_mode() == "incremental"

    def test_unknown_modes_are_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown bookkeeping mode"):
            resolve_bookkeeping_mode("heap-of-heaps")
        monkeypatch.setenv(BOOKKEEPING_MODE_ENV, "heap-of-heaps")
        with pytest.raises(ValueError, match="unknown bookkeeping mode"):
            resolve_bookkeeping_mode()
        with pytest.raises(ValueError):
            with bookkeeping_mode("heap-of-heaps"):
                pass  # pragma: no cover - the context must not enter

    def test_make_pool_constructs_every_mode(self):
        columnar = make_pool(3, 5, "columnar")
        incremental = make_pool(3, 5, "incremental")
        reference = make_pool(3, 5, "reference")
        assert isinstance(columnar, ColumnarPool)
        assert isinstance(incremental, CandidatePool)
        assert isinstance(reference, CandidatePool)
        assert [p.mode for p in (columnar, incremental, reference)] == [
            "columnar", "incremental", "reference",
        ]
        assert set(BOOKKEEPING_MODES) == {
            "columnar", "incremental", "reference",
        }

    def test_reference_pools_is_the_reference_context(self):
        with reference_pools():
            assert resolve_bookkeeping_mode() == "reference"
            assert make_pool(2, 3).mode == "reference"


@pytest.fixture(scope="module")
def corpus():
    return make_random_index(seed=42)


class TestSurfacing:
    @pytest.mark.parametrize("mode", BOOKKEEPING_MODES)
    def test_trace_reports_the_mode(self, corpus, mode):
        index, terms = corpus
        session = QuerySession(index, cost_ratio=100.0, bookkeeping=mode)
        result = session.run(terms, 5, algorithm="RR-Never", trace=True)
        assert result.trace
        assert all(r.bookkeeping == mode for r in result.trace)
        # The mode never leaks into the mode-independent trace strings.
        assert all(mode not in str(r) for r in result.trace)

    def test_env_override_reaches_the_engine(self, corpus, monkeypatch):
        monkeypatch.setenv(BOOKKEEPING_MODE_ENV, "incremental")
        index, terms = corpus
        session = QuerySession(index, cost_ratio=100.0)
        result = session.run(terms, 5, algorithm="RR-Never", trace=True)
        assert all(r.bookkeeping == "incremental" for r in result.trace)

    def test_metrics_expose_the_resolved_mode(self, corpus):
        index, terms = corpus
        session = QuerySession(index, cost_ratio=100.0,
                               bookkeeping="incremental")
        service = QueryService(session, ServiceConfig())
        body = service._metrics_body()
        assert body["engine"]["bookkeeping_mode"] == "incremental"

    def test_metrics_default_mode(self, corpus, monkeypatch):
        monkeypatch.delenv(BOOKKEEPING_MODE_ENV, raising=False)
        index, terms = corpus
        service = QueryService(
            QuerySession(index, cost_ratio=100.0), ServiceConfig()
        )
        assert (
            service._metrics_body()["engine"]["bookkeeping_mode"]
            == "columnar"
        )
