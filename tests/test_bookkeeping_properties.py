"""Property-based tests for the fast candidate bookkeeping modes.

Hypothesis drives random operation scripts (absorb / resolve / drop /
revive / set_highs / recompute) against two pools at once — a fast one
(the incremental per-object pool or the columnar struct-of-arrays pool)
and the full-recompute reference — and requires every observable to
stay identical step for step.  On top of the differential
oracle, the scripts check the structural invariants the incremental
machinery relies on:

* ``worstscore <= bestscore`` for every candidate, always,
* after ``recompute`` the top-k equals a brute-force sort by
  ``(worstscore, -doc_id)`` over the surviving candidates,
* ``is_terminated`` never flips back to False under the engine's
  monotone regime (highs non-increasing),
* the cached ``queue()`` / ``unresolved()`` / ``topk_candidates()``
  views are stable objects between mutations and correct after them,
* the maintained per-mask candidate counts match a recount.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bookkeeping import CandidatePool, make_pool
from repro.core.sa.knapsack import MemoizedAllocator, allocate_budget

#: The fast bookkeeping modes checked against the full-recompute oracle.
FAST_MODES = ("incremental", "columnar")

SCORES = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
DOC_IDS = st.integers(min_value=0, max_value=24)


@st.composite
def op_sequences(draw, monotone_highs=False):
    """A pool geometry plus a script of bookkeeping operations.

    With ``monotone_highs`` the script follows the engine's regime: the
    ``set_highs`` vectors are non-increasing per dimension (scan
    positions only advance) and every absorbed or resolved score is at
    most the dimension's current high (lists are score-descending, so
    everything below the scan position is bounded by it).  Without it,
    raised highs and over-high scores exercise the paths that must stay
    correct — and reference-identical — under arbitrary API use.
    """
    num_lists = draw(st.integers(1, 4))
    k = draw(st.integers(1, 5))
    current_highs = [1.0] * num_lists
    ops = [("set_highs", tuple(current_highs))]

    def score_for(dim):
        if monotone_highs:
            return draw(
                st.floats(0.0, current_highs[dim], allow_nan=False)
            )
        return draw(SCORES)

    for _ in range(draw(st.integers(1, 30))):
        kind = draw(
            st.sampled_from(
                ["absorb", "absorb", "resolve", "set_highs",
                 "recompute", "drop", "revive", "terminated"]
            )
        )
        if kind == "absorb":
            dim = draw(st.integers(0, num_lists - 1))
            batch = [
                (doc, score_for(dim))
                for doc in draw(st.lists(DOC_IDS, max_size=6))
            ]
            ops.append(("absorb", dim, batch))
        elif kind == "resolve":
            dim = draw(st.integers(0, num_lists - 1))
            ops.append(
                ("resolve", draw(DOC_IDS), dim, score_for(dim))
            )
        elif kind == "set_highs":
            if monotone_highs:
                current_highs = [
                    draw(st.floats(0.0, h, allow_nan=False))
                    for h in current_highs
                ]
                ops.append(("set_highs", tuple(current_highs)))
            else:
                ops.append(
                    (
                        "set_highs",
                        tuple(
                            draw(SCORES) for _ in range(num_lists)
                        ),
                    )
                )
        elif kind == "drop":
            ops.append(("drop", draw(DOC_IDS)))
        elif kind == "revive":
            ops.append(("revive", draw(DOC_IDS)))
        else:
            ops.append((kind,))
    ops.append(("recompute",))
    return num_lists, k, ops


def _apply(pool, op):
    if op[0] == "absorb":
        _, dim, batch = op
        pool.absorb_postings(
            dim, [d for d, _ in batch], [s for _, s in batch]
        )
    elif op[0] == "resolve":
        pool.resolve_dimension(op[1], op[2], op[3])
    elif op[0] == "set_highs":
        pool.set_highs(op[1])
    elif op[0] == "recompute":
        pool.recompute()
    elif op[0] == "drop":
        pool.drop(op[1])
    elif op[0] == "revive":
        pool.revive(op[1])
    elif op[0] == "terminated":
        pool.is_terminated


def _snapshot(pool):
    return (
        list(pool.candidates),
        [
            (c.doc_id, c.worstscore, c.seen_mask)
            for c in pool.candidates.values()
        ],
        pool.min_k,
        pool.topk_ids,
        [c.doc_id for c in pool.queue()],
        [c.doc_id for c in pool.unresolved()],
        [c.doc_id for c in pool.topk_candidates()],
        pool.is_terminated,
    )


def _brute_force_topk_ids(pool):
    top = heapq.nlargest(
        pool.k,
        pool.candidates.values(),
        key=lambda c: (c.worstscore, -c.doc_id),
    )
    return {c.doc_id for c in top}


@pytest.mark.parametrize("mode", FAST_MODES)
@settings(max_examples=150, deadline=None)
@given(op_sequences())
def test_fast_pool_matches_reference(mode, script):
    """Step-for-step observable equality with the reference oracle."""
    num_lists, k, ops = script
    fast = make_pool(num_lists, k, mode)
    reference = CandidatePool(num_lists, k, incremental=False)
    for op in ops:
        _apply(fast, op)
        _apply(reference, op)
        assert _snapshot(fast) == _snapshot(reference)
        # Structural invariants, on the fast pool.
        for cand in fast.candidates.values():
            assert fast.bestscore(cand) >= cand.worstscore
        recount = {}
        for cand in fast.candidates.values():
            recount[cand.seen_mask] = recount.get(cand.seen_mask, 0) + 1
        assert {
            m: c for m, c in fast.mask_counts.items() if c
        } == recount
        if op[0] == "recompute":
            assert fast.topk_ids == _brute_force_topk_ids(fast)


@pytest.mark.parametrize("mode", FAST_MODES)
@settings(max_examples=150, deadline=None)
@given(op_sequences(monotone_highs=True))
def test_terminated_never_flips_back_under_monotone_highs(mode, script):
    """Once terminated, always terminated — the engine's stop contract.

    Holds at the points the engine actually checks — after a
    ``recompute`` (the executor recomputes after every mutation batch
    before testing termination) — under the engine's regime:

    * highs non-increasing and delivered scores bounded by the current
      high (scan positions only advance over a score-descending list),
    * drops confined to queue members (pruning never removes a top-k
      member without replacing it),
    * no further index accesses once terminated (the round loop stops);
      only non-accessing operations — threshold refreshes, recomputes,
      queue pruning — may still run, e.g. during result assembly.

    The last restriction is essential, not cosmetic: an exact-score tie
    between a new document and the rank-k item can evict an unresolved
    top-k member into the queue with a bestscore above the threshold,
    legitimately un-terminating the query in *both* modes.  The
    differential test above pins the two modes to each other at every
    step regardless; this test is about the stop rule the executor
    relies on.
    """
    num_lists, k, ops = script
    pool = make_pool(num_lists, k, mode)
    reference = CandidatePool(num_lists, k, incremental=False)
    was_terminated = False
    for op in ops:
        if op[0] == "drop" and op[1] in pool.topk_ids:
            continue  # outside the engine's regime: would un-terminate
        if was_terminated and op[0] in ("absorb", "resolve", "revive"):
            continue  # the engine stops accessing once terminated
        _apply(pool, op)
        _apply(reference, op)
        if op[0] != "recompute":
            continue
        now = pool.is_terminated
        assert now == reference.is_terminated
        if was_terminated:
            assert now
        was_terminated = now


@pytest.mark.parametrize("mode", FAST_MODES)
@settings(max_examples=100, deadline=None)
@given(op_sequences())
def test_views_are_cached_until_mutation(mode, script):
    """Repeat view calls return the same object; mutations refresh it.

    The unified view contract (see :class:`CandidatePool`): every mode —
    object pools and the columnar struct-of-arrays pool alike — returns
    cached read-only lists from :meth:`queue` / :meth:`unresolved` /
    :meth:`topk_candidates` that stay identical between mutations.
    """
    num_lists, k, ops = script
    pool = make_pool(num_lists, k, mode)
    for op in ops:
        _apply(pool, op)
        queue = pool.queue()
        unresolved = pool.unresolved()
        topk = pool.topk_candidates()
        # Reads do not invalidate: identical objects on repeat calls.
        assert pool.queue() is queue
        assert pool.unresolved() is unresolved
        assert pool.topk_candidates() is topk
        assert pool.queue_size() == len(queue)
        # And the cached contents equal a fresh computation.
        assert [c.doc_id for c in queue] == [
            doc_id
            for doc_id in pool.candidates
            if doc_id not in pool.topk_ids
        ]
        assert [c.doc_id for c in unresolved] == [
            c.doc_id
            for c in pool.candidates.values()
            if c.seen_mask != pool.full_mask
        ]


GAIN_TABLES = st.lists(
    st.lists(SCORES, min_size=1, max_size=5),
    min_size=1,
    max_size=4,
)


@settings(max_examples=150, deadline=None)
@given(GAIN_TABLES, st.integers(0, 8))
def test_memoized_allocator_matches_direct_dp(gains, budget):
    allocator = MemoizedAllocator()
    direct = allocate_budget(gains, budget)
    first = allocator.allocate(gains, budget)
    second = allocator.allocate(gains, budget)
    assert first == direct
    assert second == direct
    assert allocator.misses == 1
    assert allocator.hits == 1
    # Cached results are defensive copies, not shared lists.
    first.append(-1)
    assert allocator.allocate(gains, budget) == direct


def test_memoized_allocator_evicts_lru():
    allocator = MemoizedAllocator(max_entries=2)
    a = [[0.0, 1.0]]
    b = [[0.0, 2.0]]
    c = [[0.0, 3.0]]
    allocator.allocate(a, 1)
    allocator.allocate(b, 1)
    allocator.allocate(a, 1)  # refresh a
    allocator.allocate(c, 1)  # evicts b
    assert allocator.hits == 1
    allocator.allocate(b, 1)  # must be a miss again
    assert allocator.misses == 4
