"""Smoke tests for the CLI entry point and the example scripts."""

import pathlib
import subprocess
import sys

import pytest

from repro.bench.__main__ import main

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestBenchCli:
    def test_runs_one_experiment_at_tiny_scale(self, capsys):
        exit_code = main(["--scale", "0.05", "--queries", "2", "e10"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "E10" in captured.out
        assert "RR-Last-Best" in captured.out

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["--scale", "0.05", "--queries", "1", "e99"])


class TestExamples:
    def test_quickstart_runs(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True, text=True, timeout=240,
        )
        assert completed.returncode == 0, completed.stderr
        assert "FullMerge oracle" in completed.stdout
        assert "doc17" in completed.stdout

    def test_explain_trace_runs(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES / "explain_trace.py")],
            capture_output=True, text=True, timeout=240,
        )
        assert completed.returncode == 0, completed.stderr
        assert "round 1" in completed.stdout
        assert "winner" in completed.stdout

    def test_all_examples_importable(self):
        # Full dataset examples are too slow for unit tests; at least
        # verify they compile.
        import py_compile

        for script in EXAMPLES.glob("*.py"):
            py_compile.compile(str(script), doraise=True)
