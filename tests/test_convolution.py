"""Unit and property tests for run-time histogram convolutions."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.convolution import (
    convolution_width,
    convolve_grids,
    exceedance,
    pmf_to_grid,
)


class TestPmfToGrid:
    def test_preserves_mass(self):
        values = np.array([0.05, 0.15, 0.25])
        probs = np.array([0.2, 0.3, 0.5])
        grid = pmf_to_grid(values, probs, width=0.1)
        assert grid.sum() == pytest.approx(1.0)

    def test_binning_by_floor(self):
        grid = pmf_to_grid(np.array([0.05, 0.19]), np.array([0.4, 0.6]), 0.1)
        assert grid[0] == pytest.approx(0.4)
        assert grid[1] == pytest.approx(0.6)

    def test_empty_pmf(self):
        grid = pmf_to_grid(np.empty(0), np.empty(0), 0.1)
        assert grid.tolist() == [0.0]

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            pmf_to_grid(np.array([0.1]), np.array([1.0]), 0.0)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            pmf_to_grid(np.array([0.1, 0.2]), np.array([1.0]), 0.1)


class TestConvolveGrids:
    def test_empty_sequence_is_point_mass(self):
        assert convolve_grids([]).tolist() == [1.0]

    def test_single_grid_unchanged(self):
        grid = np.array([0.25, 0.75])
        assert convolve_grids([grid]).tolist() == [0.25, 0.75]

    def test_two_dice(self):
        die = np.full(6, 1 / 6)
        total = convolve_grids([die, die])
        # P[sum of two cell indices = 7th cell] etc. — compare with direct
        # enumeration.
        expected = np.zeros(11)
        for a, b in itertools.product(range(6), repeat=2):
            expected[a + b] += 1 / 36
        assert np.allclose(total, expected)

    def test_mass_multiplies(self):
        g1 = np.array([0.5, 0.25])  # mass 0.75
        g2 = np.array([0.2, 0.2])   # mass 0.4
        total = convolve_grids([g1, g2])
        assert total.sum() == pytest.approx(0.75 * 0.4)


class TestExceedance:
    def test_midpoint_convention(self):
        grid = np.array([0.5, 0.5])  # values 0.05 and 0.15 at width 0.1
        assert exceedance(grid, 0.1, 0.0) == pytest.approx(1.0)
        assert exceedance(grid, 0.1, 0.10) == pytest.approx(0.5)
        assert exceedance(grid, 0.1, 0.20) == pytest.approx(0.0)

    def test_normalizes_by_grid_mass(self):
        grid = np.array([0.2, 0.2])  # mass 0.4
        assert exceedance(grid, 0.1, 0.10) == pytest.approx(0.5)

    def test_empty_grid(self):
        assert exceedance(np.zeros(3), 0.1, 0.0) == 0.0

    def test_monotone_in_threshold(self):
        rng = np.random.default_rng(2)
        grid = rng.random(20)
        values = [exceedance(grid, 0.05, t) for t in np.linspace(0, 1.2, 30)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


class TestConvolutionWidth:
    def test_uses_finest_requirement(self):
        width = convolution_width([1.0, 0.5], cells_per_dim=10)
        assert width == pytest.approx(0.05)

    def test_handles_empty(self):
        assert convolution_width([]) > 0
        assert convolution_width([0.0]) > 0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            ),
            min_size=1, max_size=4,
        ),
        min_size=1, max_size=3,
    ),
    st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
)
def test_exceedance_against_enumeration(dists, threshold):
    """Property: grid convolution approximates exact sum exceedance.

    Error is bounded by the total grid discretization (one cell per
    dimension on each side).
    """
    width = 0.05
    grids = []
    normalized = []
    for dist in dists:
        values = np.array([v for v, _ in dist])
        probs = np.array([p for _, p in dist])
        probs = probs / probs.sum()
        grids.append(pmf_to_grid(values, probs, width))
        normalized.append(list(zip(values, probs)))
    total = convolve_grids(grids)
    approx = exceedance(total, width, threshold)

    exact = 0.0
    for combo in itertools.product(*normalized):
        total_value = sum(v for v, _ in combo)
        prob = np.prod([p for _, p in combo])
        if total_value > threshold:
            exact += prob
    slack = len(dists) * width
    # Exceedance computed on the grid can differ only for combinations
    # whose sum lies within the discretization slack of the threshold.
    near_boundary = 0.0
    for combo in itertools.product(*normalized):
        total_value = sum(v for v, _ in combo)
        if abs(total_value - threshold) <= slack:
            near_boundary += np.prod([p for _, p in combo])
    assert abs(approx - exact) <= near_boundary + 1e-9
