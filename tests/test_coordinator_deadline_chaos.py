"""Chaos: the deadline expires *between* coordinator merge rounds.

Satellite of the serving PR.  A sharded query's deadline can run out
while the coordinator sits between rounds — after a merge, before the
next budget escalation.  The contract: the query returns a degraded but
well-formed result whose ``unfinished_shards`` names exactly the shards
that were still mid-scan, with ``degrade_reason == "deadline"`` and
every merged interval still containing the true score.

The wall-clock variant drives the coordinator with a fake clock (one
second per ``perf_counter()`` call, patched into the coordinator module
only — shards keep real time), so the expiry lands deterministically on
the between-rounds check rather than inside a shard.
"""

import types

import pytest

import repro.distrib.coordinator as coordinator_module
from repro.core.engine import QueryDeadline
from repro.core.results import DEGRADE_DEADLINE
from repro.distrib import MergeCoordinator, ShardExecutor, partition_index

from tests.helpers import make_random_index, true_score

K = 10
NUM_SHARDS = 4


class FakeClock:
    """Advances one ``step`` per call; deterministic wall time."""

    def __init__(self, start: float = 1.0, step: float = 1.0) -> None:
        self.now = start - step
        self.step = step
        self.calls = 0

    def perf_counter(self) -> float:
        self.calls += 1
        self.now += self.step
        return self.now


@pytest.fixture(scope="module")
def corpus():
    index, terms = make_random_index(seed=17)
    sharded = partition_index(index, NUM_SHARDS, strategy="hash")
    return index, terms, sharded


def check_well_formed(result, index, terms):
    assert len(result.items) <= K
    for item in result.items:
        truth = true_score(index, terms, item.doc_id)
        assert item.worstscore - 1e-9 <= truth <= item.bestscore + 1e-9


def test_wall_deadline_between_merge_rounds(monkeypatch, corpus):
    index, terms, sharded = corpus
    clock = FakeClock()
    monkeypatch.setattr(
        coordinator_module,
        "time",
        types.SimpleNamespace(perf_counter=clock.perf_counter),
    )
    # Small per-round budgets: every shard is paused (not finished) when
    # the coordinator's between-rounds wall check trips.  The fake clock
    # makes the round-1 check land past the wall: scheduling the four
    # shards consumes four ticks, the end-of-round check the fifth.
    coordinator = MergeCoordinator(
        ShardExecutor(sharded), round_budget=64.0
    )
    result = coordinator.query(
        terms,
        K,
        deadline=QueryDeadline(wall_clock_seconds=NUM_SHARDS + 0.5),
    )

    assert clock.calls >= NUM_SHARDS + 2  # the coordinator used our clock
    assert result.coordinator_rounds == 1
    assert result.degraded
    assert result.degrade_reason == DEGRADE_DEADLINE
    # The shards still active at the break are named — and only those:
    # no overlap with pruned or failed shards.
    assert result.unfinished_shards
    assert result.unfinished_shards == sorted(result.unfinished_shards)
    assert set(result.unfinished_shards) <= set(range(NUM_SHARDS))
    assert set(result.unfinished_shards).isdisjoint(result.pruned_shards)
    assert result.exhausted_shards == []
    assert result.exhausted_lists == []
    check_well_formed(result, index, terms)


def test_cost_budget_expires_at_coordinator_level(corpus):
    index, terms, sharded = corpus
    coordinator = MergeCoordinator(ShardExecutor(sharded))
    exact = coordinator.query(terms, K)
    assert not exact.degraded

    # A parent budget far below the exact cost: each shard's share is
    # spent in round one, so the coordinator (not any shard's own
    # termination test) ends the query with the shards unfinished.
    result = coordinator.query(
        terms, K, deadline=QueryDeadline(cost_budget=400.0)
    )

    assert result.degraded
    assert result.degrade_reason == DEGRADE_DEADLINE
    assert result.unfinished_shards
    assert set(result.unfinished_shards).isdisjoint(result.pruned_shards)
    assert result.exhausted_shards == []
    check_well_formed(result, index, terms)


def test_unfinished_shards_merge_partial_evidence(corpus):
    index, terms, sharded = corpus
    coordinator = MergeCoordinator(ShardExecutor(sharded))
    result = coordinator.query(
        terms, K, deadline=QueryDeadline(cost_budget=400.0)
    )
    # Partial evidence from unfinished shards is merged, not dropped:
    # the degraded answer still ranks candidates (resolution turned the
    # merged intervals into exact scores on their home shards).
    assert result.items
    assert result.stats.sorted_accesses > 0
    worstscores = [item.worstscore for item in result.items]
    assert worstscores == sorted(worstscores, reverse=True)
