"""Sharded/single-node parity: distribution never changes the answer.

Document partitioning keeps every document's postings inside one shard,
so shard-local aggregated scores are global scores and the coordinator's
merged top-k must be *identical* — doc ids, order, and exact scores — to
single-node execution over the unpartitioned corpus.  This suite pins
that for every canonical algorithm triple, at shard counts covering the
trivial (1), even (2, 4), and uneven (7) cases, and for both coordinator
modes (the bound-pruning round protocol and the naive gather-all
baseline).
"""

import collections

import pytest

from repro.core import available_algorithms
from repro.core.session import QuerySession, ShardedSession
from repro.distrib import MergeCoordinator, ShardExecutor, partition_index
from tests.helpers import make_random_index

K = 10
SHARD_COUNTS = (1, 2, 4, 7)


def exact_scores(index, terms):
    totals = collections.defaultdict(float)
    for term in terms:
        lst = index.list_for(term)
        for doc, score in zip(
            lst.doc_ids_by_rank.tolist(), lst.scores_by_rank.tolist()
        ):
            totals[int(doc)] += float(score)
    return totals


@pytest.fixture(scope="module")
def setup():
    index, terms = make_random_index(seed=42)
    totals = exact_scores(index, terms)
    golden = [
        doc
        for doc, _ in sorted(
            totals.items(), key=lambda kv: (-kv[1], kv[0])
        )[:K]
    ]
    coordinators = {}
    for count in SHARD_COUNTS:
        sharded = partition_index(index, count, strategy="hash")
        coordinators[count] = MergeCoordinator(ShardExecutor(sharded))
    single = QuerySession(index)
    return {
        "index": index,
        "terms": terms,
        "totals": totals,
        "golden": golden,
        "coordinators": coordinators,
        "single": single,
    }


@pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
@pytest.mark.parametrize("count", SHARD_COUNTS)
def test_bounded_matches_single_node(setup, count, algorithm):
    coord = setup["coordinators"][count]
    single = setup["single"].run(setup["terms"], K, algorithm=algorithm)
    result = coord.query(
        setup["terms"], K, algorithm=algorithm, mode="bounded"
    )
    assert result.doc_ids == single.doc_ids == setup["golden"]
    # The coordinator resolves every returned item to its exact score.
    for item in result.items:
        assert item.worstscore == pytest.approx(
            setup["totals"][item.doc_id], abs=1e-9
        )
        assert item.bestscore == pytest.approx(item.worstscore, abs=1e-9)
    assert not result.degraded
    assert result.exhausted_shards == []


@pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
def test_bounded_never_differs_from_gather(setup, algorithm):
    # Four shards exercise pruning (some shards retire early); the
    # early-terminating coordinator must still agree with gather-all.
    coord = setup["coordinators"][4]
    bounded = coord.query(
        setup["terms"], K, algorithm=algorithm, mode="bounded"
    )
    gathered = coord.query(
        setup["terms"], K, algorithm=algorithm, mode="gather"
    )
    assert bounded.doc_ids == gathered.doc_ids
    for left, right in zip(bounded.items, gathered.items):
        assert left.worstscore == pytest.approx(
            right.worstscore, abs=1e-9
        )


@pytest.mark.parametrize("count", SHARD_COUNTS)
def test_gather_matches_golden_at_every_count(setup, count):
    result = setup["coordinators"][count].query(
        setup["terms"], K, mode="gather"
    )
    assert result.doc_ids == setup["golden"]
    assert result.coordinator_rounds == 1


@pytest.mark.parametrize("strategy", ["hash", "round-robin"])
def test_both_partition_strategies_agree(setup, strategy):
    sharded = partition_index(setup["index"], 3, strategy=strategy)
    coord = MergeCoordinator(ShardExecutor(sharded))
    result = coord.query(setup["terms"], K)
    assert result.doc_ids == setup["golden"]


def test_pruning_fires_and_saves_rounds(setup):
    coord = setup["coordinators"][4]
    bounded = coord.query(setup["terms"], K, mode="bounded")
    gathered = coord.query(setup["terms"], K, mode="gather")
    assert bounded.pruned_shards  # the bound test retires shards early
    # Resumable-shard model: rounds (like COST) charge the deepest run
    # per shard, so pruning must yield strictly fewer total rounds.
    assert bounded.stats.rounds < gathered.stats.rounds


def test_sharded_session_entry_point(setup):
    session = ShardedSession(setup["index"], num_shards=4)
    result = session.run(setup["terms"], K)
    assert result.doc_ids == setup["golden"]
    assert session.num_shards == 4
    batch = session.run_many([setup["terms"]] * 2, K)
    assert [r.doc_ids for r in batch] == [setup["golden"]] * 2


def test_coordinator_rejects_unknown_mode(setup):
    with pytest.raises(ValueError):
        setup["coordinators"][2].query(setup["terms"], K, mode="eager")
