"""Sharded/single-node parity: distribution never changes the answer.

Document partitioning keeps every document's postings inside one shard,
so shard-local aggregated scores are global scores and the coordinator's
merged top-k must be *identical* — doc ids, order, and exact scores — to
single-node execution over the unpartitioned corpus.  This suite pins
that for every canonical algorithm triple, at shard counts covering the
trivial (1), even (2, 4), and uneven (7) cases, and for both coordinator
modes (the bound-pruning round protocol and the naive gather-all
baseline).
"""

import pytest

from repro.core import available_algorithms
from repro.core.session import ShardedSession
from repro.distrib import MergeCoordinator, ShardExecutor, partition_index
from tests.helpers import COORDINATOR_K as K
from tests.helpers import SHARD_COUNTS

# Corpus, golden answer, and per-shard-count coordinators come from the
# session-scoped ``coordinator_setup`` fixture in tests/conftest.py.


@pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
@pytest.mark.parametrize("count", SHARD_COUNTS)
def test_bounded_matches_single_node(coordinator_setup, count, algorithm):
    coord = coordinator_setup["coordinators"][count]
    single = coordinator_setup["single"].run(coordinator_setup["terms"], K, algorithm=algorithm)
    result = coord.query(
        coordinator_setup["terms"], K, algorithm=algorithm, mode="bounded"
    )
    assert result.doc_ids == single.doc_ids == coordinator_setup["golden"]
    # The coordinator resolves every returned item to its exact score.
    for item in result.items:
        assert item.worstscore == pytest.approx(
            coordinator_setup["totals"][item.doc_id], abs=1e-9
        )
        assert item.bestscore == pytest.approx(item.worstscore, abs=1e-9)
    assert not result.degraded
    assert result.exhausted_shards == []


@pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
def test_bounded_never_differs_from_gather(coordinator_setup, algorithm):
    # Four shards exercise pruning (some shards retire early); the
    # early-terminating coordinator must still agree with gather-all.
    coord = coordinator_setup["coordinators"][4]
    bounded = coord.query(
        coordinator_setup["terms"], K, algorithm=algorithm, mode="bounded"
    )
    gathered = coord.query(
        coordinator_setup["terms"], K, algorithm=algorithm, mode="gather"
    )
    assert bounded.doc_ids == gathered.doc_ids
    for left, right in zip(bounded.items, gathered.items):
        assert left.worstscore == pytest.approx(
            right.worstscore, abs=1e-9
        )


@pytest.mark.parametrize("count", SHARD_COUNTS)
def test_gather_matches_golden_at_every_count(coordinator_setup, count):
    result = coordinator_setup["coordinators"][count].query(
        coordinator_setup["terms"], K, mode="gather"
    )
    assert result.doc_ids == coordinator_setup["golden"]
    assert result.coordinator_rounds == 1


@pytest.mark.parametrize("strategy", ["hash", "round-robin"])
def test_both_partition_strategies_agree(coordinator_setup, strategy):
    sharded = partition_index(coordinator_setup["index"], 3, strategy=strategy)
    coord = MergeCoordinator(ShardExecutor(sharded))
    result = coord.query(coordinator_setup["terms"], K)
    assert result.doc_ids == coordinator_setup["golden"]


def test_pruning_fires_and_saves_rounds(coordinator_setup):
    coord = coordinator_setup["coordinators"][4]
    bounded = coord.query(coordinator_setup["terms"], K, mode="bounded")
    gathered = coord.query(coordinator_setup["terms"], K, mode="gather")
    assert bounded.pruned_shards  # the bound test retires shards early
    # Resumable-shard model: rounds (like COST) charge the deepest run
    # per shard, so pruning must yield strictly fewer total rounds.
    assert bounded.stats.rounds < gathered.stats.rounds


def test_sharded_session_entry_point(coordinator_setup):
    session = ShardedSession(coordinator_setup["index"], num_shards=4)
    result = session.run(coordinator_setup["terms"], K)
    assert result.doc_ids == coordinator_setup["golden"]
    assert session.num_shards == 4
    batch = session.run_many([coordinator_setup["terms"]] * 2, K)
    assert [r.doc_ids for r in batch] == [coordinator_setup["golden"]] * 2


def test_coordinator_rejects_unknown_mode(coordinator_setup):
    with pytest.raises(ValueError):
        coordinator_setup["coordinators"][2].query(coordinator_setup["terms"], K, mode="eager")
