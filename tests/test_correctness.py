"""Integration: every algorithm returns an exact top-k (oracle checks).

This is the central correctness suite of the reproduction.  The paper's
methods are *non-approximative* (Sec. 7): for every algorithm triple, every
distribution shape, and every corner of the parameter space we verify the
returned doc set against a brute-force oracle on aggregated scores.

Because different correct algorithms may break score ties differently, the
comparison is on the multiset of *true aggregated scores* of the returned
documents, not on doc ids.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import TopKProcessor, available_algorithms
from repro.storage.index_builder import build_index

from tests.helpers import make_random_index, oracle_scores, true_score

ALL_ALGORITHMS = available_algorithms()


def assert_topk_correct(index, terms, k, result):
    expected = oracle_scores(index, terms, k)
    got = sorted(
        (true_score(index, terms, doc) for doc in result.doc_ids),
        reverse=True,
    )
    assert len(got) == len(expected), (
        "returned %d items, oracle has %d" % (len(got), len(expected))
    )
    assert np.allclose(got, expected, atol=1e-6), (
        "scores %s != oracle %s" % (got[:5], expected[:5])
    )


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("distribution", ["uniform", "zipf", "ties"])
def test_algorithms_match_oracle(algorithm, distribution):
    index, terms = make_random_index(
        num_lists=3, list_length=500, num_docs=1500,
        distribution=distribution, seed=11,
    )
    processor = TopKProcessor(index, cost_ratio=100)
    result = processor.query(terms, 10, algorithm=algorithm)
    assert_topk_correct(index, terms, 10, result)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_k_exceeds_universe(algorithm):
    index, terms = make_random_index(
        num_lists=2, list_length=30, num_docs=100, seed=3
    )
    processor = TopKProcessor(index, cost_ratio=50)
    result = processor.query(terms, 500, algorithm=algorithm)
    assert_topk_correct(index, terms, 500, result)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_k_equals_one(algorithm):
    index, terms = make_random_index(seed=5)
    processor = TopKProcessor(index, cost_ratio=100)
    result = processor.query(terms, 1, algorithm=algorithm)
    assert_topk_correct(index, terms, 1, result)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_single_list_query(algorithm):
    index, terms = make_random_index(num_lists=1, seed=7)
    processor = TopKProcessor(index, cost_ratio=100)
    result = processor.query(terms[:1], 5, algorithm=algorithm)
    assert_topk_correct(index, terms[:1], 5, result)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_disjoint_lists(algorithm):
    # No document appears in more than one list: every total is a single
    # per-list score, and absence handling is fully exercised.
    postings = {
        "a": [(d, 1.0 - d / 100) for d in range(0, 50)],
        "b": [(d, 1.0 - (d - 100) / 100) for d in range(100, 150)],
        "c": [(d, 0.5) for d in range(200, 250)],
    }
    index = build_index(postings, num_docs=300, block_size=16)
    processor = TopKProcessor(index, cost_ratio=100)
    result = processor.query(["a", "b", "c"], 7, algorithm=algorithm)
    assert_topk_correct(index, ["a", "b", "c"], 7, result)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_identical_lists(algorithm):
    # Fully correlated lists: the same docs in the same order everywhere.
    base = [(d, 1.0 - d / 60) for d in range(50)]
    index = build_index(
        {"a": base, "b": base, "c": base}, num_docs=100, block_size=8
    )
    processor = TopKProcessor(index, cost_ratio=100)
    result = processor.query(["a", "b", "c"], 5, algorithm=algorithm)
    assert_topk_correct(index, ["a", "b", "c"], 5, result)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("ratio", [1, 100, 10_000])
def test_cost_ratio_extremes(algorithm, ratio):
    index, terms = make_random_index(
        num_lists=3, list_length=300, num_docs=800, seed=13
    )
    processor = TopKProcessor(index, cost_ratio=ratio)
    result = processor.query(terms, 8, algorithm=algorithm)
    assert_topk_correct(index, terms, 8, result)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_all_scores_tied(algorithm):
    postings = {
        "a": [(d, 0.5) for d in range(60)],
        "b": [(d, 0.5) for d in range(30, 90)],
    }
    index = build_index(postings, num_docs=200, block_size=16)
    processor = TopKProcessor(index, cost_ratio=100)
    result = processor.query(["a", "b"], 10, algorithm=algorithm)
    assert_topk_correct(index, ["a", "b"], 10, result)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_correlations_disabled(algorithm):
    index, terms = make_random_index(seed=17)
    processor = TopKProcessor(index, cost_ratio=100, use_correlations=False)
    result = processor.query(terms, 10, algorithm=algorithm)
    assert_topk_correct(index, terms, 10, result)


def test_full_merge_matches_oracle(small_index):
    index, terms = small_index
    processor = TopKProcessor(index, cost_ratio=100)
    result = processor.full_merge(terms, 10)
    assert_topk_correct(index, terms, 10, result)


@settings(max_examples=25, deadline=None)
@given(
    data=st.data(),
    k=st.integers(min_value=1, max_value=8),
    num_lists=st.integers(min_value=1, max_value=4),
)
def test_random_instances_all_algorithms(data, k, num_lists):
    """Property: on arbitrary small instances every algorithm is exact.

    One random instance is checked against the oracle for a randomly
    chosen algorithm (checking all algorithms on all instances would be
    quadratically slow; hypothesis explores the joint space instead).
    """
    postings = {}
    terms = []
    for i in range(num_lists):
        term = "t%d" % i
        terms.append(term)
        docs = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=80),
                min_size=1, max_size=40, unique=True,
            ),
            label="docs_%d" % i,
        )
        scores = data.draw(
            st.lists(
                st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
                min_size=len(docs), max_size=len(docs),
            ),
            label="scores_%d" % i,
        )
        postings[term] = list(zip(docs, scores))
    block_size = data.draw(st.sampled_from([1, 4, 16]), label="block")
    algorithm = data.draw(
        st.sampled_from(ALL_ALGORITHMS), label="algorithm"
    )
    index = build_index(postings, num_docs=100, block_size=block_size)
    processor = TopKProcessor(index, cost_ratio=10)
    result = processor.query(terms, k, algorithm=algorithm)
    assert_topk_correct(index, terms, k, result)
