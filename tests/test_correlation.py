"""Unit tests for the covariance / correlation statistics (Sec. 3.4)."""

import numpy as np
import pytest

from repro.stats.correlation import CovarianceTable
from repro.storage.index_builder import build_index_list


def make_lists():
    # List A: docs 0..9; list B: docs 5..14 (overlap 5); list C: docs 0..4
    # (subset of A).
    a = build_index_list("a", [(d, 0.5) for d in range(10)])
    b = build_index_list("b", [(d, 0.5) for d in range(5, 15)])
    c = build_index_list("c", [(d, 0.5) for d in range(5)])
    return [a, b, c]


class TestFromIndexLists:
    def test_pair_counts(self):
        table = CovarianceTable.from_index_lists(make_lists(), num_docs=100)
        assert table.pair_counts[0, 0] == 10
        assert table.pair_counts[0, 1] == 5
        assert table.pair_counts[1, 0] == 5
        assert table.pair_counts[0, 2] == 5
        assert table.pair_counts[1, 2] == 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            CovarianceTable([10, 10], np.zeros((3, 3)), num_docs=100)
        with pytest.raises(ValueError):
            CovarianceTable([10], np.zeros((1, 1)), num_docs=0)


class TestCovariance:
    def test_formula(self):
        table = CovarianceTable.from_index_lists(make_lists(), num_docs=100)
        # cov = l_ab/n - l_a*l_b/n^2 = 5/100 - 100/10000
        assert table.covariance(0, 1) == pytest.approx(0.05 - 0.01)

    def test_independent_lists_near_zero(self):
        rng = np.random.default_rng(0)
        a = build_index_list(
            "a", [(int(d), 0.5) for d in rng.choice(10_000, 2000,
                                                    replace=False)]
        )
        b = build_index_list(
            "b", [(int(d), 0.5) for d in rng.choice(10_000, 2000,
                                                    replace=False)]
        )
        table = CovarianceTable.from_index_lists([a, b], num_docs=10_000)
        assert abs(table.covariance(0, 1)) < 0.01

    def test_perfect_containment_positive(self):
        table = CovarianceTable.from_index_lists(make_lists(), num_docs=100)
        assert table.covariance(0, 2) > 0


class TestConditionalProbability:
    def test_formula(self):
        table = CovarianceTable.from_index_lists(make_lists(), num_docs=100)
        # P[A | B] = l_ab / l_b = 5/10
        assert table.conditional_probability(0, 1) == pytest.approx(0.5)
        # P[A | C] = 5/5 = 1 (C is contained in A)
        assert table.conditional_probability(0, 2) == pytest.approx(1.0)

    def test_empty_list_conditioning(self):
        table = CovarianceTable([10, 0], np.zeros((2, 2)), num_docs=100)
        assert table.conditional_probability(0, 1) == 0.0


class TestOccurrenceGivenSeen:
    def test_max_over_seen_dims(self):
        table = CovarianceTable.from_index_lists(make_lists(), num_docs=100)
        # P[A | {B, C}] >= max(P[A|B], P[A|C]) = 1.0
        assert table.occurrence_given_seen(0, [1, 2]) == pytest.approx(1.0)
        assert table.occurrence_given_seen(0, [1]) == pytest.approx(0.5)

    def test_marginal_fallback_when_nothing_seen(self):
        table = CovarianceTable.from_index_lists(make_lists(), num_docs=100)
        assert table.occurrence_given_seen(0, []) == pytest.approx(0.1)

    def test_self_dimension_ignored(self):
        table = CovarianceTable.from_index_lists(make_lists(), num_docs=100)
        # Conditioning on itself is excluded; with only itself seen, there
        # is no usable evidence.
        assert table.occurrence_given_seen(0, [0]) == 0.0
