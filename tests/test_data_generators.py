"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import httplog, imdb, padding, synthetic, text_corpus


class TestTextCorpus:
    @pytest.fixture(scope="class")
    def workload(self):
        return text_corpus.generate_workload(
            num_docs=3000, vocab_size=1500, num_topics=10, num_queries=6,
            seed=5,
        )

    def test_deterministic_per_seed(self):
        a = text_corpus.generate_corpus(
            num_docs=500, vocab_size=300, num_topics=5, seed=9
        )
        b = text_corpus.generate_corpus(
            num_docs=500, vocab_size=300, num_topics=5, seed=9
        )
        assert np.array_equal(a.doc_freq, b.doc_freq)
        assert np.array_equal(a.doc_lengths, b.doc_lengths)

    def test_corpus_shape(self, workload):
        corpus = workload.corpus
        assert corpus.num_docs == 3000
        assert corpus.num_terms == 1500
        assert corpus.doc_lengths.min() >= 20

    def test_zipfian_frequencies(self, workload):
        df = np.sort(workload.corpus.doc_freq)[::-1]
        # Head terms dominate the tail by a large factor.
        assert df[0] > 20 * max(df[len(df) // 2], 1)

    def test_query_sizes(self, workload):
        sizes = [len(q) for q in workload.queries]
        assert all(2 <= s <= 5 for s in sizes)
        expanded = [len(q) for q in workload.expanded_queries]
        assert all(2 <= s <= 15 for s in expanded)
        assert np.mean(expanded) > np.mean(sizes)

    def test_query_terms_within_df_band(self, workload):
        corpus = workload.corpus
        n = corpus.num_docs
        for query in workload.queries:
            for term in query:
                fraction = corpus.document_frequency(term) / n
                assert 0.02 <= fraction <= 0.60

    def test_query_terms_unique(self, workload):
        for query in workload.queries + workload.expanded_queries:
            assert len(set(query)) == len(query)

    def test_df_band_too_narrow_raises(self, workload):
        with pytest.raises(ValueError):
            text_corpus.generate_queries(
                workload.corpus, df_fraction_band=(0.9999, 1.0)
            )


class TestPadding:
    def make_postings(self, seed=3):
        rng = np.random.default_rng(seed)
        return {
            "a": [(int(d), float(s)) for d, s in
                  zip(rng.choice(500, 200, replace=False), rng.random(200))],
            "b": [(int(d), float(s)) for d, s in
                  zip(rng.choice(500, 100, replace=False), rng.random(100))],
        }

    def test_lengths_scaled_by_factor(self):
        postings = self.make_postings()
        padded, n = padding.pad_posting_lists(postings, 500, factor=4.0)
        assert len(padded["a"]) == pytest.approx(800, abs=2)
        assert len(padded["b"]) == pytest.approx(400, abs=2)
        assert n > 500

    def test_pad_docs_outside_original_universe(self):
        postings = self.make_postings()
        padded, n = padding.pad_posting_lists(postings, 500, factor=3.0)
        for term in padded:
            extra = [d for d, _ in padded[term][len(postings[term]):]]
            assert all(d >= 500 for d in extra)
            assert all(d < n for d in extra)

    def test_pad_scores_below_base_quantile(self):
        postings = self.make_postings()
        padded, _ = padding.pad_posting_lists(
            postings, 500, factor=3.0, base_quantile=0.4
        )
        for term, original in postings.items():
            base = np.quantile([s for _, s in original], 0.4)
            extra = [s for _, s in padded[term][len(original):]]
            assert all(0.0 <= s <= base + 1e-9 for s in extra)

    def test_factor_one_is_identity(self):
        postings = self.make_postings()
        padded, n = padding.pad_posting_lists(postings, 500, factor=1.0)
        assert padded == {t: list(p) for t, p in postings.items()}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            padding.pad_posting_lists({}, 10, factor=0.5)
        with pytest.raises(ValueError):
            padding.pad_posting_lists({}, 10, base_quantile=0.0)


class TestImdb:
    @pytest.fixture(scope="class")
    def workload(self):
        return imdb.generate_workload(
            num_movies=2000, num_queries=6, block_size=64, seed=3
        )

    def test_dice_coefficient(self):
        assert imdb.dice_coefficient(10, 10, 10) == pytest.approx(1.0)
        assert imdb.dice_coefficient(10, 10, 0) == 0.0
        assert imdb.dice_coefficient(0, 0, 0) == 0.0
        assert imdb.dice_coefficient(10, 30, 10) == pytest.approx(0.5)

    def test_queries_reference_indexed_terms(self, workload):
        for query in workload.queries:
            for term in query:
                assert term in workload.index

    def test_query_structure(self, workload):
        for query in workload.queries:
            kinds = [t.partition(":")[0] for t in query]
            assert kinds.count("genre") == 1
            assert kinds.count("actor") == 1
            assert kinds.count("title") == 1
            assert 1 <= kinds.count("desc") <= 2

    def test_categorical_lists_longer_than_text_lists(self, workload):
        genre_lengths = []
        text_lengths = []
        for query in workload.queries:
            for term in query:
                length = len(workload.index.list_for(term))
                if term.startswith("genre:"):
                    genre_lengths.append(length)
                elif term.startswith(("title:", "desc:")):
                    text_lengths.append(length)
        assert np.mean(genre_lengths) > 3 * np.mean(text_lengths)

    def test_similarity_scores_in_unit_interval(self, workload):
        for term in workload.index.terms:
            scores = workload.index.list_for(term).scores_by_rank
            assert scores.max() <= 1.0 + 1e-9
            assert scores.min() >= 0.0

    def test_genre_lists_have_exact_match_ties(self, workload):
        # The queried genre's own movies all score 1.0: a visible tie block.
        for query in workload.queries[:3]:
            genre_term = next(t for t in query if t.startswith("genre:"))
            scores = workload.index.list_for(genre_term).scores_by_rank
            assert (scores >= 1.0 - 1e-9).sum() > 10


class TestHttplog:
    @pytest.fixture(scope="class")
    def workload(self):
        return httplog.generate_workload(
            num_users=2000, num_days=12, num_queries=6,
            interval_days=(2, 5), block_size=64, seed=3,
        )

    def test_one_list_per_day(self, workload):
        assert len(workload.index) == 12

    def test_queries_are_contiguous_intervals(self, workload):
        for query in workload.queries:
            days = sorted(int(t.split(":")[1]) for t in query)
            assert days == list(range(days[0], days[0] + len(days)))
            assert 2 <= len(days) <= 5

    def test_heavy_tailed_traffic(self, workload):
        scores = workload.index.list_for("day:00").scores_by_rank
        # Top user dwarfs the median user by orders of magnitude.
        assert scores[0] > 50 * np.median(scores)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            httplog.generate_workload(
                num_users=100, num_days=5, interval_days=(2, 9)
            )


class TestSynthetic:
    def test_uniform_and_zipf_shapes(self):
        rng = np.random.default_rng(0)
        uniform = synthetic.uniform_scores(rng, 1000)
        zipf = synthetic.zipf_scores(rng, 1000)
        assert 0 < uniform.min() and uniform.max() <= 1.0
        assert zipf.max() == pytest.approx(1.0)
        # Zipf mass concentrates at the top; uniform does not.
        assert np.median(zipf) < 0.05
        assert np.median(uniform) > 0.3

    def test_index_overlap_parameter(self):
        high, _ = synthetic.synthetic_index(
            num_lists=2, list_length=400, num_docs=2000, overlap=0.9,
            block_size=64, seed=1,
        )
        low, _ = synthetic.synthetic_index(
            num_lists=2, list_length=400, num_docs=2000, overlap=0.0,
            block_size=64, seed=1,
        )

        def shared(index):
            lists = index.lists_for(index.terms[:2])
            a = set(lists[0].doc_ids_by_rank.tolist())
            b = set(lists[1].doc_ids_by_rank.tolist())
            return len(a & b)

        assert shared(high) > shared(low)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic.synthetic_index(overlap=2.0)
        with pytest.raises(ValueError):
            synthetic.synthetic_index(list_length=100, num_docs=50)
        with pytest.raises(ValueError):
            synthetic.synthetic_index(distribution="normal")
