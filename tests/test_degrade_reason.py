"""``degrade_reason``: a machine-readable primary cause on every
degraded result.

Clients (the serving layer above all) must not infer *why* a result is
partial by parsing ``exhausted_lists``/``exhausted_shards``: the result
itself names its primary cause, with a fixed severity order — a dead
shard outranks a dead list outranks an expired deadline.  Exact results
carry ``None``, and the old detail fields stay untouched.
"""

import pytest

from repro.core.algorithms import TopKProcessor
from repro.core.engine import QueryDeadline
from repro.core.results import (
    DEGRADE_DEAD_LIST,
    DEGRADE_DEAD_SHARD,
    DEGRADE_DEADLINE,
    DEGRADE_REASONS,
    DEGRADE_SHED,
)
from repro.core.session import ShardedSession
from repro.distrib import partition_index
from repro.storage.accessors import RetryPolicy
from repro.storage.faults import FaultInjector, FaultPlan

from tests.helpers import make_random_index

K = 10
ALGORITHM = "KSR-Last-Ben"


def chaos_processor(index, plan, **retry_kwargs):
    injector = FaultInjector(plan)
    return TopKProcessor(
        injector.wrap_index(index),
        cost_ratio=1000.0,
        retry_policy=RetryPolicy(**retry_kwargs),
    )


@pytest.fixture(scope="module")
def corpus():
    return make_random_index(seed=5)


def test_reason_vocabulary_is_fixed():
    assert DEGRADE_REASONS == (
        DEGRADE_DEADLINE,
        DEGRADE_DEAD_LIST,
        DEGRADE_DEAD_SHARD,
        DEGRADE_SHED,
    )
    assert len(set(DEGRADE_REASONS)) == 4


class TestSingleNode:
    def test_exact_result_has_no_reason(self, corpus):
        index, terms = corpus
        result = TopKProcessor(index, cost_ratio=1000.0).query(
            terms, K, algorithm=ALGORITHM
        )
        assert not result.degraded
        assert result.degrade_reason is None

    def test_cost_budget_expiry_reports_deadline(self, corpus):
        index, terms = corpus
        processor = TopKProcessor(index, cost_ratio=1000.0)
        full = processor.query(terms, K, algorithm=ALGORITHM)
        result = processor.query(
            terms, K, algorithm=ALGORITHM,
            deadline=QueryDeadline(cost_budget=full.stats.cost / 3.0),
        )
        assert result.degraded
        assert result.degrade_reason == DEGRADE_DEADLINE
        assert result.exhausted_lists == []

    def test_dead_list_reports_dead_list(self, corpus):
        index, terms = corpus
        processor = chaos_processor(
            index, FaultPlan(dead_terms=(terms[0],)),
            max_attempts=2, query_budget=8,
        )
        result = processor.query(terms, K, algorithm=ALGORITHM)
        assert result.degraded
        assert result.degrade_reason == DEGRADE_DEAD_LIST
        assert result.exhausted_lists == [terms[0]]

    def test_dead_list_outranks_deadline(self, corpus):
        index, terms = corpus
        clean = TopKProcessor(index, cost_ratio=1000.0)
        full = clean.query(terms, K, algorithm=ALGORITHM)
        processor = chaos_processor(
            index, FaultPlan(dead_terms=(terms[0],)),
            max_attempts=2, query_budget=8,
        )
        result = processor.query(
            terms, K, algorithm=ALGORITHM,
            deadline=QueryDeadline(cost_budget=full.stats.cost / 3.0),
        )
        assert result.degraded
        assert result.degrade_reason == DEGRADE_DEAD_LIST


class TestSharded:
    def test_exact_sharded_result_has_no_reason(self, corpus):
        index, terms = corpus
        session = ShardedSession(index, num_shards=4)
        result = session.run(terms, K)
        assert not result.degraded
        assert result.degrade_reason is None
        assert result.unfinished_shards == []

    def test_cost_budget_reports_deadline_and_unfinished(self, corpus):
        index, terms = corpus
        session = ShardedSession(index, num_shards=4)
        result = session.run(
            terms, K, deadline=QueryDeadline(cost_budget=400.0)
        )
        assert result.degraded
        assert result.degrade_reason == DEGRADE_DEADLINE
        assert result.unfinished_shards
        assert result.exhausted_shards == []

    def test_dead_shard_reports_dead_shard(self, corpus):
        index, terms = corpus
        sharded = partition_index(index, 4, strategy="hash")
        injector = FaultInjector(FaultPlan(dead_terms=tuple(terms)))
        shards = list(sharded.shards)
        shards[1] = injector.wrap_index(shards[1])
        broken = type(sharded)(
            shards=tuple(shards),
            strategy=sharded.strategy,
            assignment=sharded.assignment,
        )
        session = ShardedSession(
            sharded=broken,
            retry_policy=RetryPolicy(max_attempts=2, query_budget=8),
        )
        result = session.run(terms, K)
        assert result.degraded
        assert result.degrade_reason == DEGRADE_DEAD_SHARD
        assert result.exhausted_shards == [1]
