"""Differential correctness harness (randomized corpora).

Three layers of cross-checking, complementing the pinned-seed golden
parity suite in ``test_executor_parity.py``:

* every registered algorithm triple, on several randomized corpora, must
  return the exact top-k *score set* of the ``FullMerge`` baseline
  (``core/full_merge.py`` scans everything with numpy — an independent
  implementation of the same semantics),
* the textbook instances obey the documented access-count ordering:
  NRA performs no random accesses and the most sorted accesses, TA the
  fewest sorted accesses and the most random accesses, CA sits between
  on both axes,
* the fast bookkeeping modes (columnar struct-of-arrays and incremental
  per-object) reproduce the reference (full-recompute) engine
  access-for-access on corpora the golden suite never pinned — on the
  clean path for all 24 algorithm triples, and through the
  fault-injection and deadline-expiry paths for the round-loop workload.

Corpora are seeded, so failures reproduce deterministically.
"""

import pytest

from repro.core.algorithms import TopKProcessor, available_algorithms
from repro.core.bookkeeping import bookkeeping_mode, reference_pools
from repro.core.executor import QueryDeadline
from repro.core.session import QuerySession
from repro.storage.accessors import RetryPolicy
from repro.storage.faults import FaultInjector, FaultPlan
from tests.helpers import CORPORA, MONOTONE_CORPORA, true_score

# Stress corpora and their cached sessions are shared suite-wide: the
# (seed, distribution) pairs live in tests/helpers.py and the
# session-scoped ``corpus_sessions`` fixture in tests/conftest.py.

K = 5


@pytest.mark.parametrize("corpus", CORPORA, ids=lambda c: "%s-%s" % c)
@pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
def test_topk_scores_match_full_merge(corpus_sessions, corpus, algorithm):
    """Exact algorithms return FullMerge's top-k score set.

    Compared on the *true* aggregated scores of the returned documents
    (looked up directly in the index): threshold termination guarantees
    the top-k set, but a returned item's ``worstscore`` may legitimately
    still be a partial lower bound, and under score ties the doc ids may
    legitimately differ between implementations — the true score multiset
    is what the semantics determine uniquely.
    """
    session, terms = corpus_sessions[corpus]
    index = session.default_index
    expected = session.full_merge(terms, K)
    result = session.run(terms, K, algorithm=algorithm)
    assert not result.degraded
    got = sorted(
        (true_score(index, terms, doc_id) for doc_id in result.doc_ids),
        reverse=True,
    )
    want = [item.worstscore for item in expected.items]
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g == pytest.approx(w, abs=1e-9)


@pytest.mark.parametrize(
    "corpus", MONOTONE_CORPORA, ids=lambda c: "%s-%s" % c
)
def test_textbook_access_counts_are_monotone(corpus_sessions, corpus):
    """NRA / CA / TA access counts in the documented order.

    RA: NRA performs none, TA resolves everything it meets, CA rations
    probes by the cost ratio — so ``0 = RA(NRA) <= RA(CA) <= RA(TA)``.
    SA: TA stops scanning earliest (probes close the gap), NRA must scan
    until the bounds alone converge — so ``SA(TA) <= SA(CA) <= SA(NRA)``.
    """
    session, terms = corpus_sessions[corpus]
    nra = session.run(terms, K, algorithm="RR-Never").stats
    ca = session.run(terms, K, algorithm="RR-Each-Best").stats
    ta = session.run(terms, K, algorithm="RR-All").stats
    assert nra.random_accesses == 0
    assert nra.random_accesses <= ca.random_accesses <= ta.random_accesses
    assert ta.sorted_accesses <= ca.sorted_accesses <= nra.sorted_accesses


#: One policy per RA family — the reference cross-check does not need
#: the full 24-way product here (the golden suite covers that on the
#: pinned corpus); it needs every *code path* exercised on fresh data.
REFERENCE_CHECK_ALGORITHMS = [
    "RR-Never",
    "RR-All",
    "RR-Each-Best",
    "KBA-Top-Best",
    "KSR-Pick-Ben",
    "KSR-Last-Ben",
]


@pytest.mark.parametrize("mode", ["columnar", "incremental"])
@pytest.mark.parametrize("corpus", CORPORA, ids=lambda c: "%s-%s" % c)
@pytest.mark.parametrize("algorithm", REFERENCE_CHECK_ALGORITHMS)
def test_fast_modes_match_reference_on_random_corpora(
    corpus_sessions, corpus, algorithm, mode
):
    session, terms = corpus_sessions[corpus]
    result = QuerySession(
        session.default_index, cost_ratio=100.0, bookkeeping=mode
    ).run(terms, K, algorithm=algorithm, trace=True)
    with reference_pools():
        reference = QuerySession(
            session.default_index, cost_ratio=100.0
        ).run(terms, K, algorithm=algorithm, trace=True)
    assert (
        result.stats.sorted_accesses,
        result.stats.random_accesses,
        result.stats.cost,
        result.doc_ids,
    ) == (
        reference.stats.sorted_accesses,
        reference.stats.random_accesses,
        reference.stats.cost,
        reference.doc_ids,
    )
    assert [str(r) for r in result.trace] == [
        str(r) for r in reference.trace
    ]


@pytest.mark.parametrize("corpus", CORPORA, ids=lambda c: "%s-%s" % c)
@pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
def test_columnar_trace_parity_all_algorithms(
    corpus_sessions, corpus, algorithm
):
    """Cross-mode trace parity for every registered algorithm triple.

    The columnar pool must reproduce the scalar oracle's per-round trace
    strings — positions, min-k, unseen bound, queue size, cumulative
    access counts — on every (SA, RA, ordering) combination, not just
    the representative per-family policies of the test above.
    """
    session, terms = corpus_sessions[corpus]
    result = QuerySession(
        session.default_index, cost_ratio=100.0, bookkeeping="columnar"
    ).run(terms, K, algorithm=algorithm, trace=True)
    with reference_pools():
        reference = QuerySession(
            session.default_index, cost_ratio=100.0
        ).run(terms, K, algorithm=algorithm, trace=True)
    assert result.doc_ids == reference.doc_ids
    assert result.stats.cost == reference.stats.cost
    assert [str(r) for r in result.trace] == [
        str(r) for r in reference.trace
    ]


def _chaos_processor(index, plan):
    injector = FaultInjector(plan)
    return TopKProcessor(
        injector.wrap_index(index),
        cost_ratio=100.0,
        retry_policy=RetryPolicy(max_attempts=3, query_budget=64),
    )


@pytest.mark.parametrize("mode", ["columnar", "incremental"])
def test_fast_modes_match_reference_under_faults(corpus_sessions, mode):
    """Access identity holds through the fault-injection/retry path.

    The resilient per-block read path bypasses the batch fast path, so
    this pins the columnar pool against the oracle on the exact code
    route a flaky storage layer takes (seeded plan: identical fault
    schedules in both runs).
    """
    session, terms = corpus_sessions[(1, "uniform")]
    index = session.default_index
    plan = FaultPlan.uniform(0.05, seed=42)
    with bookkeeping_mode(mode):
        result = _chaos_processor(index, plan).query(
            terms, K, algorithm="KSR-Last-Ben"
        )
    with reference_pools():
        reference = _chaos_processor(index, plan).query(
            terms, K, algorithm="KSR-Last-Ben"
        )
    assert result.stats.retries == reference.stats.retries
    assert (
        result.stats.sorted_accesses,
        result.stats.random_accesses,
        result.stats.cost,
        result.doc_ids,
    ) == (
        reference.stats.sorted_accesses,
        reference.stats.random_accesses,
        reference.stats.cost,
        reference.doc_ids,
    )
    assert [i.worstscore for i in result.items] == [
        i.worstscore for i in reference.items
    ]


@pytest.mark.parametrize("mode", ["columnar", "incremental"])
def test_fast_modes_match_reference_on_deadline_expiry(
    corpus_sessions, mode
):
    """Anytime (deadline-expired) partial results are mode-independent.

    A cost budget that stops the query mid-scan exercises the degraded
    result-assembly path; the partial top-k, its score intervals, and
    the degrade flag must not depend on the bookkeeping mode.
    """
    session, terms = corpus_sessions[(2, "zipf")]
    index = session.default_index
    full = session.run(terms, K, algorithm="RR-Never")
    budget = full.stats.cost / 3.0
    with bookkeeping_mode(mode):
        result = TopKProcessor(index, cost_ratio=100.0).query(
            terms, K, algorithm="RR-Never",
            deadline=QueryDeadline(cost_budget=budget),
        )
    with reference_pools():
        reference = TopKProcessor(index, cost_ratio=100.0).query(
            terms, K, algorithm="RR-Never",
            deadline=QueryDeadline(cost_budget=budget),
        )
    assert result.degraded and reference.degraded
    assert result.degrade_reason == reference.degrade_reason
    assert result.doc_ids == reference.doc_ids
    assert result.stats.cost == reference.stats.cost
    assert [
        (i.worstscore, i.bestscore) for i in result.items
    ] == [
        (i.worstscore, i.bestscore) for i in reference.items
    ]
