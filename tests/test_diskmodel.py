"""Unit tests for the simulated disk cost model."""

import pytest

from repro.storage.diskmodel import DEFAULT_COST_RATIO, AccessMeter, CostModel


class TestCostModel:
    def test_default_ratio(self):
        model = CostModel()
        assert model.ratio == DEFAULT_COST_RATIO

    def test_from_ratio(self):
        model = CostModel.from_ratio(250)
        assert model.sorted_access_cost == 1.0
        assert model.random_access_cost == 250.0
        assert model.ratio == 250.0

    def test_ratio_uses_both_costs(self):
        model = CostModel(sorted_access_cost=2.0, random_access_cost=500.0)
        assert model.ratio == 250.0

    @pytest.mark.parametrize("sorted_cost,random_cost", [
        (0.0, 1.0), (-1.0, 1.0), (1.0, 0.0), (1.0, -5.0),
    ])
    def test_rejects_non_positive_costs(self, sorted_cost, random_cost):
        with pytest.raises(ValueError):
            CostModel(
                sorted_access_cost=sorted_cost,
                random_access_cost=random_cost,
            )

    def test_is_immutable(self):
        model = CostModel()
        with pytest.raises(AttributeError):
            model.sorted_access_cost = 3.0


class TestAccessMeter:
    def test_starts_at_zero(self):
        meter = AccessMeter()
        assert meter.sorted_accesses == 0
        assert meter.random_accesses == 0
        assert meter.cost == 0.0

    def test_charging(self):
        meter = AccessMeter(cost_model=CostModel.from_ratio(100))
        meter.charge_sorted(10)
        meter.charge_random(2)
        meter.charge_sorted()
        assert meter.sorted_accesses == 11
        assert meter.random_accesses == 2

    def test_normalized_cost_is_paper_metric(self):
        meter = AccessMeter(cost_model=CostModel.from_ratio(1000))
        meter.charge_sorted(500)
        meter.charge_random(3)
        assert meter.cost == 500 + 1000 * 3

    def test_absolute_cost(self):
        meter = AccessMeter(
            cost_model=CostModel(sorted_access_cost=2.0,
                                 random_access_cost=50.0)
        )
        meter.charge_sorted(10)
        meter.charge_random(1)
        assert meter.absolute_cost == 2.0 * 10 + 50.0

    def test_negative_charges_rejected(self):
        meter = AccessMeter()
        with pytest.raises(ValueError):
            meter.charge_sorted(-1)
        with pytest.raises(ValueError):
            meter.charge_random(-2)

    def test_reset_keeps_cost_model(self):
        model = CostModel.from_ratio(42)
        meter = AccessMeter(cost_model=model)
        meter.charge_sorted(5)
        meter.reset()
        assert meter.sorted_accesses == 0
        assert meter.cost_model is model

    def test_snapshot_is_independent(self):
        meter = AccessMeter()
        meter.charge_sorted(5)
        snap = meter.snapshot()
        meter.charge_sorted(5)
        assert snap.sorted_accesses == 5
        assert meter.sorted_accesses == 10
