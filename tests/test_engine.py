"""Unit tests for the query driver and its state object."""

import pytest

from repro.core.algorithms import make_policies
from repro.core.engine import QueryState, TopKEngine
from repro.stats.catalog import StatsCatalog
from repro.storage.diskmodel import CostModel
from repro.storage.index_builder import build_index



def make_state(index, terms, k=5, ratio=100, batch_blocks=None):
    return QueryState(
        index=index,
        stats=StatsCatalog(index),
        terms=terms,
        k=k,
        cost_model=CostModel.from_ratio(ratio),
        batch_blocks=batch_blocks,
    )


class TestQueryState:
    def test_initial_geometry(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        assert state.positions == [0, 0, 0]
        assert all(h > 0 for h in state.highs)
        assert not state.exhausted
        assert state.batch_blocks == 3  # defaults to one block per list

    def test_requires_terms(self, small_index):
        index, _ = small_index
        with pytest.raises(ValueError):
            make_state(index, [])

    def test_sorted_round_updates_positions_and_pool(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        state.perform_sorted_round([1, 0, 2])
        assert state.positions[0] == index.list_for(terms[0]).block_size
        assert state.positions[1] == 0
        assert len(state.pool.candidates) > 0
        assert state.round_no == 1
        assert state.last_allocation[0] > 0

    def test_sorted_round_requires_full_allocation(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        with pytest.raises(ValueError):
            state.perform_sorted_round([1, 1])

    def test_probe_resolves_dimension(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        doc = int(index.list_for(terms[0]).doc_ids_by_rank[0])
        score = state.probe(doc, 0)
        assert score == pytest.approx(index.list_for(terms[0]).lookup(doc))
        assert state.meter.random_accesses == 1
        assert state.pool.candidates[doc].seen_mask == 0b1

    def test_probe_candidate_orders_by_selectivity(self):
        postings = {
            "short": [(d, 0.5) for d in range(5)],
            "long": [(d, 0.5) for d in range(100)],
        }
        index = build_index(postings, num_docs=200, block_size=8)
        state = make_state(index, ["long", "short"], k=1)
        cand = state.pool.resolve_dimension(999, 0, 0.0)
        cand.seen_mask = 0  # pretend nothing seen; both dims missing
        cand.worstscore = 0.0
        probed = []
        original = state.probe

        def spy(doc_id, dim):
            probed.append(dim)
            return original(doc_id, dim)

        state.probe = spy
        state.probe_candidate(cand, stop_when_pruned=False)
        # dim 1 ("short") is more selective and must be probed first.
        assert probed == [1, 0]

    def test_predictor_refreshes_per_round(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        first = state.predictor
        assert state.predictor is first  # cached within the round
        state.perform_sorted_round([1, 1, 1])
        again = state.predictor
        assert again is first  # same object, refreshed positions
        assert again._positions == state.positions

    def test_exhaustion(self, small_index):
        index, terms = small_index
        state = make_state(index, terms)
        blocks = [index.list_for(t).num_blocks for t in terms]
        state.perform_sorted_round(blocks)
        assert state.exhausted
        assert state.is_terminated


class TestTopKEngine:
    def test_run_produces_k_items(self, small_index):
        index, terms = small_index
        engine = TopKEngine(index, cost_model=CostModel.from_ratio(100))
        sa, ra, name = make_policies("NRA")
        result = engine.run(terms, 10, sa, ra, algorithm_name=name)
        assert len(result.items) == 10
        assert result.algorithm == "RR-Never"
        assert result.stats.sorted_accesses > 0
        assert result.stats.random_accesses == 0

    def test_items_ranked_by_worstscore(self, small_index):
        index, terms = small_index
        engine = TopKEngine(index)
        sa, ra, _ = make_policies("CA")
        result = engine.run(terms, 10, sa, ra)
        worst = [item.worstscore for item in result.items]
        assert worst == sorted(worst, reverse=True)
        for item in result.items:
            assert item.bestscore >= item.worstscore - 1e-9

    def test_shares_stats_catalog(self, small_index):
        index, terms = small_index
        catalog = StatsCatalog(index)
        engine = TopKEngine(index, stats=catalog)
        assert engine.stats is catalog

    def test_wall_time_recorded(self, small_index):
        index, terms = small_index
        engine = TopKEngine(index)
        sa, ra, _ = make_policies("NRA")
        result = engine.run(terms, 5, sa, ra)
        assert result.stats.wall_time_seconds > 0
