"""Engine robustness: progress guarantees and degenerate policies."""

import pathlib

import pytest

from repro.core.engine import RAPolicy, SAPolicy, TopKEngine
from repro.storage.diskmodel import CostModel

from tests.helpers import oracle_scores, true_score


class LazySA(SAPolicy):
    """Pathological SA policy that never allocates anything."""

    name = "lazy"

    def allocate(self, state, batch_blocks):
        return [0] * state.num_lists


class StubbornRA(RAPolicy):
    """Pathological RA policy that refuses SAs and never probes."""

    name = "stubborn"

    def wants_sorted_access(self, state):
        return False

    def after_round(self, state):
        return


class TestProgressGuarantees:
    def test_lazy_sa_policy_falls_back_to_round_robin(self, small_index):
        index, terms = small_index
        engine = TopKEngine(index, cost_model=CostModel.from_ratio(100))
        result = engine.run(terms, 5, LazySA(), RAPolicy())
        expected = oracle_scores(index, terms, 5)
        got = sorted(
            (true_score(index, terms, d) for d in result.doc_ids),
            reverse=True,
        )
        assert got == pytest.approx(expected)

    def test_stubborn_ra_policy_cannot_stall(self, small_index):
        index, terms = small_index
        engine = TopKEngine(index, cost_model=CostModel.from_ratio(100))
        result = engine.run(terms, 5, LazySA(), StubbornRA())
        assert len(result.items) == 5
        assert result.stats.random_accesses == 0

    def test_exhaustion_terminates_even_with_huge_k(self, small_index):
        index, terms = small_index
        engine = TopKEngine(index, cost_model=CostModel.from_ratio(100))
        from repro.core.algorithms import make_policies

        sa, ra, _ = make_policies("NRA")
        result = engine.run(terms, 10_000, sa, ra)
        # Everything positive gets returned; the engine must not loop.
        assert len(result.items) == len(oracle_scores(index, terms, 10_000))


class TestDocumentationHygiene:
    def test_every_module_has_a_docstring(self):
        import importlib
        import pkgutil

        import repro

        package_root = pathlib.Path(repro.__file__).parent
        missing = []
        for info in pkgutil.walk_packages(
            [str(package_root)], prefix="repro."
        ):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, "modules without docstrings: %s" % missing

    def test_public_api_symbols_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
