"""Input validation: bad queries fail fast with clear errors (satellite b)."""

import pytest

from repro.core.algorithms import TopKProcessor, run_query
from repro.core.engine import QueryState

from tests.helpers import make_random_index


@pytest.fixture(scope="module")
def setup():
    index, terms = make_random_index(seed=2)
    return index, terms, TopKProcessor(index, cost_ratio=1000.0)


@pytest.mark.parametrize("k", [0, -1, -50])
def test_nonpositive_k_rejected(setup, k):
    index, terms, processor = setup
    with pytest.raises(ValueError, match="k must be positive"):
        processor.query(terms, k, algorithm="KSR-Last-Ben")


def test_empty_terms_rejected(setup):
    index, terms, processor = setup
    with pytest.raises(ValueError, match="at least one term"):
        processor.query([], 10, algorithm="KSR-Last-Ben")


def test_full_merge_rejects_same_inputs(setup):
    index, terms, processor = setup
    with pytest.raises(ValueError):
        processor.full_merge(terms, 0)
    with pytest.raises(ValueError):
        processor.full_merge([], 10)


def test_run_query_rejects_bad_k(setup):
    index, terms, _ = setup
    with pytest.raises(ValueError, match="k must be positive"):
        run_query(index, terms, 0)


def test_query_state_rejects_directly(setup):
    index, terms, processor = setup
    with pytest.raises(ValueError):
        QueryState(index, processor.stats, terms, 0,
                   processor.engine.cost_model)
    with pytest.raises(ValueError):
        QueryState(index, processor.stats, [], 5,
                   processor.engine.cost_model)


def test_valid_query_still_works(setup):
    index, terms, processor = setup
    result = processor.query(terms, 1, algorithm="KSR-Last-Ben")
    assert len(result.doc_ids) == 1
