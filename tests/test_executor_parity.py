"""Golden parity: the layered path reproduces the seed engine exactly.

The recorded values below were produced by the pre-refactor engine (the
monolithic ``TopKEngine.run`` loop) on a fixed synthetic index.  Every
canonical algorithm must keep its ``(#SA, #RA, COST, doc_ids)`` byte-for-
byte — the planner/executor/session split is a pure refactor of the
query path and listeners are purely observational.
"""

import pytest

from repro.core.algorithms import available_algorithms
from repro.core.bookkeeping import (
    CandidatePool,
    make_pool,
    reference_pools,
)
from repro.core.executor import TraceListener
from repro.core.session import QuerySession
from tests.helpers import make_random_index

# (#SA, #RA, COST) per canonical algorithm; index seed=42, k=10,
# cost_ratio=100.  Recorded from the seed engine before the refactor.
GOLDEN_ACCESS = {
    "KBA-All": (960, 1873, 188260.0),
    "KBA-Each-Best": (1536, 15, 3036.0),
    "KBA-Last-Ben": (1800, 0, 1800.0),
    "KBA-Last-Best": (1800, 0, 1800.0),
    "KBA-Never": (1800, 0, 1800.0),
    "KBA-Pick-Ben": (768, 438, 44568.0),
    "KBA-Pick-Best": (768, 438, 44568.0),
    "KBA-Top-Best": (768, 594, 60168.0),
    "KSR-All": (960, 1863, 187260.0),
    "KSR-Each-Best": (1688, 15, 3188.0),
    "KSR-Last-Ben": (1800, 0, 1800.0),
    "KSR-Last-Best": (1800, 0, 1800.0),
    "KSR-Never": (1800, 0, 1800.0),
    "KSR-Pick-Ben": (768, 438, 44568.0),
    "KSR-Pick-Best": (768, 438, 44568.0),
    "KSR-Top-Best": (768, 651, 65868.0),
    "RR-All": (960, 1922, 193160.0),
    "RR-Each-Best": (1536, 13, 2836.0),
    "RR-Last-Ben": (1800, 0, 1800.0),
    "RR-Last-Best": (1800, 0, 1800.0),
    "RR-Never": (1800, 0, 1800.0),
    "RR-Pick-Ben": (768, 438, 44568.0),
    "RR-Pick-Best": (768, 438, 44568.0),
    "RR-Top-Best": (768, 585, 59268.0),
}

#: Exact top-10 (same for every exact algorithm on this index).
GOLDEN_DOC_IDS = [912, 536, 1834, 529, 9, 154, 429, 800, 802, 541]

# Weighted runs: cost_ratio=50, k=5, weights=(2.0, 1.0, 0.5).
GOLDEN_WEIGHTED = {
    "RR-Never": (1536, 0, 1536.0, [429, 536, 1834, 9, 1836]),
    "RR-All": (576, 1282, 64676.0, [429, 536, 1834, 9, 1836]),
    "KSR-Last-Ben": (960, 10, 1460.0, [536, 1834, 9, 429, 1836]),
    "KBA-Last-Ben": (960, 10, 1460.0, [536, 1834, 9, 429, 1836]),
    "RR-Each-Best": (960, 18, 1860.0, [429, 536, 1834, 9, 1836]),
}

# NRA trace (cost_ratio=100, k=10): first and last round snapshots.
GOLDEN_TRACE_ROUNDS = 10
GOLDEN_TRACE_FIRST = (
    "round 1: SA+[64, 64, 64] pos=[64, 64, 64] min-k=0.999 "
    "unseen<=2.688 queue=178 (#SA=192 #RA=0)"
)
GOLDEN_TRACE_LAST = (
    "round 10: SA+[24, 24, 24] pos=[600, 600, 600] min-k=1.918 "
    "unseen<=0.000 queue=0 (#SA=1800 #RA=0)"
)


@pytest.fixture(scope="module")
def setup():
    index, terms = make_random_index(seed=42)
    session = QuerySession(index, cost_ratio=100.0)
    return session, terms


def test_golden_table_covers_every_algorithm():
    assert sorted(GOLDEN_ACCESS) == sorted(available_algorithms())


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_ACCESS))
def test_access_counts_match_seed_engine(setup, algorithm):
    session, terms = setup
    result = session.run(terms, 10, algorithm=algorithm)
    stats = result.stats
    assert (
        stats.sorted_accesses,
        stats.random_accesses,
        stats.cost,
    ) == GOLDEN_ACCESS[algorithm]
    assert result.doc_ids == GOLDEN_DOC_IDS
    assert not result.degraded


@pytest.mark.parametrize("algorithm", sorted(GOLDEN_WEIGHTED))
def test_weighted_access_counts_match_seed_engine(algorithm):
    index, terms = make_random_index(seed=42)
    session = QuerySession(index, cost_ratio=50.0)
    sa, ra, cost, doc_ids = GOLDEN_WEIGHTED[algorithm]
    result = session.run(
        terms, 5, algorithm=algorithm, weights=(2.0, 1.0, 0.5)
    )
    assert result.stats.sorted_accesses == sa
    assert result.stats.random_accesses == ra
    assert result.stats.cost == cost
    assert result.doc_ids == doc_ids


def test_columnar_bookkeeping_is_the_default():
    from repro.core.columnar import ColumnarPool

    assert isinstance(make_pool(3, 10), ColumnarPool)
    assert CandidatePool(3, 10).incremental
    with reference_pools():
        assert not CandidatePool(3, 10).incremental
        assert make_pool(3, 10).mode == "reference"
    assert isinstance(make_pool(3, 10), ColumnarPool)


@pytest.mark.parametrize("mode", ["columnar", "incremental"])
@pytest.mark.parametrize("algorithm", sorted(GOLDEN_ACCESS))
def test_bookkeeping_mode_matches_reference(setup, algorithm, mode):
    """Every fast bookkeeping mode is access-identical to the reference.

    Runs every canonical algorithm once per fast mode (the columnar
    struct-of-arrays pool and the incremental per-object pool) against
    the full-recompute oracle, and requires byte-identical
    (#SA, #RA, COST, doc_ids) plus identical per-round trace strings
    (min-k, queue size, positions...).
    """
    session, terms = setup
    index = session.default_index
    with reference_pools():
        ref = QuerySession(index, cost_ratio=100.0).run(
            terms, 10, algorithm=algorithm, trace=True
        )
    fast = QuerySession(index, cost_ratio=100.0, bookkeeping=mode).run(
        terms, 10, algorithm=algorithm, trace=True
    )
    assert (
        fast.stats.sorted_accesses,
        fast.stats.random_accesses,
        fast.stats.cost,
    ) == (
        ref.stats.sorted_accesses,
        ref.stats.random_accesses,
        ref.stats.cost,
    )
    assert fast.doc_ids == ref.doc_ids
    assert [i.worstscore for i in fast.items] == [
        i.worstscore for i in ref.items
    ]
    assert fast.stats.peak_queue_size == ref.stats.peak_queue_size
    assert [str(r) for r in fast.trace] == [str(r) for r in ref.trace]
    assert all(r.bookkeeping == mode for r in fast.trace)
    assert all(r.bookkeeping == "reference" for r in ref.trace)


def test_trace_matches_seed_engine(setup):
    session, terms = setup
    result = session.run(terms, 10, algorithm="NRA", trace=True)
    assert len(result.trace) == GOLDEN_TRACE_ROUNDS
    assert str(result.trace[0]) == GOLDEN_TRACE_FIRST
    assert str(result.trace[-1]) == GOLDEN_TRACE_LAST


def test_trace_flag_equals_explicit_trace_listener(setup):
    session, terms = setup
    via_flag = session.run(terms, 10, algorithm="NRA", trace=True)
    listener = TraceListener()
    via_listener = session.run(
        terms, 10, algorithm="NRA", listeners=(listener,)
    )
    assert [str(r) for r in via_flag.trace] == [
        str(r) for r in listener.records
    ]
    # The listener path also places the records on the result.
    assert [str(r) for r in via_listener.trace] == [
        str(r) for r in listener.records
    ]
    assert via_flag.stats.cost == via_listener.stats.cost
