"""Unit tests for the storage fault-injection layer."""

import numpy as np
import pytest

from repro.storage.accessors import (
    ListUnavailableError,
    RandomAccessor,
    RetryPolicy,
    RetrySession,
    SortedCursor,
)
from repro.storage.block_index import IndexList, compute_block_checksum
from repro.storage.diskmodel import AccessMeter
from repro.storage.faults import (
    FaultInjector,
    FaultPlan,
    FaultyIndexList,
    IndexCorruptionError,
    TransientIOError,
)



def make_list(n=100, block_size=16, seed=0):
    rng = np.random.default_rng(seed)
    docs = rng.choice(10 * n, size=n, replace=False)
    return IndexList("t", docs, rng.random(n), block_size=block_size)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(read_fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(probe_fault_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(latency_spike_ms=-1.0)

    def test_inertness(self):
        assert FaultPlan().is_inert
        assert not FaultPlan(read_fault_rate=0.1).is_inert
        assert not FaultPlan(dead_terms=("t",)).is_inert
        assert FaultPlan.uniform(0.0).is_inert

    def test_inert_wrap_is_identity(self, small_index):
        index, _ = small_index
        assert FaultInjector(FaultPlan()).wrap_index(index) is index

    def test_noninert_wrap_wraps_every_list(self, small_index):
        index, terms = small_index
        wrapped = FaultInjector(FaultPlan(read_fault_rate=0.1)).wrap_index(index)
        assert wrapped is not index
        assert wrapped.num_docs == index.num_docs
        for term in terms:
            assert isinstance(wrapped.list_for(term), FaultyIndexList)


class TestChecksums:
    def test_block_checksum_stable(self):
        lst = make_list()
        assert lst.block_checksum(0) == lst.block_checksum(0)
        docs, scores = lst.read_block(0)
        assert compute_block_checksum(docs, scores) == lst.block_checksum(0)

    def test_checksum_detects_any_flip(self):
        lst = make_list()
        docs, scores = lst.read_block(1)
        bad = scores.copy()
        bad.view(np.uint64)[0] ^= np.uint64(1) << np.uint64(17)
        assert compute_block_checksum(docs, bad) != lst.block_checksum(1)


class TestFaultInjector:
    def test_transient_faults_are_deterministic(self):
        lst = make_list()
        plan = FaultPlan(seed=5, read_fault_rate=0.5)

        def fault_pattern():
            injector = FaultInjector(plan)
            pattern = []
            for block in range(lst.num_blocks):
                try:
                    injector.read_block(lst, block)
                    pattern.append(False)
                except TransientIOError:
                    pattern.append(True)
            return pattern, injector.stats.transient_read_faults

        first, faults1 = fault_pattern()
        second, faults2 = fault_pattern()
        assert first == second
        assert faults1 == faults2 > 0

    def test_corruption_raises_typed_error(self):
        lst = make_list()
        injector = FaultInjector(FaultPlan(seed=1, corruption_rate=1.0))
        with pytest.raises(IndexCorruptionError):
            injector.read_block(lst, 0)
        assert injector.stats.corrupted_blocks == 1

    def test_dead_term_fails_every_access(self):
        lst = make_list()
        injector = FaultInjector(FaultPlan(dead_terms=("t",)))
        with pytest.raises(TransientIOError):
            injector.read_block(lst, 0)
        with pytest.raises(TransientIOError):
            injector.lookup(lst, 3)

    def test_latency_spikes_accumulate(self):
        lst = make_list()
        injector = FaultInjector(
            FaultPlan(latency_spike_rate=1.0, latency_spike_ms=7.0)
        )
        injector.read_block(lst, 0)
        injector.lookup(lst, 3)
        assert injector.stats.latency_spikes == 2
        assert injector.stats.injected_latency_ms == pytest.approx(14.0)

    def test_faulty_list_delegates_passive_api(self):
        lst = make_list()
        wrapped = FaultyIndexList(lst, FaultInjector(FaultPlan(read_fault_rate=0.1)))
        assert len(wrapped) == len(lst)
        assert wrapped.term == lst.term
        assert wrapped.num_blocks == lst.num_blocks
        assert wrapped.score_at_rank(0) == lst.score_at_rank(0)
        assert np.array_equal(wrapped.doc_ids_by_rank, lst.doc_ids_by_rank)
        assert int(lst.doc_ids_by_rank[0]) in wrapped


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_session_respects_attempt_cap(self):
        session = RetrySession(RetryPolicy(max_attempts=3, query_budget=100))
        assert session.grant(1)
        assert session.grant(2)
        assert not session.grant(3)

    def test_session_respects_query_budget(self):
        session = RetrySession(RetryPolicy(max_attempts=10, query_budget=2))
        assert session.grant(1)
        assert session.grant(1)
        assert not session.grant(1)
        assert session.retries == 2

    def test_backoff_grows_and_is_simulated(self):
        session = RetrySession(
            RetryPolicy(base_backoff_ms=2.0, backoff_multiplier=3.0,
                        jitter=0.0, max_attempts=10, query_budget=10)
        )
        session.grant(1)
        first = session.waited_ms
        session.grant(2)
        assert first == pytest.approx(2.0)
        assert session.waited_ms == pytest.approx(2.0 + 6.0)


class TestResilientAccessors:
    def test_cursor_retries_and_charges_failed_attempts(self):
        lst = make_list(n=64, block_size=16)
        injector = FaultInjector(FaultPlan(seed=3, read_fault_rate=0.4))
        wrapped = FaultyIndexList(lst, injector)
        meter = AccessMeter()
        retry = RetrySession(RetryPolicy(max_attempts=10, query_budget=1000))
        cursor = SortedCursor(wrapped, meter, retry=retry)
        docs, scores = cursor.read_next_blocks(4)
        assert docs.size == 64
        assert not cursor.failed
        failed_attempts = injector.stats.transient_read_faults
        assert retry.retries == failed_attempts > 0
        # every failed attempt charged one block of sorted accesses
        assert meter.sorted_accesses == 64 + 16 * failed_attempts

    def test_cursor_gives_up_and_freezes_high(self):
        lst = make_list(n=64, block_size=16)
        injector = FaultInjector(FaultPlan(dead_terms=("t",)))
        wrapped = FaultyIndexList(lst, injector)
        cursor = SortedCursor(
            wrapped, AccessMeter(),
            retry=RetrySession(RetryPolicy(max_attempts=2, query_budget=10)),
        )
        high_before = cursor.high
        docs, _ = cursor.read_next_blocks(2)
        assert docs.size == 0
        assert cursor.failed and cursor.exhausted
        assert cursor.blocks_remaining == 0
        assert cursor.position == 0
        assert cursor.high == high_before  # frozen bound stays correct

    def test_cursor_partial_delivery_before_failure(self):
        lst = make_list(n=64, block_size=16)

        class FailSecondBlock:
            def __init__(self, inner):
                self._inner = inner

            def read_block(self, block):
                if block == 1:
                    raise TransientIOError("block 1 lost")
                return self._inner.read_block(block)

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def __len__(self):
                return len(self._inner)

        cursor = SortedCursor(FailSecondBlock(lst), AccessMeter())
        docs, _ = cursor.read_next_blocks(4)
        assert docs.size == 16  # first block delivered, then gave up
        assert cursor.failed
        assert cursor.position == 16

    def test_random_accessor_retries_then_fails_permanently(self):
        lst = make_list()
        injector = FaultInjector(FaultPlan(dead_terms=("t",)))
        wrapped = FaultyIndexList(lst, injector)
        meter = AccessMeter()
        accessor = RandomAccessor(
            wrapped, meter,
            retry=RetrySession(RetryPolicy(max_attempts=3, query_budget=10)),
        )
        with pytest.raises(ListUnavailableError):
            accessor.probe(1)
        assert accessor.failed
        assert meter.random_accesses == 3  # every attempt charged
        with pytest.raises(ListUnavailableError):
            accessor.probe(1)
        assert meter.random_accesses == 3  # failed accessor charges nothing

    def test_no_retry_session_fails_on_first_fault(self):
        lst = make_list()
        injector = FaultInjector(FaultPlan(dead_terms=("t",)))
        wrapped = FaultyIndexList(lst, injector)
        cursor = SortedCursor(wrapped, AccessMeter())
        cursor.read_next_blocks(1)
        assert cursor.failed
