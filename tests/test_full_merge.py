"""Unit tests for the FullMerge baseline."""

import pytest

from repro.core.full_merge import full_merge
from repro.storage.diskmodel import CostModel
from repro.storage.index_builder import build_index

from tests.helpers import oracle_scores


class TestFullMerge:
    def test_matches_oracle(self, small_index):
        index, terms = small_index
        result = full_merge(index, terms, 10)
        got = sorted((i.worstscore for i in result.items), reverse=True)
        assert got == pytest.approx(oracle_scores(index, terms, 10))

    def test_cost_is_total_volume(self, small_index):
        index, terms = small_index
        model = CostModel.from_ratio(1000)
        result = full_merge(index, terms, 10, model)
        volume = sum(len(index.list_for(t)) for t in terms)
        assert result.stats.sorted_accesses == volume
        assert result.stats.random_accesses == 0
        assert result.stats.cost == volume

    def test_items_fully_resolved(self, small_index):
        index, terms = small_index
        result = full_merge(index, terms, 5)
        assert all(item.resolved for item in result.items)

    def test_rank_order_and_tiebreak(self):
        index = build_index(
            {"a": [(3, 0.5), (1, 0.5), (2, 0.9)]}, num_docs=10, block_size=4
        )
        result = full_merge(index, ["a"], 3)
        assert result.doc_ids == [2, 1, 3]

    def test_k_larger_than_universe(self):
        index = build_index({"a": [(1, 0.5), (2, 0.4)]}, num_docs=10)
        result = full_merge(index, ["a"], 99)
        assert len(result.items) == 2

    def test_rejects_bad_arguments(self, small_index):
        index, terms = small_index
        with pytest.raises(ValueError):
            full_merge(index, terms, 0)
        with pytest.raises(ValueError):
            full_merge(index, [], 5)

    def test_algorithm_label(self, small_index):
        index, terms = small_index
        assert full_merge(index, terms, 1).algorithm == "FullMerge"
