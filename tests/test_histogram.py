"""Unit and property tests for the equi-width score histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.histogram import ScoreHistogram


class TestConstruction:
    def test_counts_sum_to_total(self):
        scores = np.array([0.1, 0.5, 0.9, 0.9, 0.3])
        hist = ScoreHistogram(scores, num_buckets=4)
        assert hist.total == 5
        assert hist.counts.sum() == 5

    def test_empty_scores(self):
        hist = ScoreHistogram(np.array([]), num_buckets=10)
        assert hist.total == 0
        assert hist.score_at_rank(0) == 0.0

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            ScoreHistogram(np.array([0.5]), num_buckets=0)

    def test_rejects_negative_scores(self):
        with pytest.raises(ValueError):
            ScoreHistogram(np.array([-0.1]))

    def test_upper_defaults_to_max(self):
        hist = ScoreHistogram(np.array([0.2, 0.8]))
        assert hist.upper == 0.8

    def test_bucket_geometry(self):
        hist = ScoreHistogram(np.array([1.0]), num_buckets=4, upper=1.0)
        assert hist.bucket_upper(0) == 1.0
        assert hist.bucket_lower(0) == 0.75
        assert hist.bucket_of(0.99) == 0
        assert hist.bucket_of(0.10) == 3
        assert hist.bucket_of(-5.0) == 3
        assert hist.bucket_of(5.0) == 0


class TestScoreAtRank:
    def test_monotone_non_increasing(self):
        rng = np.random.default_rng(3)
        hist = ScoreHistogram(rng.random(500), num_buckets=20)
        values = [hist.score_at_rank(r) for r in range(0, 500, 7)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_accuracy_within_bucket_width(self):
        rng = np.random.default_rng(5)
        scores = np.sort(rng.random(2000))[::-1]
        hist = ScoreHistogram(scores, num_buckets=50)
        for rank in (0, 10, 400, 1000, 1999):
            estimate = hist.score_at_rank(rank)
            assert abs(estimate - scores[rank]) <= hist.width + 1e-9

    def test_past_end_returns_zero(self):
        hist = ScoreHistogram(np.array([0.5, 0.4]))
        assert hist.score_at_rank(2) == 0.0
        assert hist.score_at_rank(100) == 0.0

    def test_negative_rank_rejected(self):
        hist = ScoreHistogram(np.array([0.5]))
        with pytest.raises(ValueError):
            hist.score_at_rank(-1)


class TestRankAtScore:
    def test_roundtrip_with_score_at_rank(self):
        rng = np.random.default_rng(7)
        hist = ScoreHistogram(rng.random(1000), num_buckets=40)
        for rank in (5, 100, 500):
            score = hist.score_at_rank(rank)
            recovered = hist.rank_at_score(score)
            assert recovered == pytest.approx(rank, abs=hist.total / 40 + 1)

    def test_extremes(self):
        hist = ScoreHistogram(np.array([0.2, 0.8]), upper=1.0)
        assert hist.rank_at_score(1.0) == 0.0
        assert hist.rank_at_score(0.0) == 2.0


class TestMeanScoreBetween:
    def test_matches_empirical_mean(self):
        rng = np.random.default_rng(11)
        scores = np.sort(rng.random(3000))[::-1]
        hist = ScoreHistogram(scores, num_buckets=60)
        estimate = hist.mean_score_between(100, 900)
        actual = scores[100:900].mean()
        assert estimate == pytest.approx(actual, abs=0.03)

    def test_empty_interval(self):
        hist = ScoreHistogram(np.array([0.5, 0.4]))
        assert hist.mean_score_between(1, 1) == 0.0
        assert hist.mean_score_between(5, 9) == 0.0

    def test_is_bounded_by_endpoints(self):
        rng = np.random.default_rng(13)
        hist = ScoreHistogram(rng.random(800), num_buckets=30)
        mean = hist.mean_score_between(50, 300)
        assert hist.score_at_rank(300) - hist.width <= mean
        assert mean <= hist.score_at_rank(50) + hist.width


class TestTailPmf:
    def test_full_tail_sums_to_one(self):
        rng = np.random.default_rng(17)
        hist = ScoreHistogram(rng.random(400))
        _, probs = hist.tail_pmf(0)
        assert probs.sum() == pytest.approx(1.0)

    def test_consumed_everything(self):
        hist = ScoreHistogram(np.array([0.5, 0.4]))
        _, probs = hist.tail_pmf(2)
        assert probs.sum() == 0.0

    def test_tail_excludes_head_mass(self):
        # Head scores near 1, tail near 0; consuming the head must leave a
        # distribution concentrated at low scores.
        scores = np.concatenate([np.full(100, 0.95), np.full(100, 0.05)])
        hist = ScoreHistogram(scores, num_buckets=10)
        midpoints, probs = hist.tail_pmf(100)
        mean = float((midpoints * probs).sum())
        assert mean < 0.2

    def test_partial_consumption_interpolates(self):
        scores = np.concatenate([np.full(100, 0.95), np.full(100, 0.05)])
        hist = ScoreHistogram(scores, num_buckets=10)
        _, probs = hist.tail_pmf(50)
        assert probs.sum() == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1, max_size=200,
    ),
    st.integers(min_value=1, max_value=64),
)
def test_histogram_rank_properties(scores, num_buckets):
    """Property: estimates stay within the score range and are monotone."""
    hist = ScoreHistogram(np.array(scores), num_buckets=num_buckets)
    previous = float("inf")
    for rank in range(len(scores) + 2):
        value = hist.score_at_rank(rank)
        assert 0.0 <= value <= hist.upper + 1e-9
        assert value <= previous + 1e-9
        previous = value


# ---------------------------------------------------------------------------
# Quantile / CDF properties backing the threshold predictor (PR 8).  The
# estimators in repro.stats.threshold subtract one bucket width from
# score_at_rank to turn it into a certified lower bound; these properties
# are what make that subtraction sound.
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1, max_size=300,
    ),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=299),
)
def test_quantile_brackets_true_order_statistic(scores, num_buckets, rank):
    """score_at_rank stays within one bucket width of the true sorted-
    descending order statistic — the histogram can misplace a score only
    inside its own bucket, never across one."""
    if rank >= len(scores):
        return
    hist = ScoreHistogram(np.array(scores), num_buckets=num_buckets)
    truth = sorted(scores, reverse=True)[rank]
    estimate = hist.score_at_rank(rank)
    assert abs(estimate - truth) <= hist.width + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1, max_size=300,
    ),
    st.integers(min_value=1, max_value=64),
)
def test_rank_at_score_is_monotone_cdf(scores, num_buckets):
    """rank_at_score is a non-increasing function of the score cut (the
    complementary CDF scaled by total), pinned at the extremes."""
    hist = ScoreHistogram(np.array(scores), num_buckets=num_buckets)
    cuts = np.linspace(0.0, max(hist.upper, 1e-6), 25)
    ranks = [hist.rank_at_score(float(c)) for c in cuts]
    assert all(a >= b - 1e-9 for a, b in zip(ranks, ranks[1:]))
    assert ranks[0] == pytest.approx(hist.total)
    assert hist.rank_at_score(hist.upper) == 0.0
    for r in ranks:
        assert 0.0 <= r <= hist.total + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=1, max_size=200,
    ),
)
def test_single_bucket_degenerates_to_range(scores):
    """num_buckets=1 collapses every estimate to the one-bucket bracket:
    any in-range rank maps into [0, upper], and the bracket property
    still holds with width == upper."""
    hist = ScoreHistogram(np.array(scores), num_buckets=1)
    assert hist.width == pytest.approx(max(hist.upper, 0.0))
    truth = sorted(scores, reverse=True)
    for rank in range(len(scores)):
        estimate = hist.score_at_rank(rank)
        assert abs(estimate - truth[rank]) <= hist.width + 1e-9


def test_empty_histogram_edges():
    """Empty input: every query answers the identity of 'nothing'."""
    hist = ScoreHistogram(np.array([]), num_buckets=8)
    assert hist.total == 0
    assert hist.score_at_rank(0) == 0.0
    assert hist.score_at_rank(50) == 0.0
    assert hist.rank_at_score(0.5) == 0.0
    _, probs = hist.tail_pmf(0)
    assert probs.sum() == 0.0
