"""Unit tests for index building from postings and documents."""

import pytest

from repro.storage.index_builder import (
    build_index,
    build_index_from_documents,
    build_index_list,
)


class TestBuildIndexList:
    def test_from_iterable(self):
        lst = build_index_list("t", [(1, 0.5), (2, 0.9)], block_size=8)
        assert len(lst) == 2
        assert lst.lookup(2) == 0.9

    def test_accepts_generator(self):
        lst = build_index_list("t", ((i, i / 10) for i in range(1, 5)))
        assert len(lst) == 4


class TestBuildIndex:
    def test_num_docs_defaults_to_distinct_docs(self):
        index = build_index({"a": [(1, 0.5), (2, 0.4)], "b": [(2, 0.8)]})
        assert index.num_docs == 2

    def test_explicit_num_docs(self):
        index = build_index({"a": [(1, 0.5)]}, num_docs=100)
        assert index.num_docs == 100

    def test_rejects_num_docs_below_distinct(self):
        with pytest.raises(ValueError):
            build_index({"a": [(1, 0.5), (2, 0.4), (3, 0.3)]}, num_docs=2)

    def test_empty_postings(self):
        index = build_index({})
        assert len(index) == 0
        assert index.num_docs == 1


class TestBuildIndexFromDocuments:
    def test_forward_view(self):
        documents = {
            0: {"a": 0.9, "b": 0.2},
            1: {"a": 0.5},
            2: {"b": 0.7},
        }
        index = build_index_from_documents(documents)
        assert index.num_docs == 3
        assert len(index.list_for("a")) == 2
        assert index.list_for("b").lookup(2) == 0.7

    def test_block_size_propagates(self):
        documents = {i: {"a": 1.0 - i / 10} for i in range(10)}
        index = build_index_from_documents(documents, block_size=3)
        assert index.list_for("a").num_blocks == 4
