"""Cross-feature integration: weights + tracing + approximation together,
serialization round-trips through the full pipeline, and the extension
experiments at small scale."""

import pytest

from repro.bench.extensions import (
    e11_approximate_pruning,
    e12_design_ablations,
    e13_histograms_vs_normal,
)
from repro.bench.harness import Harness
from repro.core.algorithms import TopKProcessor
from repro.storage.serialization import load_index, save_index



class TestFeatureCombinations:
    def test_weights_trace_and_pruning_together(self, small_index):
        index, terms = small_index
        processor = TopKProcessor(index, cost_ratio=100)
        result = processor.query(
            terms, 5,
            algorithm="KSR-Last-Ben",
            weights=[1.5, 1.0, 0.5],
            trace=True,
            prune_epsilon=0.01,
        )
        assert len(result.items) == 5
        assert result.trace, "trace must be populated"
        # Weighted bounds must be consistent in the trace.
        for record in result.trace:
            assert record.unseen_bestscore <= 1.5 + 1.0 + 0.5 + 1e-9

    def test_normal_predictor_with_weights(self, small_index):
        index, terms = small_index
        processor = TopKProcessor(index, cost_ratio=100, predictor="normal")
        result = processor.query(terms, 5, weights=[2.0, 1.0, 1.0])
        assert len(result.items) == 5

    def test_serialized_index_through_full_pipeline(self, tmp_path,
                                                    small_index):
        index, terms = small_index
        path = tmp_path / "roundtrip.npz"
        save_index(index, path)
        processor = TopKProcessor(load_index(path), cost_ratio=100)
        traced = processor.query(terms, 5, trace=True)
        merged = processor.full_merge(terms, 5)
        got = sorted(i.worstscore for i in merged.items)
        assert len(traced.items) == 5
        assert len(got) == 5


class TestExtensionExperimentsSmallScale:
    @pytest.fixture(scope="class")
    def harness(self):
        return Harness(scale=0.05, num_queries=2)

    def test_e11_structure(self, harness):
        table = e11_approximate_pruning(harness)
        assert [row[0] for row in table.rows] == [
            "epsilon=0.00", "epsilon=0.01", "epsilon=0.05", "epsilon=0.20",
        ]
        assert float(table.rows[0][2]) == 1.0  # exact run: precision 1

    def test_e12_structure(self, harness):
        batch, buckets, correlations = e12_design_ablations(harness)
        assert len(batch.rows) == 3
        assert len(buckets.rows) == 3
        assert len(correlations.rows) == 2
        for table in (batch, buckets, correlations):
            for row in table.rows:
                assert float(row[1]) > 0

    def test_e13_structure(self, harness):
        table = e13_histograms_vs_normal(harness)
        assert len(table.rows) == 8
        settings = [row[0] for row in table.rows]
        assert any("histogram" in s for s in settings)
        assert any("normal" in s for s in settings)
