"""Unit tests for the disk latency model."""

import pytest

from repro.storage.latency import DiskLatencyModel, DiskParameters


class TestDiskParameters:
    def test_defaults_reasonable(self):
        p = DiskParameters()
        assert p.seek_time_ms > 0
        assert p.transfer_entries_per_ms > 0

    @pytest.mark.parametrize("kwargs", [
        {"seek_time_ms": -1},
        {"transfer_entries_per_ms": 0},
        {"block_size": 0},
        {"blocks_per_seek": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DiskParameters(**kwargs)


class TestDiskLatencyModel:
    def test_sequential_is_linear_plus_seeks(self):
        model = DiskLatencyModel(DiskParameters(
            seek_time_ms=10.0, transfer_entries_per_ms=1000.0,
            block_size=100, blocks_per_seek=1,
        ))
        # 200 entries = 2 blocks = 2 seeks (20 ms) + 0.2 ms transfer.
        assert model.sorted_access_ms(200) == pytest.approx(20.2)

    def test_random_per_lookup(self):
        model = DiskLatencyModel(DiskParameters(
            seek_time_ms=10.0, transfer_entries_per_ms=1000.0,
        ))
        assert model.random_access_ms(3) == pytest.approx(3 * 10.001)

    def test_estimate_combines(self):
        model = DiskLatencyModel()
        total = model.estimate_ms(10_000, 5)
        assert total == pytest.approx(
            model.sorted_access_ms(10_000) + model.random_access_ms(5)
        )

    def test_random_much_slower_per_entry(self):
        model = DiskLatencyModel()
        per_sorted = model.sorted_access_ms(100_000) / 100_000
        per_random = model.random_access_ms(1)
        assert per_random > 100 * per_sorted

    def test_implied_ratio_in_paper_band(self):
        # The paper quotes cR/cS between 50 and 50,000 for real disks.
        ratio = DiskLatencyModel().implied_cost_ratio()
        assert 50 <= ratio <= 50_000

    def test_negative_inputs_rejected(self):
        model = DiskLatencyModel()
        with pytest.raises(ValueError):
            model.sorted_access_ms(-1)
        with pytest.raises(ValueError):
            model.random_access_ms(-1)


class TestForCostRatio:
    def test_implied_ratio_matches(self):
        for ratio in (100.0, 1000.0, 10_000.0):
            params = DiskParameters.for_cost_ratio(ratio)
            model = DiskLatencyModel(params)
            assert model.implied_cost_ratio() == pytest.approx(
                ratio, rel=1e-6
            )

    def test_out_of_range_ratio_rejected(self):
        with pytest.raises(ValueError):
            DiskParameters.for_cost_ratio(0.5)
        with pytest.raises(ValueError):
            DiskParameters.for_cost_ratio(1024 * 16)
